//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: numeric range strategies
//! (`lo..hi` for integers and floats), the `proptest!` macro (with optional
//! `#![proptest_config(...)]` header), and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, by design:
//! * **fully deterministic** — the per-case RNG is seeded from the test's
//!   module path, name, and case index, never from entropy, so every run
//!   explores the same inputs (regressions reproduce without a seed file);
//! * no shrinking — a failing case prints its inputs and panics.

use std::ops::Range;

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the deterministic suite
        // fast while still sweeping each strategy broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64-based RNG for input generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier and case index (FNV-1a over the id).
    pub fn for_case(test_id: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Unlike real proptest there is no value tree or
/// shrinking; `generate` draws one concrete value.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                if span == 0 {
                    // Full-width u64 range: any draw is in range.
                    return rng.next_u64() as $t;
                }
                (self.start as u64).wrapping_add(rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.next_f64() * (self.end - self.start) as f64) as f32
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` that runs `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $( $crate::__proptest_one! { $cfg; $(#[$meta])* fn $name ($($arg in $strat),+) $body } )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $( $crate::__proptest_one! {
            $crate::ProptestConfig::default(); $(#[$meta])* fn $name ($($arg in $strat),+) $body
        } )+
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    ( $cfg:expr; $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ ) $body:block ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_id = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::TestRng::for_case(test_id, case);
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        concat!(
                            "proptest case {} of {} failed with inputs:",
                            $( "\n  ", stringify!($arg), " = {:?}", )+
                        ),
                        case, config.cases, $($arg),+
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    };
}

/// Assert inside a property test (no early-return machinery needed here —
/// failures panic like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..10_000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.5f64..1.5).generate(&mut rng);
            assert!((0.5..1.5).contains(&f));
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = |case| {
            let mut rng = TestRng::for_case("det", case);
            (0u64..1_000_000).generate(&mut rng)
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_expands_and_runs(x in 0u64..100, y in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert_eq!(x, x);
        }
    }
}
