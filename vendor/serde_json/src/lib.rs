//! Offline stand-in for `serde_json`.
//!
//! Text format notes (all choices are deterministic, which is what the
//! telemetry layer's byte-identical-trace guarantee rests on):
//! * objects print in insertion order (`Map` is insertion-ordered);
//! * integers print via `Display`;
//! * finite floats with zero fractional part print as `N.0` (like
//!   serde_json); other floats print via Rust's shortest round-trip
//!   `Display`; non-finite floats print as `null`;
//! * `to_string_pretty` indents with two spaces, like serde_json.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
pub use serde::{Error, Map, Value};

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`].
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Infallible sibling of [`to_value`], used by the `json!` macro.
pub fn value_of<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Interpret a [`Value`] as a concrete type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value)
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a concrete type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Build a [`Value`] from a JSON-ish literal.
///
/// Supports `json!(null)`, `json!([e1, e2, ...])`,
/// `json!({ "key": expr, ... })`, and `json!(expr)` for any `Serialize`
/// expression. Unlike real serde_json, *nested* object literals must be
/// wrapped in their own `json!` call.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::value_of(&$elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert($key, $crate::value_of(&$value)); )*
        $crate::Value::Object(__m)
    }};
    ($other:expr) => { $crate::value_of(&$other) };
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    /// Parse the `XXXX` of a `\uXXXX` escape (cursor on the `u`), handling
    /// UTF-16 surrogate pairs. Leaves the cursor past the escape.
    fn unicode_escape(&mut self) -> Result<char> {
        self.pos += 1; // consume 'u'
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            if self.eat_keyword("\\u") {
                let lo = self.hex4()?;
                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                return char::from_u32(cp).ok_or_else(|| Error::new("bad surrogate pair"));
            }
            return Err(Error::new("lone surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| Error::new("bad unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("bad hex digit in \\u escape"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::from_i64)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let b = Value::Array(vec![Value::Bool(true), Value::Null, Value::F64(2.5)]);
        let v = json!({ "a": 1, "b": b, "c": "x\"y" });
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"a":1,"b":[true,null,2.5],"c":"x\"y"}"#);
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_matches_serde_json_shape() {
        let v = json!({ "k": [1, 2] });
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn whole_floats_keep_their_floatness() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.125f64).unwrap(), "0.125");
    }

    #[test]
    fn parses_escapes_and_negatives() {
        let v: Value = from_str(r#"{"s": "aA\n", "n": -3, "f": 1.5e2}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("aA\n"));
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(-3));
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(150.0));
    }

    #[test]
    fn json_macro_array_equals_parsed() {
        let parsed: Value = from_str("[1, 2, 3]").unwrap();
        assert_eq!(parsed, json!([1, 2, 3]));
    }
}
