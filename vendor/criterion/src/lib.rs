//! Offline stand-in for `criterion`.
//!
//! Provides just enough API for `crates/bench`: `Criterion`,
//! `benchmark_group` → `sample_size`/`bench_function`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! best-of-samples wall-clock timer printed to stdout — good enough for
//! relative hot-path comparisons, with none of criterion's statistics.

use std::time::Instant;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 10,
        }
    }

    /// Top-level (group-less) benchmark, as in real criterion.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            _c: &mut *self,
            sample_size: 10,
        };
        g.bench_function(id, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let best = bencher
            .samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let mean = bencher.samples.iter().sum::<f64>() / bencher.samples.len().max(1) as f64;
        println!("  {id}: best {best:.1} ns/iter, mean {mean:.1} ns/iter");
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Time one sample of the closure. Each call to `iter` within a
    /// `bench_function` sample runs the routine once and records its
    /// duration in nanoseconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(out);
        self.samples.push(elapsed);
    }
}

/// Re-export for code that uses `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
