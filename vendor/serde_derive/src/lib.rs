//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The offline build environment has no `syn`/`quote`, so this crate parses
//! the derive input `TokenStream` directly. It supports exactly the type
//! shapes used in this workspace:
//!
//! * structs with named fields          → JSON object
//! * tuple structs with one field       → transparent (inner value)
//! * tuple structs with many fields     → JSON array
//! * unit structs                       → null
//! * enum unit variants                 → `"Variant"`
//! * enum tuple variant (one field)     → `{"Variant": value}`
//! * enum tuple variant (many fields)   → `{"Variant": [values]}`
//! * enum struct variants               → `{"Variant": {fields}}`
//!
//! This matches serde's externally-tagged enum representation and newtype
//! transparency, so output is shaped like real serde_json output.
//!
//! Unsupported (emits `compile_error!`): generics and `#[serde(...)]`
//! attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match which {
        Which::Serialize => gen_serialize(&parsed),
        Which::Deserialize => gen_deserialize(&parsed),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);

    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive does not support generic type `{name}`"
        ));
    }

    let shape = match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}`")),
    };
    Ok(Input { name, shape })
}

/// Skip leading `#[...]` attributes (incl. doc comments) and `pub`
/// (optionally `pub(...)`) visibility tokens.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // the [...] group
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next();
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` named-field lists. Commas inside angle brackets
/// (e.g. `BTreeMap<u64, Seg>`) are part of the type, so track `<`/`>` depth;
/// bracketed groups (`(..)`, `[..]`, `{..}`) arrive as single atomic tokens.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        fields.push(name);
        // Consume the type, up to a top-level comma.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    Ok(fields)
}

/// Count comma-separated fields in a tuple-struct/tuple-variant body,
/// respecting angle-bracket depth.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_tokens {
        // Trailing comma (if any) would overcount by one only when the body
        // ends with `,`; `Foo(u64,)` still has one field. Count separators
        // conservatively: N separators with content → N+1 unless trailing.
        // Re-walk to check for a trailing comma is overkill here; the
        // workspace has no trailing commas in tuple bodies.
        count + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream())?;
                iter.next();
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the separating comma.
        let mut angle_depth = 0i32;
        while let Some(tok) = iter.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                TokenTree::Punct(p) => {
                    match p.as_char() {
                        '<' => angle_depth += 1,
                        '>' => angle_depth -= 1,
                        _ => {}
                    }
                    iter.next();
                }
                _ => {
                    iter.next();
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation (string templates parsed back into a TokenStream)
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let mut s = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert({f:?}, ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert({vname:?}, {payload});\n\
                             ::serde::Value::Object(__m)\n}},\n",
                            binds = binds.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let mut inner = String::from("let mut __inner = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__inner.insert({f:?}, ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {fields} }} => {{\n\
                             {inner}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert({vname:?}, ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__m)\n}},\n",
                            fields = fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let mut s = format!(
                "let __m = match __v {{\n\
                 ::serde::Value::Object(m) => m,\n\
                 other => return ::std::result::Result::Err(::serde::Error::new(\
                 format!(\"expected object for {name}, got {{other:?}}\"))),\n}};\n"
            );
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(\
                     __m.get({f:?}).unwrap_or(&::serde::Value::Null))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = match __v {{\n\
                 ::serde::Value::Array(items) if items.len() == {n} => items,\n\
                 other => return ::std::result::Result::Err(::serde::Error::new(\
                 format!(\"expected {n}-element array for {name}, got {{other:?}}\"))),\n}};\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => return ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(n) => {
                        let ctor = if *n == 1 {
                            format!("{name}::{vname}(::serde::Deserialize::from_value(__payload)?)")
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{{ let __items = match __payload {{\n\
                                 ::serde::Value::Array(items) if items.len() == {n} => items,\n\
                                 other => return ::std::result::Result::Err(::serde::Error::new(\
                                 format!(\"bad payload for {name}::{vname}: {{other:?}}\"))),\n}};\n\
                                 {name}::{vname}({items}) }}",
                                items = items.join(", ")
                            )
                        };
                        keyed_arms.push_str(&format!(
                            "{vname:?} => return ::std::result::Result::Ok({ctor}),\n"
                        ));
                    }
                    Fields::Named(fields) => {
                        let mut ctor = format!(
                            "{{ let __inner = match __payload {{\n\
                             ::serde::Value::Object(m) => m,\n\
                             other => return ::std::result::Result::Err(::serde::Error::new(\
                             format!(\"bad payload for {name}::{vname}: {{other:?}}\"))),\n}};\n\
                             {name}::{vname} {{\n"
                        );
                        for f in fields {
                            ctor.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 __inner.get({f:?}).unwrap_or(&::serde::Value::Null))?,\n"
                            ));
                        }
                        ctor.push_str("} }");
                        keyed_arms.push_str(&format!(
                            "{vname:?} => return ::std::result::Result::Ok({ctor}),\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(s) => {{\n\
                 match s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
                 ::std::result::Result::Err(::serde::Error::new(\
                 format!(\"unknown {name} variant {{s:?}}\")))\n}}\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (__tag, __payload) = m.iter().next().unwrap();\n\
                 match __tag.as_str() {{\n{keyed_arms}_ => {{}}\n}}\n\
                 ::std::result::Result::Err(::serde::Error::new(\
                 format!(\"unknown {name} variant {{__tag:?}}\")))\n}}\n\
                 other => ::std::result::Result::Err(::serde::Error::new(\
                 format!(\"expected {name}, got {{other:?}}\"))),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
