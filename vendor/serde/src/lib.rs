//! Offline stand-in for the `serde` facade.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the real serde stack cannot be resolved. This crate keeps the
//! *surface* the workspace relies on — `#[derive(Serialize, Deserialize)]`,
//! the trait names, and a JSON-shaped value model shared with the companion
//! `serde_json` stand-in — while replacing serde's visitor architecture with
//! a direct `Value` round-trip. Every consumer of these traits lives in this
//! workspace, so the simplified design is an internal contract, not a public
//! one.
//!
//! Supported derive shapes (the only ones used in-tree):
//! * structs with named fields,
//! * tuple structs (single-field tuple structs serialize transparently as
//!   their inner value, matching serde's newtype behaviour),
//! * unit-only enums (serialized as the variant name string),
//! * enums with tuple/struct variants (externally tagged, as in serde_json).
//!
//! `#[serde(...)]` attributes and generic types are *not* supported.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Error type shared by serialization and deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// An insertion-ordered string-keyed map, mirroring serde_json's `Map` with
/// the `preserve_order` feature. Insertion order is what makes serialized
/// output (and therefore traces) byte-deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert a key/value pair, replacing (in place, keeping position) any
    /// existing entry with the same key. Returns the replaced value, if any.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON-shaped value. Integer values are canonicalized on construction:
/// any non-negative signed integer becomes `U64`, so `1i64` and `1u64`
/// compare (and print) identically.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    /// Canonicalizing signed-integer constructor: non-negative → `U64`.
    pub fn from_i64(v: i64) -> Value {
        if v >= 0 {
            Value::U64(v as u64)
        } else {
            Value::I64(v)
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Index into an object by key; returns `Null` for misses, mirroring
    /// serde_json's `Value::get` ergonomics via `pointer`-free lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Object member lookup; missing keys and non-objects yield `Null`,
    /// matching serde_json's `Index` behaviour.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

/// Serialize a value into the shared [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct a value from the shared [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::new(format!("expected {expected}, got {got:?}")))
}

// ---------------------------------------------------------------------------
// Blanket / reference impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().map_or_else(|| type_err("bool", v), Ok)
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().map_or_else(|| type_err("unsigned integer", v), Ok)?;
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::from_i64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().map_or_else(|| type_err("integer", v), Ok)?;
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map_or_else(|| type_err("number", v), Ok)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .map_or_else(|| type_err("string", v), Ok)
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => type_err("null", other),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                vec.try_into()
                    .map_err(|_| Error::new("array length mismatch"))
            }
            other => type_err("fixed-size array", other),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => type_err("tuple array", other),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z", Value::U64(1));
        m.insert("a", Value::U64(2));
        let keys: Vec<&String> = m.keys().collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("k", Value::U64(1));
        let old = m.insert("k", Value::U64(2));
        assert_eq!(old, Some(Value::U64(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("k"), Some(&Value::U64(2)));
    }

    #[test]
    fn signed_integers_canonicalize_to_unsigned() {
        assert_eq!(1i32.to_value(), Value::U64(1));
        assert_eq!((-1i32).to_value(), Value::I64(-1));
        assert_eq!(1u64.to_value(), Value::U64(1));
    }

    #[test]
    fn option_round_trips() {
        assert_eq!(Some(3u32).to_value(), Value::U64(3));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(3)).unwrap(), Some(3));
    }

    #[test]
    fn tuple_round_trips() {
        let v = (7u64, 2.5f64).to_value();
        assert_eq!(v, Value::Array(vec![Value::U64(7), Value::F64(2.5)]));
        let back: (u64, f64) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (7, 2.5));
    }
}
