//! Property-based end-to-end tests: random static environments through the
//! full stack. Whatever the capacities and RTTs, every strategy must
//! complete, account its bytes, and obey the energy model's arithmetic.

use emptcp_repro::expr::scenario::Scenario;
use emptcp_repro::expr::{host, Strategy};
use emptcp_repro::sim::SimDuration;
use proptest::prelude::*;

fn scenario(wifi_kbps: u64, cell_kbps: u64, rtt_ms: u64, size_kb: u64) -> Scenario {
    let mut s = Scenario::wild(
        "prop",
        wifi_kbps * 1000,
        cell_kbps * 1000,
        SimDuration::from_millis(rtt_ms),
        SimDuration::from_millis(rtt_ms + 35),
        size_kb << 10,
    );
    s.horizon = emptcp_repro::sim::SimTime::from_secs(3_000);
    s
}

/// One §5.2-style misjudged activation: the historical failure envelope of
/// `emptcp_never_worse_than_both_baselines_together` (see the pinned
/// regressions below and `host_properties.proptest-regressions`).
fn assert_emptcp_within_envelope(wifi_kbps: u64, cell_kbps: u64, seed: u64) {
    let size_kb = 2048;
    let e = host::run(
        scenario(wifi_kbps, cell_kbps, 40, size_kb),
        Strategy::emptcp_default(),
        seed,
    );
    let m = host::run(
        scenario(wifi_kbps, cell_kbps, 40, size_kb),
        Strategy::Mptcp,
        seed,
    );
    let t = host::run(
        scenario(wifi_kbps, cell_kbps, 40, size_kb),
        Strategy::TcpWifi,
        seed,
    );
    assert!(e.completed && m.completed && t.completed);
    let worse = m.energy_j.max(t.energy_j);
    assert!(
        e.energy_j <= worse * 1.3 + 12.0 + 2.0,
        "eMPTCP {:.1} J vs baselines ({:.1}, {:.1}) J",
        e.energy_j,
        m.energy_j,
        t.energy_j
    );
}

/// Pinned from `host_properties.proptest-regressions` (first entry,
/// shrunk to wifi_kbps = 1000, cell_kbps = 1000, seed = 0): symmetric
/// 1 Mbps links sit squarely between the EIB thresholds, so eMPTCP
/// activates LTE and then switches usage repeatedly (historically 4
/// switches), stacking the promotion+tail overhead on a near-MPTCP
/// steady cost while single-path WiFi stays far cheaper. The envelope's
/// one-activation slack term exists for exactly this case.
#[test]
fn pinned_symmetric_slow_links_pay_one_activation() {
    assert_emptcp_within_envelope(1000, 1000, 0);
    // The mechanism, not just the bound: the activation really happens.
    let e = host::run(
        scenario(1000, 1000, 40, 2048),
        Strategy::emptcp_default(),
        0,
    );
    assert_eq!(e.promotions, 1, "expected exactly one misjudged activation");
    assert!(
        e.usage_switches >= 2,
        "expected mid-transfer usage switches"
    );
    assert!(e.cell_bytes > 0);
}

/// Pinned from `host_properties.proptest-regressions` (second entry,
/// shrunk to wifi_kbps = 1990, cell_kbps = 2546, seed = 187100570144337597):
/// WiFi just below the WiFi-only threshold for a mid-rate LTE — the
/// predictor's early samples straddle the boundary, eMPTCP opens LTE for
/// under a quarter of the bytes, and the fixed cost dominates the saving.
#[test]
fn pinned_threshold_straddling_wifi_pays_for_little_lte_help() {
    assert_emptcp_within_envelope(1990, 2546, 187100570144337597);
    let e = host::run(
        scenario(1990, 2546, 40, 2048),
        Strategy::emptcp_default(),
        187100570144337597,
    );
    assert_eq!(e.promotions, 1);
    assert!(
        e.cell_bytes > 0 && e.cell_bytes < (2048 << 10) / 3,
        "LTE carried {} bytes — the point is that it helps only marginally",
        e.cell_bytes
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_static_environment_completes(
        wifi_kbps in 300u64..20_000,
        cell_kbps in 500u64..20_000,
        rtt_ms in 5u64..250,
        size_kb in 64u64..4096,
        strategy_pick in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let strategy = [
            Strategy::Mptcp,
            Strategy::emptcp_default(),
            Strategy::TcpWifi,
            Strategy::WifiFirst,
        ][strategy_pick];
        let r = host::run(
            scenario(wifi_kbps, cell_kbps, rtt_ms, size_kb),
            strategy,
            seed,
        );
        prop_assert!(r.completed, "{} stalled: {r:?}", strategy.label());
        prop_assert_eq!(r.bytes_delivered, size_kb << 10);
        // Accounting coherence.
        prop_assert!(r.wifi_bytes + r.cell_bytes >= r.bytes_delivered);
        prop_assert!(r.energy_j > 0.0);
        prop_assert!(r.energy_at_completion_j <= r.energy_j + 1e-9);
        prop_assert!(r.promo_energy_j >= 0.0 && r.tail_energy_j >= 0.0);
        prop_assert!(r.promo_energy_j + r.tail_energy_j <= r.energy_j + 1e-9);
        // Radios that never promoted can't have paid promotion energy.
        if r.promotions == 0 {
            prop_assert_eq!(r.promo_energy_j, 0.0);
        }
        // Average power must sit within the physical envelope of the model:
        // below promo+both-active ceilings, above zero.
        let duration = r.energy_trace.points().last().map(|&(t, _)| t.as_secs_f64());
        if let Some(d) = duration {
            if d > 1.0 {
                let avg_w = r.energy_j / (d + 16.0); // drain window slack
                prop_assert!(avg_w < 6.0, "average power {avg_w} W implausible");
            }
        }
    }

    #[test]
    fn emptcp_never_worse_than_both_baselines_together(
        wifi_kbps in 1_000u64..20_000,
        cell_kbps in 1_000u64..20_000,
        seed in 0u64..u64::MAX,
    ) {
        // A weaker—but universal—optimality check: eMPTCP's energy is never
        // more than a small factor above the better of MPTCP and TCP/WiFi
        // plus one misjudged LTE activation. The activation term is real:
        // the paper's §5.2 outliers are exactly the slow-WiFi cases where
        // the timer fires, the 5 Mbps never-activated assumption
        // overestimates a slow LTE, and the promotion+tail is paid for
        // nothing.
        let size_kb = 2048;
        let e = host::run(
            scenario(wifi_kbps, cell_kbps, 40, size_kb),
            Strategy::emptcp_default(),
            seed,
        );
        let m = host::run(scenario(wifi_kbps, cell_kbps, 40, size_kb), Strategy::Mptcp, seed);
        let t = host::run(
            scenario(wifi_kbps, cell_kbps, 40, size_kb),
            Strategy::TcpWifi,
            seed,
        );
        prop_assert!(e.completed && m.completed && t.completed);
        // eMPTCP behaves like one of the baselines at any instant, so its
        // total can't exceed the *worse* baseline by more than switching
        // overhead (one activation here: one transfer, at most one
        // misjudgement) plus modest slack.
        let worse = m.energy_j.max(t.energy_j);
        let one_activation = 12.0; // Fig 1's LTE promotion + tail
        prop_assert!(
            e.energy_j <= worse * 1.3 + one_activation + 2.0,
            "eMPTCP {:.1} J vs baselines ({:.1}, {:.1}) J (wifi {wifi_kbps} kbps, cell {cell_kbps} kbps)",
            e.energy_j,
            m.energy_j,
            t.energy_j
        );
        // And in friendly conditions (fast WiFi) it matches the best
        // baseline tightly: no spurious activations at all.
        if wifi_kbps >= 8_000 {
            prop_assert!(e.energy_j <= m.energy_j.min(t.energy_j) * 1.1 + 1.0);
            prop_assert_eq!(e.promotions, 0);
        }
    }
}
