//! Cross-crate integration tests: full simulations through the public API,
//! checking the paper's headline claims end-to-end.

use emptcp_repro::expr::scenario::{Scenario, Workload};
use emptcp_repro::expr::{host, Strategy};

const MB: u64 = 1 << 20;

fn download(mut s: Scenario, size: u64) -> Scenario {
    s.workload = Workload::Download { size };
    s
}

#[test]
fn headline_good_wifi_emptcp_saves_energy() {
    // §4.2 / Fig 5: with good WiFi, eMPTCP avoids LTE entirely and saves
    // substantially over MPTCP.
    let s = || download(Scenario::static_good_wifi(), 16 * MB);
    let mptcp = host::run(s(), Strategy::Mptcp, 1);
    let emptcp = host::run(s(), Strategy::emptcp_default(), 1);
    assert!(mptcp.completed && emptcp.completed);
    assert_eq!(emptcp.cell_bytes, 0);
    assert_eq!(emptcp.promotions, 0);
    assert!(
        emptcp.energy_j < 0.7 * mptcp.energy_j,
        "eMPTCP {:.1} J vs MPTCP {:.1} J",
        emptcp.energy_j,
        mptcp.energy_j
    );
}

#[test]
fn headline_bad_wifi_emptcp_matches_mptcp() {
    // §4.2 / Fig 6: with bad WiFi, eMPTCP recruits LTE and lands within a
    // few percent of MPTCP on both energy and time.
    let s = || download(Scenario::static_bad_wifi(), 16 * MB);
    let mptcp = host::run(s(), Strategy::Mptcp, 2);
    let emptcp = host::run(s(), Strategy::emptcp_default(), 2);
    assert!(mptcp.completed && emptcp.completed);
    assert!(emptcp.cell_bytes > 8 * MB, "LTE barely used: {emptcp:?}");
    assert!(
        emptcp.energy_j < 1.25 * mptcp.energy_j,
        "eMPTCP {:.1} J vs MPTCP {:.1} J",
        emptcp.energy_j,
        mptcp.energy_j
    );
    assert!(emptcp.download_time_s < 1.6 * mptcp.download_time_s);
}

#[test]
fn small_downloads_never_wake_lte() {
    // §5.2 / Fig 15: 256 kB transfers finish before kappa or tau can fire.
    for seed in 0..8 {
        let s = download(Scenario::static_good_wifi(), 256 << 10);
        let r = host::run(s, Strategy::emptcp_default(), seed);
        assert!(r.completed);
        assert_eq!(r.promotions, 0, "seed {seed} woke the LTE radio");
    }
}

#[test]
fn every_strategy_completes_across_environments() {
    let environments: Vec<(&str, Scenario)> = vec![
        ("good", download(Scenario::static_good_wifi(), 4 * MB)),
        ("bad", download(Scenario::static_bad_wifi(), 4 * MB)),
        (
            "contended",
            download(Scenario::background_traffic(2, 0.05), 4 * MB),
        ),
        ("modulated", download(Scenario::bandwidth_changes(), 4 * MB)),
    ];
    let strategies = [
        Strategy::Mptcp,
        Strategy::emptcp_default(),
        Strategy::TcpWifi,
        Strategy::TcpCellular,
        Strategy::WifiFirst,
        Strategy::MdpScheduler,
    ];
    for (name, scenario) in &environments {
        for &st in &strategies {
            let r = host::run(scenario.clone(), st, 3);
            assert!(
                r.completed,
                "{} did not finish in '{name}': {r:?}",
                st.label()
            );
            assert_eq!(
                r.bytes_delivered,
                4 * MB,
                "{} short delivery in '{name}'",
                st.label()
            );
            // Subflow-level counters include reinjected duplicates, so the
            // sum can exceed the connection-level total slightly.
            assert!(r.wifi_bytes + r.cell_bytes >= 4 * MB);
            assert!(r.wifi_bytes + r.cell_bytes < 4 * MB + MB);
        }
    }
}

#[test]
fn full_stack_determinism() {
    let s = || download(Scenario::background_traffic(3, 0.05), 4 * MB);
    let a = host::run(s(), Strategy::emptcp_default(), 99);
    let b = host::run(s(), Strategy::emptcp_default(), 99);
    assert_eq!(a.energy_j, b.energy_j);
    assert_eq!(a.download_time_s, b.download_time_s);
    assert_eq!(a.retransmissions, b.retransmissions);
    assert_eq!(a.usage_switches, b.usage_switches);
    // Different seed → different loss pattern → different dynamics.
    let c = host::run(s(), Strategy::emptcp_default(), 100);
    assert_ne!(a.energy_j, c.energy_j);
}

#[test]
fn wifi_first_and_mdp_degenerate_to_tcp_wifi() {
    // §4.6: while the WiFi association holds, neither WiFi-First nor the
    // MDP scheduler ever carries data over cellular. WiFi-First still
    // "needlessly activates the cellular interface at connection
    // establishment" (the paper's words): its subflow handshake costs the
    // promotion + tail. The MDP scheduler never opens the subflow at all.
    let tcp = host::run(
        download(Scenario::static_good_wifi(), 4 * MB),
        Strategy::TcpWifi,
        5,
    );
    let wf = host::run(
        download(Scenario::static_good_wifi(), 4 * MB),
        Strategy::WifiFirst,
        5,
    );
    assert!(wf.completed);
    assert_eq!(wf.cell_bytes, 0, "WiFi-First carried data over LTE");
    assert_eq!(wf.promotions, 1, "the needless activation");
    let gap = wf.energy_j - tcp.energy_j;
    assert!((8.0..16.0).contains(&gap), "activation cost {gap:.1} J");

    let mdp = host::run(
        download(Scenario::static_good_wifi(), 4 * MB),
        Strategy::MdpScheduler,
        5,
    );
    assert!(mdp.completed);
    assert_eq!(mdp.cell_bytes, 0, "MDP scheduler used LTE");
    assert_eq!(mdp.promotions, 0);
    assert!((mdp.energy_j - tcp.energy_j).abs() < 0.05 * tcp.energy_j);
}

#[test]
fn contention_hurts_single_path_most() {
    // §4.4: under heavy interference TCP-over-WiFi slows dramatically while
    // MPTCP rides LTE through it.
    let s = || download(Scenario::background_traffic(3, 0.05), 8 * MB);
    let mptcp = host::run(s(), Strategy::Mptcp, 6);
    let tcp = host::run(s(), Strategy::TcpWifi, 6);
    assert!(mptcp.completed && tcp.completed);
    assert!(
        tcp.download_time_s > 1.3 * mptcp.download_time_s,
        "tcp {:.1}s vs mptcp {:.1}s",
        tcp.download_time_s,
        mptcp.download_time_s
    );
}

#[test]
fn mobility_orderings_hold() {
    // Fig 13's two orderings: per-byte energy MPTCP > eMPTCP > TCP/WiFi,
    // download amount MPTCP > eMPTCP > TCP/WiFi.
    let mptcp = host::run(Scenario::mobility(), Strategy::Mptcp, 7);
    let emptcp = host::run(Scenario::mobility(), Strategy::emptcp_default(), 7);
    let tcp = host::run(Scenario::mobility(), Strategy::TcpWifi, 7);
    assert!(mptcp.joules_per_byte > emptcp.joules_per_byte);
    assert!(emptcp.joules_per_byte > tcp.joules_per_byte);
    assert!(mptcp.bytes_delivered > emptcp.bytes_delivered);
    assert!(emptcp.bytes_delivered > tcp.bytes_delivered);
}

#[test]
fn cellular_fixed_cost_visible_in_totals() {
    // A 1 MB download over LTE pays roughly the Fig 1 fixed overhead more
    // than the same download over WiFi.
    let wifi = host::run(
        download(Scenario::static_good_wifi(), MB),
        Strategy::TcpWifi,
        8,
    );
    let lte = host::run(
        download(Scenario::static_good_wifi(), MB),
        Strategy::TcpCellular,
        8,
    );
    let gap = lte.energy_j - wifi.energy_j;
    assert!(
        (8.0..16.0).contains(&gap),
        "fixed-cost gap {gap:.1} J outside the LTE promotion+tail ballpark"
    );
}

#[test]
fn energy_at_completion_bounded_by_total() {
    let r = host::run(
        download(Scenario::static_good_wifi(), 4 * MB),
        Strategy::Mptcp,
        9,
    );
    assert!(r.energy_at_completion_j <= r.energy_j);
    assert!(r.energy_at_completion_j > 0.0);
    // The drain (LTE tail) adds energy after completion.
    assert!(r.energy_j - r.energy_at_completion_j > 5.0);
}
#[test]
fn handover_outage_behaviours() {
    use emptcp_repro::expr::scenario::Scenario;
    use emptcp_repro::expr::{host, Strategy};
    // The default outage scenario: 64 MB download, association lost during
    // [20 s, 50 s).
    let s = Scenario::wifi_outage;
    // Plain TCP over WiFi stalls through the 30 s outage but recovers.
    let tcp = host::run(s(), Strategy::TcpWifi, 1);
    assert!(tcp.completed);
    assert!(tcp.download_time_s > 60.0, "{}", tcp.download_time_s);
    // WiFi-First activates its backup during the outage.
    let wf = host::run(s(), Strategy::WifiFirst, 1);
    assert!(wf.completed);
    assert!(wf.cell_bytes > 0, "backup never engaged: {wf:?}");
    assert!(wf.download_time_s < tcp.download_time_s);
    // Single-Path establishes cellular only after the loss.
    let sp = host::run(s(), Strategy::SinglePath, 1);
    assert!(sp.completed);
    assert!(sp.cell_bytes > 0);
    assert_eq!(sp.promotions, 1);
    assert!(sp.download_time_s < tcp.download_time_s);
    // eMPTCP rides through on LTE as well.
    let e = host::run(s(), Strategy::emptcp_default(), 1);
    assert!(e.completed);
    assert!(e.cell_bytes > 0);
    assert!(e.download_time_s < tcp.download_time_s);
}
