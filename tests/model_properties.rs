//! Property-based tests on the energy model and EIB, across both device
//! profiles and the whole throughput plane.

use emptcp_repro::energy::region::{best_usage_for_size, transfer_energy_j, transfer_time_s};
use emptcp_repro::energy::{DeviceProfile, Eib, EnergyModel, PathUsage, PowerCurve};
use emptcp_repro::phy::IfaceKind;
use proptest::prelude::*;

/// Build a random—but physically sensible—device profile: monotone power
/// curves, WiFi cheaper than cellular at every rate, a sharing discount
/// below every base power.
fn random_profile(
    wifi_base: f64,
    wifi_steps: [f64; 3],
    cell_gap: f64,
    cell_steps: [f64; 3],
    discount_frac: f64,
) -> DeviceProfile {
    let mut profile = DeviceProfile::galaxy_s3();
    let knots_w = vec![
        (0.0, wifi_base),
        (2.0, wifi_base + wifi_steps[0]),
        (8.0, wifi_base + wifi_steps[0] + wifi_steps[1]),
        (
            25.0,
            wifi_base + wifi_steps[0] + wifi_steps[1] + wifi_steps[2],
        ),
    ];
    let cell_base = wifi_base + cell_gap;
    let knots_c = vec![
        (0.0, cell_base),
        (2.0, cell_base + wifi_steps[0] + cell_steps[0]),
        (
            8.0,
            cell_base + wifi_steps[0] + wifi_steps[1] + cell_steps[0] + cell_steps[1],
        ),
        (
            25.0,
            cell_base
                + wifi_steps[0]
                + wifi_steps[1]
                + wifi_steps[2]
                + cell_steps[0]
                + cell_steps[1]
                + cell_steps[2],
        ),
    ];
    profile.wifi_curve = PowerCurve::from_points(knots_w);
    profile.lte.curve = PowerCurve::from_points(knots_c);
    profile.sharing_discount_w = discount_frac * wifi_base;
    profile
}

fn models() -> Vec<EnergyModel> {
    vec![
        EnergyModel::new(DeviceProfile::galaxy_s3(), IfaceKind::CellularLte),
        EnergyModel::new(DeviceProfile::galaxy_s3(), IfaceKind::Cellular3g),
        EnergyModel::new(DeviceProfile::nexus_5(), IfaceKind::CellularLte),
        EnergyModel::new(DeviceProfile::nexus_5(), IfaceKind::Cellular3g),
    ]
}

proptest! {
    #[test]
    fn efficiency_of_both_bounded_by_singles(
        wifi in 0.05f64..25.0,
        cell in 0.05f64..25.0,
    ) {
        for model in models() {
            let w = model.joules_per_byte(PathUsage::WifiOnly, wifi, cell);
            let c = model.joules_per_byte(PathUsage::CellularOnly, wifi, cell);
            let b = model.joules_per_byte(PathUsage::Both, wifi, cell);
            // "Both" can beat the best single path (the sharing discount)
            // but never the impossible: it is at most the worse single.
            prop_assert!(b <= w.max(c) + 1e-12);
            prop_assert!(b > 0.0);
        }
    }

    #[test]
    fn power_monotone_in_throughput(
        lo in 0.0f64..20.0,
        delta in 0.01f64..10.0,
    ) {
        for model in models() {
            let hi = lo + delta;
            prop_assert!(
                model.profile().wifi_curve.power_w(hi)
                    >= model.profile().wifi_curve.power_w(lo) - 1e-12
            );
            prop_assert!(
                model.cellular().curve.power_w(hi)
                    >= model.cellular().curve.power_w(lo) - 1e-12
            );
        }
    }

    #[test]
    fn eib_choice_agrees_with_exhaustive_search(
        wifi in 0.1f64..20.0,
        cell in 0.3f64..20.0,
    ) {
        // The EIB is a compressed representation of best_usage; away from
        // the (interpolated) boundaries they must agree. Near a boundary,
        // tolerate the tie.
        let model = EnergyModel::galaxy_s3_lte();
        let eib = Eib::generate_default(&model);
        let by_eib = eib.choose(wifi, cell);
        let (by_model, best) = model.best_usage(wifi, cell);
        if by_eib != by_model {
            let eib_eff = model.joules_per_byte(by_eib, wifi, cell);
            prop_assert!(
                eib_eff <= best * 1.05,
                "EIB pick {:?} is {:.1}% worse than optimal at ({wifi:.2}, {cell:.2})",
                by_eib,
                100.0 * (eib_eff / best - 1.0)
            );
        }
    }

    #[test]
    fn finite_transfer_energy_scales_with_size(
        wifi in 0.2f64..15.0,
        cell in 0.5f64..15.0,
        size_mb in 1u64..64,
    ) {
        let model = EnergyModel::galaxy_s3_lte();
        for usage in PathUsage::ALL {
            let small = transfer_energy_j(&model, usage, size_mb << 20, wifi, cell);
            let large = transfer_energy_j(&model, usage, (size_mb * 2) << 20, wifi, cell);
            prop_assert!(large > small, "{usage:?} at ({wifi}, {cell})");
            // Fixed costs amortize: doubling the size less than doubles the
            // energy of cellular-involving usages... unless fixed costs are
            // already negligible; either way it never MORE than doubles.
            prop_assert!(large <= small * 2.0 + 1e-9);
        }
    }

    #[test]
    fn best_usage_for_size_converges_to_steady_state(
        wifi in 0.3f64..10.0,
        cell in 0.5f64..10.0,
    ) {
        let model = EnergyModel::galaxy_s3_lte();
        let (huge, _) = best_usage_for_size(&model, 4 << 30, wifi, cell);
        let (steady, steady_eff) = model.best_usage(wifi, cell);
        if huge != steady {
            // Boundary tie tolerance.
            let eff = model.joules_per_byte(huge, wifi, cell);
            prop_assert!(eff <= steady_eff * 1.02);
        }
    }

    #[test]
    fn transfer_time_consistent_with_rates(
        wifi in 0.2f64..20.0,
        cell in 0.2f64..20.0,
        size_mb in 1u64..32,
    ) {
        let model = EnergyModel::galaxy_s3_lte();
        let size = size_mb << 20;
        let t_wifi = transfer_time_s(&model, PathUsage::WifiOnly, size, wifi, cell);
        let t_both = transfer_time_s(&model, PathUsage::Both, size, wifi, cell);
        prop_assert!(t_both < t_wifi, "both must be faster than wifi-only");
    }
}

#[test]
fn eib_thresholds_monotone_for_all_models() {
    for model in models() {
        let eib = Eib::generate_default(&model);
        let mut last = (0.0f64, 0.0f64);
        for row in eib.rows() {
            assert!(row.cell_only_below >= last.0 - 1e-9);
            assert!(row.wifi_only_at_or_above >= last.1 - 1e-9);
            assert!(row.cell_only_below <= row.wifi_only_at_or_above + 1e-9);
            last = (row.cell_only_below, row.wifi_only_at_or_above);
        }
    }
}

#[test]
fn v_region_exists_for_every_profile() {
    for model in models() {
        let mut found = false;
        let mut wifi = 0.1;
        'outer: while wifi < 5.0 {
            let mut cell = 0.5;
            while cell < 15.0 {
                if model.both_vs_best_single(wifi, cell) < 1.0 {
                    found = true;
                    break 'outer;
                }
                cell += 0.5;
            }
            wifi += 0.1;
        }
        assert!(found, "no V-region for {}", model.profile().name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn eib_generation_robust_over_random_profiles(
        wifi_base in 0.05f64..0.6,
        w0 in 0.01f64..0.5,
        w1 in 0.01f64..0.5,
        w2 in 0.01f64..0.5,
        cell_gap in 0.1f64..1.5,
        c0 in 0.0f64..0.5,
        c1 in 0.0f64..0.5,
        c2 in 0.0f64..0.5,
        discount_frac in 0.05f64..0.95,
    ) {
        // Whatever the (sensible) device, the generated EIB must be a
        // well-formed, monotone threshold table that never prescribes a
        // usage much worse than optimal.
        let profile = random_profile(
            wifi_base,
            [w0, w1, w2],
            cell_gap,
            [c0, c1, c2],
            discount_frac,
        );
        let model = EnergyModel::new(profile, IfaceKind::CellularLte);
        let eib = Eib::generate_default(&model);
        let mut last = (0.0f64, 0.0f64);
        for row in eib.rows() {
            prop_assert!(row.cell_only_below.is_finite());
            prop_assert!(row.wifi_only_at_or_above.is_finite());
            prop_assert!(row.cell_only_below <= row.wifi_only_at_or_above + 1e-9);
            prop_assert!(row.cell_only_below >= last.0 - 1e-6);
            prop_assert!(row.wifi_only_at_or_above >= last.1 - 1e-6);
            last = (row.cell_only_below, row.wifi_only_at_or_above);
        }
        for (wifi, cell) in [(0.3, 1.0), (2.0, 5.0), (9.0, 3.0), (0.8, 12.0)] {
            let chosen = eib.choose(wifi, cell);
            let eff = model.joules_per_byte(chosen, wifi, cell);
            let (_, best) = model.best_usage(wifi, cell);
            prop_assert!(
                eff <= best * 1.10 + 1e-12,
                "EIB pick {:.1}% off optimal at ({wifi}, {cell})",
                100.0 * (eff / best - 1.0)
            );
        }
    }
}
