//! Consistency of the measurement plumbing: every run's traces and summary
//! numbers must tell one coherent story.

use emptcp_repro::expr::scenario::{Scenario, Workload};
use emptcp_repro::expr::{host, RunResult, Strategy};

fn run(strategy: Strategy, seed: u64) -> RunResult {
    let mut s = Scenario::bandwidth_changes();
    s.workload = Workload::Download { size: 8 << 20 };
    host::run(s, strategy, seed)
}

fn check_invariants(r: &RunResult) {
    assert!(r.completed, "{}", r.strategy);
    // Accumulated energy is non-decreasing in time.
    let mut last = 0.0;
    for &(_, e) in r.energy_trace.points() {
        assert!(e >= last - 1e-9, "energy decreased in {}", r.strategy);
        last = e;
    }
    // Final trace value agrees with the summary (within the drain window
    // recorded after the last tick).
    assert!(last <= r.energy_j + 1e-6);
    assert!(r.energy_j <= last + 25.0, "trace/summary gap too large");
    // Throughput traces are non-negative and bounded by physics (the links
    // top out around 12 Mbps; allow ACK overhead and burst measurement).
    for trace in [&r.wifi_thpt_trace, &r.cell_thpt_trace] {
        for &(_, v) in trace.points() {
            assert!((0.0..=40.0).contains(&v), "throughput {v} out of range");
        }
    }
    // Byte accounting (subflow-level counters include reinjected
    // duplicates, so the sum can slightly exceed the connection total).
    assert!(r.wifi_bytes + r.cell_bytes >= r.bytes_delivered);
    assert!(r.wifi_bytes + r.cell_bytes <= r.bytes_delivered + (1 << 20));
    assert!(r.joules_per_byte.is_finite());
    assert!(r.energy_at_completion_j <= r.energy_j + 1e-9);
    // Times are sane.
    assert!(r.download_time_s > 0.0 && r.download_time_s < 6_000.0);
}

#[test]
fn traces_consistent_for_all_strategies() {
    for (i, strategy) in [
        Strategy::Mptcp,
        Strategy::emptcp_default(),
        Strategy::TcpWifi,
        Strategy::WifiFirst,
    ]
    .into_iter()
    .enumerate()
    {
        let r = run(strategy, 40 + i as u64);
        check_invariants(&r);
    }
}

#[test]
fn capacity_trace_reflects_modulation() {
    let r = run(Strategy::TcpWifi, 50);
    // The §4.3 modulator flips between <=1 Mbps and >=10 Mbps bands.
    let values: Vec<f64> = r
        .wifi_capacity_trace
        .points()
        .iter()
        .map(|&(_, v)| v)
        .collect();
    assert!(values.iter().any(|&v| v <= 1.0), "never in the low band");
    assert!(values.iter().any(|&v| v >= 10.0), "never in the high band");
    assert!(values.iter().all(|&v| v <= 12.0 + 1e-9));
}

#[test]
fn promotions_match_radio_usage() {
    let mut s = Scenario::static_good_wifi();
    s.workload = Workload::Download { size: 2 << 20 };
    let wifi_only = host::run(s.clone(), Strategy::TcpWifi, 60);
    assert_eq!(wifi_only.promotions, 0);
    assert_eq!(wifi_only.cell_bytes, 0);
    let cellular = host::run(s, Strategy::TcpCellular, 60);
    assert_eq!(cellular.promotions, 1, "one promotion for one transfer");
}

#[test]
fn energy_scales_with_download_size() {
    let run_size = |size: u64| {
        let mut s = Scenario::static_good_wifi();
        s.workload = Workload::Download { size };
        host::run(s, Strategy::TcpWifi, 70)
    };
    let small = run_size(2 << 20);
    let large = run_size(16 << 20);
    assert!(large.energy_j > small.energy_j * 2.0);
    assert!(large.download_time_s > small.download_time_s * 2.0);
}

#[test]
fn usage_switch_counter_only_moves_for_emptcp() {
    let r = run(Strategy::Mptcp, 80);
    assert_eq!(r.usage_switches, 0);
    let e = run(Strategy::emptcp_default(), 80);
    // The modulated scenario forces at least the initial Both switch.
    assert!(e.usage_switches >= 1);
}
