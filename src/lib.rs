#![warn(missing_docs)]
//! Umbrella crate for the eMPTCP reproduction workspace.
//!
//! This crate exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. It re-exports the workspace
//! crates so examples can use a single dependency root.

pub use emptcp;
pub use emptcp_energy as energy;
pub use emptcp_expr as expr;
pub use emptcp_mptcp as mptcp;
pub use emptcp_phy as phy;
pub use emptcp_sim as sim;
pub use emptcp_tcp as tcp;
pub use emptcp_workload as workload;
