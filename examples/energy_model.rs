//! Explore the energy model: power curves, the Energy Information Base
//! (Table 2), the Fig 3 V-region, and the Fig 4 finite-transfer regions.
//!
//! ```text
//! cargo run --release --example energy_model
//! ```
//!
//! No simulation runs here — this is the offline computation the paper
//! performs to populate the EIB on the device.

use emptcp_repro::energy::region::{best_usage_for_size, mptcp_region};
use emptcp_repro::energy::{DeviceProfile, Eib, EnergyModel, PathUsage};

fn main() {
    for profile in [DeviceProfile::galaxy_s3(), DeviceProfile::nexus_5()] {
        let (wifi, threeg, lte) = profile.fixed_overheads_j();
        println!(
            "{:<20} fixed overheads: WiFi {wifi:.2} J, 3G {threeg:.1} J, LTE {lte:.1} J",
            profile.name
        );
    }

    let model = EnergyModel::galaxy_s3_lte();
    println!("\nGalaxy S3 power draw (W) while transferring:");
    println!("  {:<6} {:>8} {:>8}", "Mbps", "WiFi", "LTE");
    for mbps in [0.5, 1.0, 2.0, 5.0, 10.0, 20.0] {
        println!(
            "  {:<6} {:>8.3} {:>8.3}",
            mbps,
            model.profile().wifi_curve.power_w(mbps),
            model.cellular().curve.power_w(mbps)
        );
    }

    let eib = Eib::generate_default(&model);
    println!("\nEnergy Information Base (Table 2): WiFi-throughput transition points");
    println!(
        "  {:<10} {:>15} {:>18}",
        "LTE Mbps", "LTE-only below", "WiFi-only at/above"
    );
    for cell in [0.5, 1.0, 1.5, 2.0, 4.0, 8.0] {
        let (t1, t2) = eib.thresholds(cell);
        println!("  {:<10} {:>15.3} {:>18.3}", cell, t1, t2);
    }

    println!("\nFig 3's V-region: the EIB verdict over the throughput plane");
    println!(
        "  (rows: LTE 10 -> 0.5 Mbps; cols: WiFi 0.25 -> 6 Mbps; B=both, W=wifi-only, C=lte-only)"
    );
    let mut lte = 10.0;
    while lte >= 0.5 {
        let mut row = String::from("  ");
        let mut wifi = 0.25;
        while wifi <= 6.0 {
            row.push(match eib.choose(wifi, lte) {
                PathUsage::Both => 'B',
                PathUsage::WifiOnly => 'W',
                PathUsage::CellularOnly => 'C',
            });
            wifi += 0.25;
        }
        println!("{row}   LTE={lte:.2}");
        lte /= 1.6;
    }

    println!("\nFig 4: where completing an entire transfer is cheapest on both interfaces");
    let cell_grid: Vec<f64> = (1..=12).map(|i| i as f64).collect();
    for size_mb in [1u64, 4, 16] {
        let rows = mptcp_region(&model, size_mb << 20, &cell_grid, 6.0, 0.05);
        let covered = rows.iter().filter(|r| r.wifi_range.is_some()).count();
        println!(
            "  {size_mb:>2} MB: both-interfaces region exists at {covered}/{} LTE rates",
            rows.len()
        );
    }

    let (usage, energy) = best_usage_for_size(&model, 16 << 20, 0.8, 8.0);
    println!(
        "\nExample: 16 MB at WiFi 0.8 Mbps / LTE 8 Mbps -> {} ({energy:.1} J)",
        usage.label()
    );
}
