//! Handover: a 64 MB download across a 30 s WiFi association outage,
//! comparing every strategy's reaction (the §4.6 discussion made
//! runnable).
//!
//! ```text
//! cargo run --release --example handover
//! ```

use emptcp_repro::expr::scenario::Scenario;
use emptcp_repro::expr::{host, Strategy};

fn main() {
    println!("64 MB download; the WiFi association drops at t=20 s and returns at t=50 s.\n");
    println!(
        "{:<18} {:>10} {:>10} {:>9} {:>11}  note",
        "strategy", "energy (J)", "time (s)", "LTE MB", "promotions"
    );
    for (strategy, note) in [
        (Strategy::Mptcp, "LTE open from the start"),
        (
            Strategy::emptcp_default(),
            "wakes LTE when the link dies, re-suspends after",
        ),
        (Strategy::TcpWifi, "stalls for the whole outage"),
        (
            Strategy::WifiFirst,
            "backup engages on link loss (plus the setup activation)",
        ),
        (
            Strategy::SinglePath,
            "opens LTE only after the interface goes down",
        ),
    ] {
        let r = host::run(Scenario::wifi_outage(), strategy, 3);
        assert!(r.completed, "{} stalled", r.strategy);
        println!(
            "{:<18} {:>10.1} {:>10.1} {:>9.1} {:>11}  {note}",
            r.strategy,
            r.energy_j,
            r.download_time_s,
            r.cell_bytes as f64 / (1 << 20) as f64,
            r.promotions,
        );
    }
    println!(
        "\nThe outage is where the §4.6 baselines earn their keep — and where \
         their costs show: WiFi-First pays an extra promotion+tail at connection \
         setup for a backup it may never need, while eMPTCP activates LTE only \
         once the link-down signal (or collapsing throughput) demands it."
    );
}
