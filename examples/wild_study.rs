//! A miniature §5 in-the-wild study: sample environments across servers and
//! venues, run the three strategies per draw, and bin results by the
//! paper's Good/Bad 8 Mbps categorization.
//!
//! ```text
//! cargo run --release --example wild_study [iterations]
//! ```

use emptcp_repro::expr::wild::{self, Category};
use emptcp_repro::sim::stats::WhiskerSummary;

fn main() {
    let iterations: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("Sampling {iterations} iterations x 3 servers x 3 venues, 2 MB downloads...\n");
    let traces = wild::run_study(2 << 20, iterations, 2026);

    for cat in Category::ALL {
        let in_cat: Vec<_> = traces.iter().filter(|t| t.category == cat).collect();
        println!("{} ({} traces)", cat.label(), in_cat.len());
        if in_cat.is_empty() {
            continue;
        }
        for (label, pick) in [("MPTCP", 0usize), ("eMPTCP", 1), ("TCP over WiFi", 2)] {
            let energies: Vec<f64> = in_cat
                .iter()
                .map(|t| match pick {
                    0 => t.mptcp.energy_j,
                    1 => t.emptcp.energy_j,
                    _ => t.tcp_wifi.energy_j,
                })
                .collect();
            if let Some(w) = WhiskerSummary::of(&energies) {
                println!(
                    "  {:<16} energy median {:>7.2} J  (IQR {:>6.2}..{:<6.2}, {} outliers)",
                    label,
                    w.median,
                    w.q1,
                    w.q3,
                    w.outliers.len()
                );
            }
        }
    }

    println!(
        "\nThe paper's §5 headline falls out of the categories: wherever WiFi is\n\
         good, eMPTCP matches TCP-over-WiFi and undercuts MPTCP by the LTE fixed\n\
         costs; where WiFi is bad, it recruits LTE and matches MPTCP instead."
    );
}
