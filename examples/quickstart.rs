//! Quickstart: download one file three ways and compare energy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the 30-second tour of the library: build a scenario (an
//! environment: link capacities, RTTs, a workload, a device energy
//! profile), run it under three transport strategies — standard MPTCP,
//! eMPTCP, and single-path TCP over WiFi — and print what the energy meter
//! and the clock saw.

use emptcp_repro::expr::scenario::{Scenario, Workload};
use emptcp_repro::expr::{host, Strategy};

fn main() {
    // A 16 MB download over good WiFi (11 Mbps) with LTE available.
    let scenario = || {
        let mut s = Scenario::static_good_wifi();
        s.workload = Workload::Download { size: 16 << 20 };
        s
    };

    println!("16 MB download, WiFi 11 Mbps + LTE 12 Mbps (Samsung Galaxy S3 energy model)\n");
    println!(
        "{:<16} {:>10} {:>10} {:>9} {:>9} {:>11}",
        "strategy", "energy (J)", "time (s)", "wifi MB", "LTE MB", "promotions"
    );
    for strategy in [
        Strategy::Mptcp,
        Strategy::emptcp_default(),
        Strategy::TcpWifi,
    ] {
        let r = host::run(scenario(), strategy, 42);
        assert!(r.completed, "{} did not finish", r.strategy);
        println!(
            "{:<16} {:>10.1} {:>10.1} {:>9.1} {:>9.1} {:>11}",
            r.strategy,
            r.energy_j,
            r.download_time_s,
            r.wifi_bytes as f64 / (1 << 20) as f64,
            r.cell_bytes as f64 / (1 << 20) as f64,
            r.promotions,
        );
    }

    println!(
        "\neMPTCP matches TCP-over-WiFi here: with WiFi this good, waking the LTE \
         radio would only buy speed at a steep per-byte energy cost, so the \
         delayed-establishment rules (kappa = 1 MB, tau = 3 s, EIB check) never \
         fire. Standard MPTCP pays the LTE promotion and tail for its speedup."
    );
}
