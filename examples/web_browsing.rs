//! The §5.4 case study: load a CNN-like page (107 objects over six
//! parallel persistent connections) under each strategy.
//!
//! ```text
//! cargo run --release --example web_browsing
//! ```

use emptcp_repro::expr::scenario::Scenario;
use emptcp_repro::expr::{host, Strategy};
use emptcp_repro::sim::SimRng;
use emptcp_repro::workload::WebPage;

fn main() {
    let page = WebPage::cnn_like(&mut SimRng::new(0xCAFE));
    let small = page.objects.iter().filter(|&&s| s < 256 * 1024).count();
    println!(
        "Synthetic page: {} objects, {:.1} MB total, {}/{} under 256 kB\n",
        page.objects.len(),
        page.total_bytes() as f64 / 1e6,
        small,
        page.objects.len()
    );

    println!(
        "{:<16} {:>10} {:>12} {:>9} {:>11}",
        "strategy", "energy (J)", "latency (s)", "LTE MB", "promotions"
    );
    for strategy in [
        Strategy::Mptcp,
        Strategy::emptcp_default(),
        Strategy::TcpWifi,
    ] {
        let r = host::run(Scenario::web_browsing(), strategy, 11);
        assert!(r.completed);
        println!(
            "{:<16} {:>10.1} {:>12.2} {:>9.2} {:>11}",
            r.strategy,
            r.energy_j,
            r.download_time_s,
            r.cell_bytes as f64 / (1 << 20) as f64,
            r.promotions
        );
    }

    println!(
        "\nEvery object is small, so no connection ever accumulates the kappa = 1 MB \
         of WiFi bytes that would justify an LTE subflow, and the EIB check keeps \
         postponing the tau timer: eMPTCP loads the page WiFi-only while standard \
         MPTCP burns the LTE promotion + tail on every one of its six connections."
    );
}
