//! The §4.5 mobile scenario: walk a route past an access point and watch
//! eMPTCP adapt path usage as WiFi comes and goes.
//!
//! ```text
//! cargo run --release --example mobility_walk
//! ```
//!
//! Prints a timeline of WiFi capacity versus per-interface goodput for an
//! eMPTCP run, then the Fig 13 comparison (energy per byte and amount
//! downloaded in 250 s) across strategies.

use emptcp_repro::expr::scenario::Scenario;
use emptcp_repro::expr::{host, Strategy};
use emptcp_repro::sim::SimTime;

fn main() {
    let walk = Scenario::umass_walk();
    println!("The walk (Fig 11): distance from the AP over time");
    for t in (0..=250).step_by(25) {
        let at = SimTime::from_secs(t);
        println!(
            "  t={t:>3}s  distance {:>5.1} m  {}  wifi capacity {:>5.1} Mbps",
            walk.distance_at(at),
            if walk.in_usable_range(at) {
                "in range "
            } else {
                "OUT OF RANGE"
            },
            walk.wifi_goodput_bps(at) as f64 / 1e6,
        );
    }

    println!("\neMPTCP through the walk (timeline, 25 s buckets):");
    let r = host::run(Scenario::mobility(), Strategy::emptcp_default(), 7);
    let bucket = |trace: &emptcp_repro::sim::trace::TimeSeries, lo: u64, hi: u64| -> f64 {
        let pts: Vec<f64> = trace
            .points()
            .iter()
            .filter(|(t, _)| (lo..hi).contains(&(t.as_nanos() / 1_000_000_000)))
            .map(|&(_, v)| v)
            .collect();
        if pts.is_empty() {
            0.0
        } else {
            pts.iter().sum::<f64>() / pts.len() as f64
        }
    };
    println!(
        "  {:<10} {:>12} {:>12} {:>12}",
        "window", "wifi Mbps", "LTE Mbps", "energy J"
    );
    for lo in (0..250).step_by(25) {
        let hi = lo + 25;
        println!(
            "  {:>3}-{:<3}s   {:>12.2} {:>12.2} {:>12.1}",
            lo,
            hi,
            bucket(&r.wifi_thpt_trace, lo, hi),
            bucket(&r.cell_thpt_trace, lo, hi),
            r.energy_trace
                .value_at(SimTime::from_secs(hi))
                .unwrap_or(0.0),
        );
    }
    println!(
        "\n  eMPTCP: {:.0} MB in 250 s, {:.2} uJ/byte, {} usage switches, {} LTE promotions",
        r.bytes_delivered as f64 / (1 << 20) as f64,
        r.joules_per_byte * 1e6,
        r.usage_switches,
        r.promotions
    );

    println!("\nFig 13 comparison (one run each):");
    for strategy in [
        Strategy::Mptcp,
        Strategy::emptcp_default(),
        Strategy::TcpWifi,
    ] {
        let r = host::run(Scenario::mobility(), strategy, 7);
        println!(
            "  {:<16} {:>7.0} MB downloaded, {:>6.2} uJ/byte",
            r.strategy,
            r.bytes_delivered as f64 / (1 << 20) as f64,
            r.joules_per_byte * 1e6
        );
    }
}
