//! AP bandwidth modulation (§4.3).
//!
//! "WiFi link bandwidth is modulated by a two state on-off process with
//! exponentially distributed times spent in the on or off state with a mean
//! of 40 seconds. The bandwidth provided by the AP is ≤ 1 Mbps or
//! ≥ 10 Mbps, depending on its state."
//!
//! Each time the process toggles, a fresh rate is drawn from the entered
//! state's band, so consecutive high (or low) phases differ realistically.

use emptcp_phy::modulation::{OnOff, OnOffProcess};
use emptcp_sim::{SimRng, SimTime};

/// Bandwidth band for one state, in bps.
#[derive(Clone, Copy, Debug)]
pub struct Band {
    /// Lower bound (inclusive).
    pub lo_bps: u64,
    /// Upper bound (inclusive).
    pub hi_bps: u64,
}

impl Band {
    fn draw(&self, rng: &mut SimRng) -> u64 {
        if self.hi_bps <= self.lo_bps {
            return self.lo_bps;
        }
        self.lo_bps + rng.below(self.hi_bps - self.lo_bps + 1)
    }
}

/// The modulated AP bandwidth process.
#[derive(Clone, Debug)]
pub struct BandwidthModulator {
    process: OnOffProcess,
    high: Band,
    low: Band,
    current_bps: u64,
    rng: SimRng,
}

impl BandwidthModulator {
    /// The paper's §4.3 setting: mean 40 s holding times, low ≤ 1 Mbps,
    /// high ≥ 10 Mbps. `start_high` selects the initial state.
    pub fn paper_default(start: SimTime, start_high: bool, rng: &mut SimRng) -> Self {
        BandwidthModulator::new(
            start,
            start_high,
            1.0 / 40.0,
            Band {
                lo_bps: 10_000_000,
                hi_bps: 12_000_000,
            },
            Band {
                lo_bps: 300_000,
                hi_bps: 1_000_000,
            },
            rng,
        )
    }

    /// Fully parameterized constructor; `rate_per_sec` applies to both
    /// states (symmetric holding times, as in the paper).
    pub fn new(
        start: SimTime,
        start_high: bool,
        rate_per_sec: f64,
        high: Band,
        low: Band,
        rng: &mut SimRng,
    ) -> Self {
        let mut own_rng = rng.fork(0xBAD0BEEF);
        let initial = if start_high { OnOff::On } else { OnOff::Off };
        let process =
            OnOffProcess::new(start, initial, rate_per_sec, rate_per_sec, rng.fork(0xF00D));
        let current_bps = if start_high {
            high.draw(&mut own_rng)
        } else {
            low.draw(&mut own_rng)
        };
        BandwidthModulator {
            process,
            high,
            low,
            current_bps,
            rng: own_rng,
        }
    }

    /// Advance to `now`; returns `Some(new_rate)` if the state flipped.
    pub fn poll(&mut self, now: SimTime) -> Option<u64> {
        if self.process.poll(now) {
            self.current_bps = match self.process.state() {
                OnOff::On => self.high.draw(&mut self.rng),
                OnOff::Off => self.low.draw(&mut self.rng),
            };
            Some(self.current_bps)
        } else {
            None
        }
    }

    /// The current AP bandwidth.
    pub fn current_bps(&self) -> u64 {
        self.current_bps
    }

    /// True while in the high-bandwidth state.
    pub fn is_high(&self) -> bool {
        self.process.state() == OnOff::On
    }

    /// When the next toggle is scheduled.
    pub fn next_toggle(&self) -> SimTime {
        self.process.next_toggle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emptcp_sim::SimDuration;

    #[test]
    fn rates_stay_in_bands() {
        let mut rng = SimRng::new(11);
        let mut m = BandwidthModulator::paper_default(SimTime::ZERO, true, &mut rng);
        assert!(m.current_bps() >= 10_000_000);
        let mut t = SimTime::ZERO;
        for _ in 0..200 {
            t += SimDuration::from_secs(10);
            m.poll(t);
            if m.is_high() {
                assert!(m.current_bps() >= 10_000_000);
            } else {
                assert!(m.current_bps() <= 1_000_000);
                assert!(m.current_bps() >= 300_000);
            }
        }
    }

    #[test]
    fn toggle_returns_new_rate() {
        let mut rng = SimRng::new(12);
        let mut m = BandwidthModulator::paper_default(SimTime::ZERO, false, &mut rng);
        let t = m.next_toggle();
        let rate = m.poll(t).expect("toggle due");
        assert!(rate >= 10_000_000, "entered high state");
        assert!(m.poll(t).is_none(), "no double toggle");
    }

    #[test]
    fn mean_holding_time_close_to_40s() {
        let mut rng = SimRng::new(13);
        let mut m = BandwidthModulator::paper_default(SimTime::ZERO, true, &mut rng);
        let mut toggles = 0;
        let horizon = SimTime::from_secs(400_000);
        let mut t = m.next_toggle();
        while t < horizon {
            m.poll(t);
            toggles += 1;
            t = m.next_toggle();
        }
        let mean = 400_000.0 / toggles as f64;
        assert!((mean - 40.0).abs() < 2.0, "mean holding {mean}");
    }
}
