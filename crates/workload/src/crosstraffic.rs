//! Background cross-traffic sources for shared-bottleneck experiments.
//!
//! A [`CrossTrafficSource`] is an unresponsive packet generator: while a
//! two-state Markov on-off process (the same process the §4.4 interferers
//! use) is On, it emits fixed-size packets with exponentially distributed
//! gaps at a configured mean rate; while Off it is silent. The fabric's
//! fleet harness points one of these at a router port to put realistic,
//! bursty competing load on a bottleneck — load that does not back off,
//! unlike the TCP flows being measured.
//!
//! Determinism: all randomness comes from the `SimRng` handed in at
//! construction, so a source replays identically for a given seed.

use emptcp_phy::modulation::{OnOff, OnOffProcess};
use emptcp_sim::{SimDuration, SimRng, SimTime};

/// An on-off Markov-modulated Poisson packet source.
#[derive(Clone, Debug)]
pub struct CrossTrafficSource {
    onoff: OnOffProcess,
    /// Mean offered rate while On, in bits per second.
    rate_bps: u64,
    /// Wire bytes per emitted packet.
    packet_bytes: u64,
    /// Next scheduled emission while On; `None` while Off.
    next_emit: Option<SimTime>,
    rng: SimRng,
    emitted: u64,
}

impl CrossTrafficSource {
    /// A source starting in the given state at `start`. `lambda_on` /
    /// `lambda_off` are the Markov transition rates per second (mean hold
    /// times `1/λ`); `rate_bps` is the mean offered load while On.
    pub fn new(
        start: SimTime,
        initial: OnOff,
        rate_bps: u64,
        packet_bytes: u64,
        lambda_on: f64,
        lambda_off: f64,
        mut rng: SimRng,
    ) -> Self {
        let onoff = OnOffProcess::new(start, initial, lambda_on, lambda_off, rng.fork(0x7C05));
        let mut src = CrossTrafficSource {
            onoff,
            rate_bps,
            packet_bytes,
            next_emit: None,
            rng,
            emitted: 0,
        };
        if src.onoff.state() == OnOff::On {
            src.next_emit = Some(start + src.gap());
        }
        src
    }

    /// Exponential inter-packet gap with mean `packet_bytes * 8 / rate_bps`.
    fn gap(&mut self) -> SimDuration {
        let packets_per_sec = self.rate_bps as f64 / (self.packet_bytes as f64 * 8.0);
        self.rng.exponential_duration(packets_per_sec.max(1e-9))
    }

    /// Wire bytes per emitted packet.
    pub fn packet_bytes(&self) -> u64 {
        self.packet_bytes
    }

    /// Packets emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The next instant something happens (an emission or a state toggle).
    /// The fleet event loop schedules its wake-up here.
    pub fn next_event(&self) -> SimTime {
        match (self.onoff.state(), self.next_emit) {
            (OnOff::On, Some(e)) => e.min(self.onoff.next_toggle()),
            _ => self.onoff.next_toggle(),
        }
    }

    /// Advance to `now`; returns the number of packets emitted in
    /// `(previous, now]`. Emissions scheduled past a toggle to Off are
    /// discarded (the station went quiet mid-burst); a toggle to On draws
    /// a fresh first gap.
    pub fn poll(&mut self, now: SimTime) -> u32 {
        let mut packets = 0;
        loop {
            let toggle = self.onoff.next_toggle();
            let emit_due = match (self.onoff.state(), self.next_emit) {
                (OnOff::On, Some(e)) if e <= toggle => Some(e),
                _ => None,
            };
            match emit_due {
                Some(e) if e <= now => {
                    packets += 1;
                    self.emitted += 1;
                    self.next_emit = Some(e + self.gap());
                }
                _ if toggle <= now => {
                    self.onoff.poll(toggle);
                    self.next_emit = if self.onoff.state() == OnOff::On {
                        Some(toggle + self.gap())
                    } else {
                        None
                    };
                }
                _ => break,
            }
        }
        packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(seed: u64, rate_bps: u64) -> CrossTrafficSource {
        CrossTrafficSource::new(
            SimTime::ZERO,
            OnOff::On,
            rate_bps,
            1500,
            0.5, // mean 2 s on
            0.5, // mean 2 s off
            SimRng::new(seed),
        )
    }

    #[test]
    fn mean_rate_while_half_on_is_half_offered() {
        // 50% duty cycle at 12 Mbps offered ⇒ ~6 Mbps long-run.
        let mut src = source(7, 12_000_000);
        let horizon = SimTime::from_secs(2_000);
        let mut t = SimTime::ZERO;
        while t < horizon {
            t = src.next_event().min(horizon);
            src.poll(t);
        }
        let bits = src.emitted() * 1500 * 8;
        let mbps = bits as f64 / 2_000.0 / 1e6;
        assert!((mbps - 6.0).abs() < 0.5, "long-run rate {mbps} Mbps");
    }

    #[test]
    fn silent_while_off() {
        let mut src = CrossTrafficSource::new(
            SimTime::ZERO,
            OnOff::Off,
            12_000_000,
            1500,
            1.0,
            1e-12, // effectively never turns on
            SimRng::new(3),
        );
        assert_eq!(src.poll(SimTime::from_secs(100)), 0);
        assert_eq!(src.emitted(), 0);
    }

    #[test]
    fn deterministic_replay() {
        let run = |step_ms: u64| {
            let mut src = source(11, 8_000_000);
            let horizon = SimTime::from_secs(50);
            let mut t = SimTime::ZERO;
            let mut total = 0u64;
            while t < horizon {
                t = (t + SimDuration::from_millis(step_ms)).min(horizon);
                total += src.poll(t) as u64;
            }
            (src.emitted(), total)
        };
        // Same source polled on different grids emits the same packets.
        assert_eq!(run(10), run(170));
    }

    #[test]
    fn next_event_advances() {
        let mut src = source(5, 4_000_000);
        let a = src.next_event();
        src.poll(a);
        let b = src.next_event();
        assert!(b > a, "{a:?} -> {b:?}");
    }
}
