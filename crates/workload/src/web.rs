//! The §5.4 web-browsing workload.
//!
//! The paper mirrors CNN's 2014-09-11 home page: 107 objects downloaded by
//! the Android browser over **six parallel (MP)TCP connections** with
//! HTTP/1.1 persistent connections. "Almost all objects are < 256 KB" —
//! which is exactly why eMPTCP never wakes the LTE radio on this workload.
//!
//! The synthetic page preserves those observables: 107 objects, a
//! heavy-tailed size distribution truncated so the overwhelming majority
//! sit under 256 KB, one larger main document first, and a round-robin
//! assignment of objects to connections as slots free up (modelled here as
//! a shared fetch queue).

use emptcp_sim::SimRng;
use serde::{Deserialize, Serialize};

/// The number of objects on the reference page.
pub const CNN_OBJECT_COUNT: usize = 107;
/// The paper's browser opens this many parallel connections.
pub const BROWSER_CONNECTIONS: usize = 6;

/// A synthetic web page: an ordered list of object sizes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WebPage {
    /// Object sizes in bytes, fetch order.
    pub objects: Vec<u64>,
}

impl WebPage {
    /// A CNN-home-page-like object population, deterministic per seed.
    pub fn cnn_like(rng: &mut SimRng) -> WebPage {
        let mut objects = Vec::with_capacity(CNN_OBJECT_COUNT);
        // The main HTML document: ~120 kB.
        objects.push(110_000 + rng.below(30_000));
        while objects.len() < CNN_OBJECT_COUNT {
            // Bounded Pareto body: most objects are small icons/scripts,
            // a handful of images approach (but rarely exceed) 256 kB.
            let size = rng.bounded_pareto(1.05, 15_000.0, 400_000.0) as u64;
            objects.push(size);
        }
        WebPage { objects }
    }

    /// Total page weight in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.iter().sum()
    }

    /// The per-request upload size (headers + cookies).
    pub fn request_bytes(&self) -> u64 {
        600
    }
}

/// A shared fetch queue: connections pull the next object when idle,
/// modelling HTTP/1.1 persistent connections without pipelining.
#[derive(Clone, Debug)]
pub struct FetchQueue {
    sizes: Vec<u64>,
    next: usize,
}

impl FetchQueue {
    /// Queue every object of a page.
    pub fn new(page: &WebPage) -> Self {
        FetchQueue {
            sizes: page.objects.clone(),
            next: 0,
        }
    }

    /// The next object to fetch, if any.
    pub fn pop(&mut self) -> Option<u64> {
        let v = self.sizes.get(self.next).copied();
        if v.is_some() {
            self.next += 1;
        }
        v
    }

    /// Objects not yet handed out.
    pub fn remaining(&self) -> usize {
        self.sizes.len() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_shape_matches_paper() {
        let mut rng = SimRng::new(42);
        let page = WebPage::cnn_like(&mut rng);
        assert_eq!(page.objects.len(), CNN_OBJECT_COUNT);
        let small = page.objects.iter().filter(|&&s| s < 256 * 1024).count();
        // "Almost all objects in the Web page are small (<256 KB)".
        assert!(
            small as f64 / CNN_OBJECT_COUNT as f64 > 0.9,
            "{small}/{CNN_OBJECT_COUNT} small"
        );
        // A realistic page weight: hundreds of kB to a few MB.
        let total = page.total_bytes();
        assert!(total > 2_000_000 && total < 12_000_000, "total {total}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WebPage::cnn_like(&mut SimRng::new(7));
        let b = WebPage::cnn_like(&mut SimRng::new(7));
        assert_eq!(a.objects, b.objects);
        let c = WebPage::cnn_like(&mut SimRng::new(8));
        assert_ne!(a.objects, c.objects);
    }

    #[test]
    fn fetch_queue_hands_out_everything_once() {
        let page = WebPage::cnn_like(&mut SimRng::new(1));
        let mut q = FetchQueue::new(&page);
        let mut total = 0u64;
        let mut count = 0;
        while let Some(size) = q.pop() {
            total += size;
            count += 1;
        }
        assert_eq!(count, CNN_OBJECT_COUNT);
        assert_eq!(total, page.total_bytes());
        assert_eq!(q.remaining(), 0);
        assert_eq!(q.pop(), None);
    }
}
