//! Background WiFi interferers (§4.4).
//!
//! "We utilize n = 2 or n = 3 interfering nodes, which use the same WiFi
//! channel as the mobile device. Each node generates UDP traffic according
//! to a two state Markov on-off process, with rates (per second) λ_on and
//! λ_off. We fix λ_on = 0.05, and then perform experiments with
//! λ_off = 0.025 and λ_off = 0.05."
//!
//! The observable effect is the number of *currently active* stations,
//! which the host pushes into [`emptcp_phy::WifiChannel`].

use emptcp_phy::modulation::{OnOff, OnOffProcess};
use emptcp_sim::{SimRng, SimTime};

/// The paper's fixed λ_on.
pub const LAMBDA_ON: f64 = 0.05;

/// A set of independent on-off interfering stations.
#[derive(Clone, Debug)]
pub struct InterfererSet {
    stations: Vec<OnOffProcess>,
}

impl InterfererSet {
    /// `n` stations with the given rates, each starting Off with its own
    /// RNG stream forked from `rng`.
    pub fn new(
        start: SimTime,
        n: usize,
        lambda_on: f64,
        lambda_off: f64,
        rng: &mut SimRng,
    ) -> Self {
        let stations = (0..n)
            .map(|i| {
                OnOffProcess::new(
                    start,
                    OnOff::Off,
                    lambda_on,
                    lambda_off,
                    rng.fork(0x1F00 + i as u64),
                )
            })
            .collect();
        InterfererSet { stations }
    }

    /// Advance all stations to `now`; returns `true` if the active count
    /// changed.
    pub fn poll(&mut self, now: SimTime) -> bool {
        let before = self.active(now);
        let mut changed = false;
        for st in &mut self.stations {
            changed |= st.poll(now);
        }
        changed && self.active(now) != before
    }

    /// Number of stations currently transmitting. (Stations must already be
    /// polled to `now`; this is a pure read.)
    pub fn active(&self, _now: SimTime) -> u32 {
        self.stations
            .iter()
            .filter(|s| s.state() == OnOff::On)
            .count() as u32
    }

    /// The earliest upcoming toggle across stations.
    pub fn next_toggle(&self) -> Option<SimTime> {
        self.stations.iter().map(|s| s.next_toggle()).min()
    }

    /// Station count.
    pub fn len(&self) -> usize {
        self.stations.len()
    }

    /// True when the set is empty (no background traffic scenario).
    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emptcp_sim::SimDuration;

    #[test]
    fn starts_all_off() {
        let mut rng = SimRng::new(1);
        let set = InterfererSet::new(SimTime::ZERO, 3, LAMBDA_ON, 0.025, &mut rng);
        assert_eq!(set.len(), 3);
        assert_eq!(set.active(SimTime::ZERO), 0);
    }

    #[test]
    fn activity_fraction_matches_rates() {
        // λ_on = 0.05 (mean 20 s on), λ_off = 0.025 (mean 40 s off):
        // long-run on-fraction = 20/60 = 1/3 per station.
        let mut rng = SimRng::new(2);
        let mut set = InterfererSet::new(SimTime::ZERO, 2, LAMBDA_ON, 0.025, &mut rng);
        let mut on_station_seconds = 0.0;
        let step = SimDuration::from_secs(5);
        let mut t = SimTime::ZERO;
        let horizon = SimTime::from_secs(400_000);
        let mut samples = 0u64;
        while t < horizon {
            set.poll(t);
            on_station_seconds += set.active(t) as f64;
            samples += 1;
            t += step;
        }
        let frac = on_station_seconds / (samples as f64 * 2.0);
        assert!((frac - 1.0 / 3.0).abs() < 0.02, "on fraction {frac}");
    }

    #[test]
    fn next_toggle_advances() {
        let mut rng = SimRng::new(3);
        let mut set = InterfererSet::new(SimTime::ZERO, 2, LAMBDA_ON, 0.05, &mut rng);
        let first = set.next_toggle().unwrap();
        set.poll(first);
        let second = set.next_toggle().unwrap();
        assert!(second > first);
    }

    #[test]
    fn empty_set() {
        let mut rng = SimRng::new(4);
        let set = InterfererSet::new(SimTime::ZERO, 0, LAMBDA_ON, 0.05, &mut rng);
        assert!(set.is_empty());
        assert_eq!(set.next_toggle(), None);
    }

    #[test]
    fn stations_are_independent() {
        let mut rng = SimRng::new(5);
        let mut set = InterfererSet::new(SimTime::ZERO, 3, 1.0, 1.0, &mut rng);
        // With fast rates, after a while the station states should differ
        // at least sometimes (i.e. not be in lockstep).
        let mut counts_seen = std::collections::HashSet::new();
        for s in 1..200 {
            let t = SimTime::from_millis(s * 500);
            set.poll(t);
            counts_seen.insert(set.active(t));
        }
        assert!(
            counts_seen.len() >= 3,
            "states in lockstep: {counts_seen:?}"
        );
    }
}
