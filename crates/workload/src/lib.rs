#![warn(missing_docs)]
//! Workload generators for the eMPTCP evaluation.
//!
//! * [`download`] — fixed-size file downloads (the 256 KB / 16 MB / 256 MB
//!   transfers of §4 and §5);
//! * [`web`] — the §5.4 web-browsing case study: a CNN-like page of 107
//!   objects fetched over six parallel persistent connections;
//! * [`interference`] — the §4.4 background stations: `n` interferers whose
//!   UDP traffic follows two-state Markov on-off processes;
//! * [`bwplan`] — the §4.3 bandwidth modulation: AP capacity flipping
//!   between a low (≤ 1 Mbps) and a high (≥ 10 Mbps) state with
//!   exponentially distributed holding times;
//! * [`crosstraffic`] — unresponsive on-off packet sources that load a
//!   shared bottleneck in the network-fabric fleet experiments.

pub mod bwplan;
pub mod crosstraffic;
pub mod download;
pub mod interference;
pub mod web;

pub use bwplan::BandwidthModulator;
pub use crosstraffic::CrossTrafficSource;
pub use download::DownloadSpec;
pub use interference::InterfererSet;
pub use web::WebPage;
