//! Fixed-size file downloads.
//!
//! The evaluation's bread and butter: the controlled lab uses 256 MB files
//! (§4.2–4.5), the in-the-wild study uses 256 KB "small" and 16 MB "large"
//! transfers (§5.2–5.3), and Fig 4 sweeps 1/4/16 MB.

use serde::{Deserialize, Serialize};

/// One mebibyte.
pub const MB: u64 = 1 << 20;
/// One kibibyte.
pub const KB: u64 = 1 << 10;

/// A single-file download request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DownloadSpec {
    /// Bytes the client asks the server to send.
    pub size_bytes: u64,
    /// Bytes of the HTTP-like request the client uploads first.
    pub request_bytes: u64,
}

impl DownloadSpec {
    /// A download of `size_bytes` with a typical 400-byte GET request.
    pub fn of(size_bytes: u64) -> Self {
        DownloadSpec {
            size_bytes,
            request_bytes: 400,
        }
    }

    /// §5.2's small transfer.
    pub fn small() -> Self {
        Self::of(256 * KB)
    }

    /// §5.3's large transfer.
    pub fn large() -> Self {
        Self::of(16 * MB)
    }

    /// §4's controlled-lab bulk file.
    pub fn lab_bulk() -> Self {
        Self::of(256 * MB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sizes() {
        assert_eq!(DownloadSpec::small().size_bytes, 262_144);
        assert_eq!(DownloadSpec::large().size_bytes, 16_777_216);
        assert_eq!(DownloadSpec::lab_bulk().size_bytes, 268_435_456);
        assert_eq!(DownloadSpec::of(5).request_bytes, 400);
    }
}
