//! The eMPTCP control loop.
//!
//! [`EmptcpClient`] is the device-side brain: it watches an MPTCP client
//! connection, samples per-interface throughput into the bandwidth
//! predictor, runs the delayed-establishment rules until the cellular
//! subflow exists, and thereafter lets the path usage controller flip
//! subflow priorities. It *emits* [`Action`]s instead of performing them:
//! the host owns the sockets and the radios, which keeps this policy layer
//! deterministic and unit-testable — and mirrors the paper's architecture
//! (Fig 2), where the components sit beside the MPTCP stack rather than
//! inside the data path.

use crate::controller::{ControllerConfig, PathUsageController};
use crate::delay::{DelayConfig, DelayedEstablishment};
use crate::predictor::BandwidthPredictor;
use emptcp_energy::{Eib, PathUsage};
use emptcp_mptcp::{MpConnection, SubflowId};
use emptcp_phy::IfaceKind;
use emptcp_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Device-wide per-interface delivered-byte totals, aggregated across
/// every MPTCP connection on the host. §3.2's predictor samples *per
/// interface*, not per connection: six browser connections sharing one AP
/// must see the AP's aggregate throughput, not one sixth of it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IfaceTotals {
    /// Cumulative payload bytes delivered over WiFi, device-wide.
    pub wifi_bytes: u64,
    /// Cumulative payload bytes delivered over cellular, device-wide.
    pub cell_bytes: u64,
}

impl IfaceTotals {
    /// Totals from a single connection (the single-connection case).
    pub fn from_conn(conn: &MpConnection, cellular_kind: IfaceKind) -> IfaceTotals {
        IfaceTotals {
            wifi_bytes: conn.delivered_by_iface(IfaceKind::Wifi),
            cell_bytes: conn.delivered_by_iface(cellular_kind),
        }
    }
}

/// What the host should do on eMPTCP's behalf.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Establish the cellular subflow now (κ/τ rules fired).
    EstablishCellular,
    /// Change a subflow's priority via MP_PRIO.
    SetPriority {
        /// The subflow to re-prioritize.
        id: SubflowId,
        /// `true` = backup (suspended), `false` = normal.
        backup: bool,
    },
    /// Apply the §3.6 resume tweaks (zero RTT, no cwnd-reset) before
    /// re-using a suspended subflow.
    Resume {
        /// The subflow being resumed.
        id: SubflowId,
    },
}

/// eMPTCP configuration (§4.1 defaults).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct EmptcpConfig {
    /// Delayed-establishment rules (κ = 1 MB, τ = 3 s).
    pub delay: DelayConfig,
    /// Controller hysteresis (10% safety factor).
    pub controller: ControllerConfig,
    /// Holt-Winters level smoothing.
    pub predictor_alpha: f64,
    /// Holt-Winters trend smoothing.
    pub predictor_beta: f64,
    /// Assumed throughput for a never-activated interface (5 Mbps).
    pub initial_assumption_mbps: f64,
    /// Idle window floor for §3.5's idle test when no RTT estimate exists.
    pub idle_window_floor: SimDuration,
}

impl Default for EmptcpConfig {
    fn default() -> Self {
        EmptcpConfig {
            delay: DelayConfig::default(),
            controller: ControllerConfig::default(),
            predictor_alpha: 0.4,
            predictor_beta: 0.2,
            initial_assumption_mbps: 5.0,
            idle_window_floor: SimDuration::from_millis(200),
        }
    }
}

/// The eMPTCP policy engine for one connection.
#[derive(Clone, Debug)]
pub struct EmptcpClient {
    config: EmptcpConfig,
    eib: Eib,
    cellular_kind: IfaceKind,
    predictor: BandwidthPredictor,
    controller: PathUsageController,
    delay: DelayedEstablishment,
    wifi_id: Option<SubflowId>,
    cellular_id: Option<SubflowId>,
    /// Establishment requested, waiting for the host to create the subflow.
    establish_pending: bool,
    /// The cellular subflow is currently suspended (backup).
    cellular_suspended: bool,
    /// Ignore cellular samples until this time: after activation or resume
    /// the subflow is in slow start and measured throughput says nothing
    /// about the path (the same reasoning behind eq. 1's bound on tau).
    cell_settle_until: Option<SimTime>,
    /// The WiFi subflow is currently suspended (cellular-only mode).
    wifi_suspended: bool,
}

impl EmptcpClient {
    /// Build the engine for a device whose cellular radio is
    /// `cellular_kind`, with a pre-generated EIB.
    pub fn new(config: EmptcpConfig, eib: Eib, cellular_kind: IfaceKind) -> Self {
        assert!(cellular_kind.is_cellular());
        EmptcpClient {
            config,
            eib,
            cellular_kind,
            predictor: BandwidthPredictor::with_params(
                config.predictor_alpha,
                config.predictor_beta,
                config.initial_assumption_mbps,
            ),
            controller: PathUsageController::new(config.controller),
            delay: DelayedEstablishment::new(config.delay),
            wifi_id: None,
            cellular_id: None,
            establish_pending: false,
            cellular_suspended: false,
            cell_settle_until: None,
            wifi_suspended: false,
        }
    }

    /// Attach a telemetry scope (forwarded to the path usage controller,
    /// whose decisions are the engine's externally visible actions).
    pub fn set_telemetry(&mut self, scope: emptcp_telemetry::TelemetryScope) {
        self.controller.set_telemetry(scope);
    }

    /// The EIB in use.
    pub fn eib(&self) -> &Eib {
        &self.eib
    }

    /// The predictor (exposed for experiment instrumentation).
    pub fn predictor(&self) -> &BandwidthPredictor {
        &self.predictor
    }

    /// The current path usage (as the controller believes it).
    pub fn usage(&self) -> PathUsage {
        if self.cellular_id.is_none() {
            PathUsage::WifiOnly
        } else {
            self.controller.usage()
        }
    }

    /// Controller state switches so far.
    pub fn switches(&self) -> u64 {
        self.controller.switches()
    }

    /// Tell the engine which subflow is the WiFi primary; call when its
    /// handshake completes.
    pub fn on_wifi_established(&mut self, now: SimTime, id: SubflowId, conn: &MpConnection) {
        self.wifi_id = Some(id);
        let rtt = conn.subflow(id).tcp.rtt().handshake_rtt();
        self.predictor.register_iface(now, IfaceKind::Wifi, rtt);
        self.delay.on_connection_established(now);
    }

    /// Tell the engine the cellular subflow now exists (host executed
    /// [`Action::EstablishCellular`]).
    pub fn on_cellular_established(&mut self, now: SimTime, id: SubflowId, conn: &MpConnection) {
        self.cellular_id = Some(id);
        self.establish_pending = false;
        self.cellular_suspended = false;
        let rtt = conn.subflow(id).tcp.rtt().handshake_rtt();
        self.predictor.register_iface(now, self.cellular_kind, rtt);
        self.cell_settle_until = Some(now + self.settle_window());
        self.controller.force_usage(now, PathUsage::Both);
    }

    /// How long after (re)activation cellular samples are distrusted:
    /// enough round trips for slow start to fill the pipe.
    fn settle_window(&self) -> SimDuration {
        let delta = self
            .predictor
            .delta(self.cellular_kind)
            .unwrap_or(SimDuration::from_millis(250));
        (delta * 4).max(SimDuration::from_secs(1))
    }

    fn idle_window(&self, conn: &MpConnection) -> SimDuration {
        let rtt = self
            .wifi_id
            .map(|id| conn.subflow(id).tcp.rtt().srtt_or_zero())
            .unwrap_or(SimDuration::ZERO);
        rtt.max(self.config.idle_window_floor)
    }

    /// The periodic control tick: sample, predict, decide. The host should
    /// call this on the order of the sampling interval δ (oversampling is
    /// harmless; the predictor rate-limits itself).
    pub fn on_tick(
        &mut self,
        now: SimTime,
        conn: &MpConnection,
        totals: IfaceTotals,
    ) -> Vec<Action> {
        let mut actions = Vec::new();

        // --- sampling (device-wide per-interface counters) ---
        // §3.2 samples *active* subflows: an idle connection (HTTP
        // keep-alive between transfers) produces no evidence about the
        // paths, so its quiet windows are skipped rather than recorded as
        // zero throughput. A *link-down* WiFi subflow is different: the
        // kernel sees the disassociation at the link layer (the same
        // plumbing §3.6 uses to identify interfaces), so WiFi is known
        // dead rather than merely quiet. A subflow the failure detector
        // declared dead (consecutive RTOs without ack progress) is treated
        // the same way: known-broken, not idle.
        let wifi_down = self
            .wifi_id
            .map(|id| {
                let sf = conn.subflow(id);
                sf.link_down || sf.dead
            })
            .unwrap_or(false);
        let cell_down = self
            .cellular_id
            .map(|id| {
                let sf = conn.subflow(id);
                sf.link_down || sf.dead
            })
            .unwrap_or(false);
        let idle = !wifi_down && conn.is_idle(now, self.idle_window(conn));
        let wifi_bytes = totals.wifi_bytes;
        if idle || wifi_down {
            self.predictor.skip(now, IfaceKind::Wifi, wifi_bytes);
        } else {
            self.predictor.offer(now, IfaceKind::Wifi, wifi_bytes);
        }
        if self.cellular_id.is_some() {
            let cell_bytes = totals.cell_bytes;
            let settling = self.cell_settle_until.is_some_and(|t| now < t);
            if self.cellular_suspended || settling || idle {
                // Suspension is policy and slow start is not evidence:
                // skip the window, keeping the previous forecast.
                self.predictor.skip(now, self.cellular_kind, cell_bytes);
            } else {
                self.predictor.offer(now, self.cellular_kind, cell_bytes);
            }
        }
        let wifi_pred = if wifi_down {
            0.0
        } else {
            self.predictor.predict(IfaceKind::Wifi)
        };
        let cell_pred = self.predictor.predict(self.cellular_kind);

        // --- delayed establishment (§3.5) ---
        if self.cellular_id.is_none() {
            if !self.establish_pending {
                // Graceful degradation: with WiFi dead there is nothing for
                // the κ/τ rules to deliberate about — every queued byte is
                // stranded until another path exists. Establish immediately.
                if wifi_down {
                    self.establish_pending = true;
                    actions.push(Action::EstablishCellular);
                    return actions;
                }
                if let Some(id) = self.wifi_id {
                    let sf = conn.subflow(id);
                    self.delay.refresh_tau(
                        wifi_pred,
                        sf.tcp.rtt().srtt_or_zero(),
                        sf.tcp.cc().initial_cwnd(),
                    );
                }
                let wifi_only_best = self.eib.choose(wifi_pred, cell_pred) == PathUsage::WifiOnly;
                let idle = conn.is_idle(now, self.idle_window(conn));
                if self
                    .delay
                    .evaluate(now, wifi_bytes, wifi_only_best, idle)
                    .is_some()
                {
                    self.establish_pending = true;
                    actions.push(Action::EstablishCellular);
                }
            }
            return actions;
        }

        // --- path usage control (§3.4) ---
        let cell_id = self.cellular_id.expect("checked above");
        let wifi_id = self.wifi_id.expect("wifi registered first");
        // Graceful degradation takes precedence over the EIB decision: a
        // dead path is forced out of the usage set immediately (no dwell,
        // no hysteresis), and the normal policy resumes once both paths
        // share a fate again.
        let usage = if wifi_down != cell_down {
            self.controller.degrade(now, !wifi_down, !cell_down)
        } else {
            self.controller.decide(now, &self.eib, wifi_pred, cell_pred)
        };
        let want_cell = usage.uses_cellular();
        let want_wifi = usage.uses_wifi();
        if want_cell == self.cellular_suspended {
            if want_cell {
                // Re-using a suspended subflow: §3.6 tweaks first, then
                // MP_PRIO back to normal.
                actions.push(Action::Resume { id: cell_id });
                actions.push(Action::SetPriority {
                    id: cell_id,
                    backup: false,
                });
                self.cellular_suspended = false;
                self.cell_settle_until = Some(now + self.settle_window());
            } else {
                actions.push(Action::SetPriority {
                    id: cell_id,
                    backup: true,
                });
                self.cellular_suspended = true;
            }
        }
        if want_wifi == self.wifi_suspended {
            if want_wifi {
                actions.push(Action::Resume { id: wifi_id });
                actions.push(Action::SetPriority {
                    id: wifi_id,
                    backup: false,
                });
                self.wifi_suspended = false;
            } else {
                actions.push(Action::SetPriority {
                    id: wifi_id,
                    backup: true,
                });
                self.wifi_suspended = true;
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emptcp_energy::EnergyModel;
    use emptcp_mptcp::Role;
    use emptcp_tcp::TcpConfig;

    const HALF: SimDuration = SimDuration::from_millis(10);

    struct Rig {
        now: SimTime,
        client: MpConnection,
        server: MpConnection,
        engine: EmptcpClient,
    }

    impl Rig {
        fn new() -> Rig {
            Rig::with_client_rwnd(4 * 1024 * 1024)
        }

        /// The loopback pump has no bandwidth limit, so tests emulate a
        /// weak WiFi path by capping the client's receive window.
        fn with_client_rwnd(rwnd: u64) -> Rig {
            let eib = Eib::generate_default(&EnergyModel::galaxy_s3_lte());
            let client_cfg = TcpConfig {
                rwnd_bytes: rwnd,
                ..TcpConfig::default()
            };
            let mut client = MpConnection::new(Role::Client, client_cfg);
            let mut server = MpConnection::new(Role::Server, TcpConfig::default());
            let now = SimTime::ZERO;
            client.add_subflow(now, IfaceKind::Wifi);
            server.add_subflow(now, IfaceKind::Wifi);
            Rig {
                now,
                client,
                server,
                engine: EmptcpClient::new(EmptcpConfig::default(), eib, IfaceKind::CellularLte),
            }
        }

        /// Move segments one way.
        fn flow(now: &mut SimTime, a: &mut MpConnection, b: &mut MpConnection) {
            a.on_deadline(*now);
            let mut segs = Vec::new();
            while let Some(pair) = a.poll_transmit(*now) {
                segs.push(pair);
            }
            *now += HALF;
            b.on_deadline(*now);
            for (id, seg) in segs {
                b.on_segment(*now, id, seg);
            }
        }

        fn round(&mut self) {
            Rig::flow(&mut self.now, &mut self.server, &mut self.client);
            Rig::flow(&mut self.now, &mut self.client, &mut self.server);
        }

        fn establish(&mut self) {
            self.round();
            self.round();
            assert!(self.client.established());
            self.engine
                .on_wifi_established(self.now, SubflowId(0), &self.client);
        }
    }

    #[test]
    fn no_cellular_for_small_fast_transfer() {
        let mut rig = Rig::new();
        rig.establish();
        rig.server.write(256 * 1024); // a small file
        for _ in 0..60 {
            rig.round();
            let actions = rig.engine.on_tick(
                rig.now,
                &rig.client,
                IfaceTotals::from_conn(&rig.client, IfaceKind::CellularLte),
            );
            assert!(
                actions.is_empty(),
                "unexpected actions {actions:?} at {}",
                rig.now
            );
            if rig.client.bytes_delivered() >= 256 * 1024 {
                break;
            }
        }
        assert_eq!(rig.client.bytes_delivered(), 256 * 1024);
        assert_eq!(rig.engine.usage(), PathUsage::WifiOnly);
    }

    #[test]
    fn kappa_triggers_cellular_for_large_transfer_on_weak_wifi() {
        // ~4 kB window over a 20 ms loopback RTT ≈ 1.6 Mbps of "WiFi".
        let mut rig = Rig::with_client_rwnd(4096);
        rig.establish();
        rig.server.write(64 << 20);
        // Make predicted WiFi weak by feeding the predictor directly: run
        // rounds but with a stingy per-round byte budget (the loopback here
        // is fast, so instead verify the trigger through the EIB branch by
        // checking the engine's actions once kappa has passed with a weak
        // forecast). We emulate weak WiFi by sampling with long gaps.
        let mut established_cell = false;
        for _ in 0..4000 {
            rig.round();
            for action in rig.engine.on_tick(
                rig.now,
                &rig.client,
                IfaceTotals::from_conn(&rig.client, IfaceKind::CellularLte),
            ) {
                if action == Action::EstablishCellular {
                    established_cell = true;
                }
            }
            if established_cell {
                break;
            }
        }
        // The loopback pump is slow relative to real WiFi (a few hundred
        // kB/s), so the predictor sees ~1 Mbps: the EIB wants Both and kappa
        // (1 MB) eventually fires.
        assert!(established_cell, "cellular subflow never requested");
    }

    #[test]
    fn controller_suspends_cellular_when_wifi_strong() {
        let mut rig = Rig::new();
        rig.establish();
        // Bring up the cellular subflow by hand.
        rig.client.add_subflow(rig.now, IfaceKind::CellularLte);
        rig.server.add_subflow(rig.now, IfaceKind::CellularLte);
        rig.round();
        rig.round();
        rig.engine
            .on_cellular_established(rig.now, SubflowId(1), &rig.client);
        assert_eq!(rig.engine.usage(), PathUsage::Both);

        // Feed the predictor a strong WiFi signal via direct sampling:
        // deliver lots of bytes quickly over WiFi.
        rig.server.write(8 << 20);
        let mut suspended = false;
        for _ in 0..4000 {
            rig.round();
            for action in rig.engine.on_tick(
                rig.now,
                &rig.client,
                IfaceTotals::from_conn(&rig.client, IfaceKind::CellularLte),
            ) {
                if let Action::SetPriority { id, backup: true } = action {
                    if id == SubflowId(1) {
                        suspended = true;
                    }
                }
            }
            if suspended {
                break;
            }
        }
        assert!(suspended, "cellular never suspended despite strong WiFi");
        assert_eq!(rig.engine.usage(), PathUsage::WifiOnly);
    }

    #[test]
    fn resume_emits_tweaks_before_priority() {
        let eib = Eib::generate_default(&EnergyModel::galaxy_s3_lte());
        let mut engine = EmptcpClient::new(EmptcpConfig::default(), eib, IfaceKind::CellularLte);
        // Wire a minimal rig to get both subflows registered.
        let mut rig = Rig::new();
        rig.establish();
        rig.client.add_subflow(rig.now, IfaceKind::CellularLte);
        rig.server.add_subflow(rig.now, IfaceKind::CellularLte);
        rig.round();
        rig.round();
        engine.on_wifi_established(rig.now, SubflowId(0), &rig.client);
        engine.on_cellular_established(rig.now, SubflowId(1), &rig.client);
        // Suspend by forcing a strong-WiFi decision...
        engine.controller.force_usage(rig.now, PathUsage::WifiOnly);
        engine.cellular_suspended = true;
        // ...then a weak-WiFi tick resumes: Resume must precede SetPriority.
        // Feed weak wifi samples.
        engine
            .predictor
            .register_iface(rig.now, IfaceKind::Wifi, None);
        let actions = loop {
            rig.now += SimDuration::from_millis(300);
            engine.predictor.offer(
                rig.now,
                IfaceKind::Wifi,
                rig.client.delivered_by_iface(IfaceKind::Wifi),
            );
            let acts = engine.on_tick(
                rig.now,
                &rig.client,
                IfaceTotals::from_conn(&rig.client, IfaceKind::CellularLte),
            );
            if !acts.is_empty() {
                break acts;
            }
        };
        let resume_pos = actions
            .iter()
            .position(|a| matches!(a, Action::Resume { .. }));
        let prio_pos = actions
            .iter()
            .position(|a| matches!(a, Action::SetPriority { backup: false, .. }));
        assert!(resume_pos.is_some(), "{actions:?}");
        assert!(prio_pos.is_some(), "{actions:?}");
        assert!(resume_pos < prio_pos, "{actions:?}");
    }

    #[test]
    fn dead_wifi_bypasses_delayed_establishment() {
        let mut rig = Rig::new();
        rig.establish();
        rig.server.write(64 << 20);
        rig.round();
        // Well under κ = 1 MB delivered and τ not elapsed; a healthy tick
        // produces no actions.
        let actions = rig.engine.on_tick(
            rig.now,
            &rig.client,
            IfaceTotals::from_conn(&rig.client, IfaceKind::CellularLte),
        );
        assert!(actions.is_empty(), "{actions:?}");
        // The AP vanishes: establishment must fire on the next tick.
        rig.client.set_subflow_link_up(rig.now, SubflowId(0), false);
        let actions = rig.engine.on_tick(
            rig.now,
            &rig.client,
            IfaceTotals::from_conn(&rig.client, IfaceKind::CellularLte),
        );
        assert_eq!(actions, vec![Action::EstablishCellular]);
        // And only once: the request stays pending.
        let actions = rig.engine.on_tick(
            rig.now,
            &rig.client,
            IfaceTotals::from_conn(&rig.client, IfaceKind::CellularLte),
        );
        assert!(actions.is_empty(), "{actions:?}");
    }

    #[test]
    fn dead_wifi_forces_usage_switch_despite_dwell() {
        let mut rig = Rig::new();
        rig.establish();
        rig.client.add_subflow(rig.now, IfaceKind::CellularLte);
        rig.server.add_subflow(rig.now, IfaceKind::CellularLte);
        rig.round();
        rig.round();
        rig.engine
            .on_cellular_established(rig.now, SubflowId(1), &rig.client);
        assert_eq!(rig.engine.usage(), PathUsage::Both);
        // Immediately after (inside the 3 s dwell window started by the
        // establishment force), the WiFi link drops.
        rig.now += SimDuration::from_millis(100);
        rig.client.set_subflow_link_up(rig.now, SubflowId(0), false);
        let actions = rig.engine.on_tick(
            rig.now,
            &rig.client,
            IfaceTotals::from_conn(&rig.client, IfaceKind::CellularLte),
        );
        assert_eq!(rig.engine.usage(), PathUsage::CellularOnly);
        assert!(
            actions.contains(&Action::SetPriority {
                id: SubflowId(0),
                backup: true,
            }),
            "{actions:?}"
        );
    }

    #[test]
    fn usage_reports_wifi_only_before_cellular_exists() {
        let eib = Eib::generate_default(&EnergyModel::galaxy_s3_lte());
        let engine = EmptcpClient::new(EmptcpConfig::default(), eib, IfaceKind::CellularLte);
        assert_eq!(engine.usage(), PathUsage::WifiOnly);
    }
}
