//! The path usage controller (§3.4).
//!
//! On every new prediction the controller queries the EIB with the
//! predicted WiFi and cellular throughputs and decides which interfaces
//! should carry traffic. A 10% "safety factor" adds hysteresis: leaving the
//! current state requires crossing the relevant EIB threshold by an extra
//! 10%, so throughput noise near a boundary cannot make the radios flap
//! (each LTE resume costs a promotion and each suspension strands a tail).
//!
//! Per the paper's note, the controller does not typically choose
//! cellular-only — "the expected gain is not much more than using both" —
//! so by default a cellular-only verdict is executed as Both (the flag
//! [`ControllerConfig::allow_cellular_only`] restores the pure EIB
//! behaviour for ablation).

use emptcp_energy::{Eib, PathUsage};
use emptcp_sim::{SimDuration, SimTime};
use emptcp_telemetry::{TelemetryScope, TraceEvent};
use serde::{Deserialize, Serialize};

/// Controller tunables.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// The hysteresis safety factor (0.10 = the paper's 10%).
    pub safety_factor: f64,
    /// Permit the cellular-only usage (default false, per §3.4's note).
    pub allow_cellular_only: bool,
    /// Minimum time between usage switches. Every cellular suspension
    /// strands a tail and every resume costs a promotion (§4.3 notes the
    /// switching overhead "may become noticeable" under fast changes), so
    /// decisions are held for at least this long.
    pub min_dwell: SimDuration,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            safety_factor: 0.10,
            allow_cellular_only: false,
            min_dwell: SimDuration::from_secs(3),
        }
    }
}

/// The path usage controller: current state plus the hysteresis rule.
#[derive(Clone, Debug)]
pub struct PathUsageController {
    config: ControllerConfig,
    usage: PathUsage,
    switches: u64,
    last_switch_at: Option<SimTime>,
    scope: TelemetryScope,
}

impl PathUsageController {
    /// Start in WiFi-only (WiFi is the default primary interface, §3.6).
    pub fn new(config: ControllerConfig) -> Self {
        PathUsageController {
            config,
            usage: PathUsage::WifiOnly,
            switches: 0,
            last_switch_at: None,
            scope: TelemetryScope::disabled(),
        }
    }

    /// Attach a telemetry scope; usage switches emit
    /// [`TraceEvent::PathUsage`] and count under `controller.switches`.
    pub fn set_telemetry(&mut self, scope: TelemetryScope) {
        self.scope = scope;
    }

    fn switch_to(&mut self, now: SimTime, usage: PathUsage) {
        self.usage = usage;
        self.switches += 1;
        self.last_switch_at = Some(now);
        self.scope.emit(now, |s| TraceEvent::PathUsage {
            conn: s.conn,
            decision: usage.label(),
        });
        self.scope
            .with_metrics(|_, m| m.counter_add("controller.switches", 1));
    }

    /// Current usage.
    pub fn usage(&self) -> PathUsage {
        self.usage
    }

    /// How many state changes have occurred (each may cost radio wakeups).
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Force the state (used when the delayed-establishment module brings
    /// the cellular subflow up and traffic starts flowing on both).
    pub fn force_usage(&mut self, now: SimTime, usage: PathUsage) {
        if self.usage != usage {
            self.switch_to(now, usage);
        }
    }

    /// Graceful degradation: a path has *died* (link down, or the subflow
    /// was declared dead by failure detection), which is categorically
    /// different from the throughput noise the hysteresis and dwell rules
    /// exist to filter. Traffic is forced onto the surviving path
    /// immediately — including cellular-only, regardless of
    /// [`ControllerConfig::allow_cellular_only`], because with WiFi dead it
    /// is the only working option, not an energy trade-off. With both paths
    /// alive (or both dead) the state is left untouched.
    pub fn degrade(&mut self, now: SimTime, wifi_alive: bool, cell_alive: bool) -> PathUsage {
        let target = match (wifi_alive, cell_alive) {
            (true, false) => PathUsage::WifiOnly,
            (false, true) => PathUsage::CellularOnly,
            _ => self.usage,
        };
        if target != self.usage {
            self.switch_to(now, target);
        }
        self.usage
    }

    /// Decide the usage for the predicted throughputs. Returns the (possibly
    /// unchanged) usage after applying hysteresis and the dwell-time rule.
    pub fn decide(&mut self, now: SimTime, eib: &Eib, wifi_mbps: f64, cell_mbps: f64) -> PathUsage {
        if let Some(at) = self.last_switch_at {
            if now.saturating_since(at) < self.config.min_dwell {
                return self.usage;
            }
        }
        let (t1, t2) = eib.thresholds(cell_mbps);
        let s = self.config.safety_factor;
        let raw = match self.usage {
            PathUsage::Both => {
                // Leaving Both needs the threshold crossed by +/-10%.
                if wifi_mbps >= t2 * (1.0 + s) {
                    PathUsage::WifiOnly
                } else if wifi_mbps < t1 * (1.0 - s) {
                    PathUsage::CellularOnly
                } else {
                    PathUsage::Both
                }
            }
            PathUsage::WifiOnly => {
                if wifi_mbps < t1 * (1.0 - s) {
                    PathUsage::CellularOnly
                } else if wifi_mbps < t2 * (1.0 - s) {
                    PathUsage::Both
                } else {
                    PathUsage::WifiOnly
                }
            }
            PathUsage::CellularOnly => {
                if wifi_mbps >= t2 * (1.0 + s) {
                    PathUsage::WifiOnly
                } else if wifi_mbps >= t1 * (1.0 + s) {
                    PathUsage::Both
                } else {
                    PathUsage::CellularOnly
                }
            }
        };
        let target = if raw == PathUsage::CellularOnly && !self.config.allow_cellular_only {
            PathUsage::Both
        } else {
            raw
        };
        if target != self.usage {
            self.switch_to(now, target);
        }
        self.usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emptcp_energy::EnergyModel;

    fn eib() -> Eib {
        Eib::generate_default(&EnergyModel::galaxy_s3_lte())
    }

    fn controller() -> PathUsageController {
        PathUsageController::new(ControllerConfig::default())
    }

    /// A clock that always steps past the dwell window, so the hysteresis
    /// logic is tested in isolation.
    struct Clock(SimTime);
    impl Clock {
        fn new() -> Clock {
            Clock(SimTime::ZERO)
        }
        fn tick(&mut self) -> SimTime {
            self.0 += SimDuration::from_secs(10);
            self.0
        }
    }

    #[test]
    fn dwell_time_blocks_rapid_switches() {
        let e = eib();
        let mut c = controller();
        let t0 = SimTime::from_secs(100);
        c.force_usage(t0, PathUsage::Both);
        // One second later, a strong WiFi signal: held by the dwell rule.
        let t1 = t0 + SimDuration::from_secs(1);
        assert_eq!(c.decide(t1, &e, 20.0, 1.0), PathUsage::Both);
        // Past the dwell window: the switch goes through.
        let t2 = t0 + SimDuration::from_secs(4);
        assert_eq!(c.decide(t2, &e, 20.0, 1.0), PathUsage::WifiOnly);
    }

    #[test]
    fn starts_wifi_only() {
        assert_eq!(controller().usage(), PathUsage::WifiOnly);
    }

    #[test]
    fn switches_to_both_when_wifi_degrades() {
        let e = eib();
        let mut c = controller();
        let mut clk = Clock::new();
        // Strong WiFi: stay.
        assert_eq!(c.decide(clk.tick(), &e, 10.0, 5.0), PathUsage::WifiOnly);
        // Weak WiFi (well below the WiFi-only threshold for 5 Mbps LTE):
        assert_eq!(c.decide(clk.tick(), &e, 0.5, 5.0), PathUsage::Both);
        assert_eq!(c.switches(), 1);
    }

    #[test]
    fn hysteresis_blocks_boundary_noise() {
        let e = eib();
        let (_, t2) = e.thresholds(1.0);
        let mut c = controller();
        let mut clk = Clock::new();
        c.force_usage(clk.tick(), PathUsage::Both);
        // Exactly at the threshold: stay in Both (needs +10%).
        assert_eq!(c.decide(clk.tick(), &e, t2, 1.0), PathUsage::Both);
        assert_eq!(c.decide(clk.tick(), &e, t2 * 1.05, 1.0), PathUsage::Both);
        // Past the +10% mark: switch.
        assert_eq!(
            c.decide(clk.tick(), &e, t2 * 1.11, 1.0),
            PathUsage::WifiOnly
        );
        // Dropping just below the threshold again: stay (needs -10%).
        assert_eq!(
            c.decide(clk.tick(), &e, t2 * 0.95, 1.0),
            PathUsage::WifiOnly
        );
        assert_eq!(c.decide(clk.tick(), &e, t2 * 0.85, 1.0), PathUsage::Both);
    }

    #[test]
    fn paper_worked_example() {
        // §3.4: with the Table 2 row (1 Mbps LTE, WiFi-only at 0.502), Both
        // -> WiFi-only requires 0.552, and WiFi-only -> Both requires 0.452.
        // Our thresholds differ slightly; verify the same *ratios*.
        let e = eib();
        let (_, t2) = e.thresholds(1.0);
        let mut c = controller();
        let mut clk = Clock::new();
        c.force_usage(clk.tick(), PathUsage::Both);
        assert_eq!(c.decide(clk.tick(), &e, t2 * 1.09, 1.0), PathUsage::Both);
        assert_eq!(
            c.decide(clk.tick(), &e, t2 * 1.10, 1.0),
            PathUsage::WifiOnly
        );
        let mut c2 = controller();
        let mut clk2 = Clock::new();
        assert_eq!(
            c2.decide(clk2.tick(), &e, t2 * 0.91, 1.0),
            PathUsage::WifiOnly
        );
        assert_eq!(c2.decide(clk2.tick(), &e, t2 * 0.89, 1.0), PathUsage::Both);
    }

    #[test]
    fn cellular_only_mapped_to_both_by_default() {
        let e = eib();
        let mut c = controller();
        let mut clk = Clock::new();
        // WiFi essentially dead, LTE fine: raw verdict is cellular-only.
        assert_eq!(c.decide(clk.tick(), &e, 0.01, 5.0), PathUsage::Both);
    }

    #[test]
    fn cellular_only_allowed_when_configured() {
        let e = eib();
        let mut c = PathUsageController::new(ControllerConfig {
            safety_factor: 0.10,
            allow_cellular_only: true,
            min_dwell: SimDuration::ZERO,
        });
        let mut clk = Clock::new();
        assert_eq!(c.decide(clk.tick(), &e, 0.01, 5.0), PathUsage::CellularOnly);
        // And it can leave that state when WiFi recovers.
        assert_eq!(c.decide(clk.tick(), &e, 10.0, 5.0), PathUsage::WifiOnly);
    }

    #[test]
    fn oscillating_inputs_cause_few_switches() {
        let e = eib();
        let (_, t2) = e.thresholds(2.0);
        let mut c = controller();
        let mut clk = Clock::new();
        c.force_usage(clk.tick(), PathUsage::Both);
        // Noise within +/-8% of the boundary: no switches at all.
        for i in 0..100 {
            let jitter = 1.0 + 0.08 * if i % 2 == 0 { 1.0 } else { -1.0 };
            c.decide(clk.tick(), &e, t2 * jitter, 2.0);
        }
        assert_eq!(c.switches(), 1, "only the initial force counts");
    }

    #[test]
    fn degrade_bypasses_dwell_and_hysteresis() {
        let e = eib();
        let mut c = controller();
        let t0 = SimTime::from_secs(100);
        c.force_usage(t0, PathUsage::Both);
        // One second in (well inside the 3 s dwell), WiFi dies: the switch
        // must go through anyway.
        let t1 = t0 + SimDuration::from_secs(1);
        assert_eq!(c.degrade(t1, false, true), PathUsage::CellularOnly);
        // Note: allow_cellular_only is false here — degradation overrides it.
        assert!(!c.config.allow_cellular_only);
        // A normal decide right after is again held by the dwell rule.
        let t2 = t1 + SimDuration::from_millis(100);
        assert_eq!(c.decide(t2, &e, 20.0, 5.0), PathUsage::CellularOnly);
        // WiFi comes back dead-cellular-wise: degrade the other way.
        assert_eq!(c.degrade(t2, true, false), PathUsage::WifiOnly);
    }

    #[test]
    fn degrade_is_noop_when_both_paths_share_fate() {
        let mut c = controller();
        c.force_usage(SimTime::ZERO, PathUsage::Both);
        assert_eq!(
            c.degrade(SimTime::from_secs(1), true, true),
            PathUsage::Both
        );
        assert_eq!(
            c.degrade(SimTime::from_secs(2), false, false),
            PathUsage::Both
        );
        assert_eq!(c.switches(), 1, "only the initial force counts");
    }

    #[test]
    fn force_usage_counts_switches() {
        let mut c = controller();
        c.force_usage(SimTime::ZERO, PathUsage::Both);
        c.force_usage(SimTime::ZERO, PathUsage::Both);
        assert_eq!(c.switches(), 1);
    }
}
