#![warn(missing_docs)]
//! eMPTCP: energy-aware multi-path TCP (the paper's contribution, §3).
//!
//! Four components extend regular MPTCP at the transport layer (paper
//! Fig 2), all of which live here:
//!
//! * [`predictor`] — the bandwidth predictor (§3.2): per-interface
//!   throughput sampling at an RTT-derived interval δ, forecast with
//!   Holt-Winters exponential smoothing;
//! * the **energy information base** (§3.3) — generated offline by
//!   `emptcp-energy` ([`emptcp_energy::Eib`]) and queried here;
//! * [`controller`] — the path usage controller (§3.4): EIB lookups on the
//!   predicted throughputs with a 10% hysteresis "safety factor";
//! * [`delay`] — delayed subflow establishment (§3.5): the κ-bytes rule,
//!   the τ timer with its eq. (1) lower bound, and idle postponement.
//!
//! [`client`] ties them together as [`client::EmptcpClient`]: the control
//! loop a host runs next to an `emptcp-mptcp` client connection. It emits
//! [`client::Action`]s (establish the cellular subflow, flip MP_PRIO
//! priorities, apply the §3.6 resume tweaks) rather than touching sockets,
//! keeping the policy testable in isolation.
//!
//! ```
//! use emptcp::{EmptcpClient, EmptcpConfig};
//! use emptcp_energy::{Eib, EnergyModel};
//! use emptcp_phy::IfaceKind;
//!
//! // The offline step the paper performs once per device (§3.3):
//! let eib = Eib::generate_default(&EnergyModel::galaxy_s3_lte());
//! // At 1 Mbps LTE, the Table 2 thresholds fall out of the model:
//! let (lte_only_below, wifi_only_at) = eib.thresholds(1.0);
//! assert!((lte_only_below - 0.134).abs() < 0.01);
//! assert!((wifi_only_at - 0.502).abs() < 0.01);
//!
//! // The on-device engine consumes the EIB:
//! let engine = EmptcpClient::new(EmptcpConfig::default(), eib, IfaceKind::CellularLte);
//! assert_eq!(engine.switches(), 0);
//! ```

pub mod client;
pub mod controller;
pub mod delay;
pub mod predictor;

pub use client::{Action, EmptcpClient, EmptcpConfig, IfaceTotals};
pub use controller::PathUsageController;
pub use delay::{min_tau, DelayedEstablishment};
pub use predictor::{BandwidthPredictor, HoltWinters};
