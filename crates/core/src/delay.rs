//! Delayed cellular subflow establishment (§3.5).
//!
//! eMPTCP avoids the cellular promotion and tail for transfers that WiFi
//! can finish alone:
//!
//! * the cellular subflow is not started until κ bytes (default 1 MB)
//!   arrive over WiFi — Fig 4 shows MPTCP is rarely the most efficient way
//!   to finish anything smaller;
//! * a timer of τ seconds (default 3 s) backstops slow WiFi, where κ might
//!   never be reached; eq. (1) lower-bounds τ by the time needed to collect
//!   φ throughput samples after WiFi's slow-start settles;
//! * even when κ or τ fire, establishment is postponed while the EIB says
//!   WiFi-only is the most efficient usage, and while the connection is
//!   idle (no packets within an estimated RTT — HTTP keep-alive
//!   connections must not wake the radio).

use emptcp_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Equation (1): the smallest τ that guarantees `phi` throughput samples
/// after the WiFi subflow's slow start has filled the pipe:
///
/// `tau >= R_W * ( log2( (B_W * R_W + W_init) / W_init ) + phi )`
///
/// with `bw_mbps` the available WiFi throughput, `rtt` the WiFi RTT and
/// `winit_bytes` the initial congestion window.
pub fn min_tau(bw_mbps: f64, rtt: SimDuration, winit_bytes: u64, phi: u32) -> SimDuration {
    let r = rtt.as_secs_f64();
    let bw_bytes_per_sec = bw_mbps.max(0.0) * 1e6 / 8.0;
    let winit = winit_bytes.max(1) as f64;
    let ramp = ((bw_bytes_per_sec * r + winit) / winit).log2().max(0.0);
    SimDuration::from_secs_f64(r * (ramp + phi as f64))
}

/// Configuration of the delayed-establishment rules.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DelayConfig {
    /// κ: bytes over WiFi before the cellular subflow may start.
    pub kappa_bytes: u64,
    /// τ: timer backstop from connection establishment.
    pub tau: SimDuration,
    /// Debounce: the EIB must want more than WiFi-only for this many
    /// consecutive evaluations before a trigger fires. Filters transient
    /// application-limited throughput dips (a request/response turnaround
    /// is not a degraded AP).
    pub debounce_evals: u32,
    /// Recompute τ at run time from eq. (1) using the live WiFi RTT and
    /// predicted bandwidth, instead of the fixed 3 s. The paper flags
    /// tuning τ as future work (§4.1); this is that refinement, clamped to
    /// `[tau, 4*tau]` so pathological estimates cannot disable the timer.
    pub adaptive_tau: bool,
}

impl Default for DelayConfig {
    fn default() -> Self {
        DelayConfig {
            // The paper's evaluation settings (§4.1).
            kappa_bytes: 1 << 20,
            tau: SimDuration::from_secs(3),
            debounce_evals: 10,
            adaptive_tau: false,
        }
    }
}

/// Why establishment was (finally) triggered.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EstablishTrigger {
    /// κ bytes arrived over WiFi.
    KappaReached,
    /// The τ timer expired on a non-idle connection.
    TimerExpired,
}

/// The delayed-establishment state machine for one connection.
#[derive(Clone, Debug)]
pub struct DelayedEstablishment {
    config: DelayConfig,
    /// When the (WiFi) connection was established; τ counts from here.
    started_at: Option<SimTime>,
    triggered: Option<EstablishTrigger>,
    /// Consecutive evaluations where the EIB wanted more than WiFi-only.
    non_wifi_streak: u32,
    /// The τ in effect (equals `config.tau` unless adaptive).
    effective_tau: SimDuration,
}

impl DelayedEstablishment {
    /// A fresh state machine.
    pub fn new(config: DelayConfig) -> Self {
        DelayedEstablishment {
            config,
            started_at: None,
            triggered: None,
            non_wifi_streak: 0,
            effective_tau: config.tau,
        }
    }

    /// The τ currently in effect.
    pub fn effective_tau(&self) -> SimDuration {
        self.effective_tau
    }

    /// Refresh τ from eq. (1) with live estimates (no-op unless the config
    /// enables adaptive τ). `phi = 10` samples, as in the paper's §4.1
    /// calculation.
    pub fn refresh_tau(
        &mut self,
        wifi_bw_mbps: f64,
        wifi_rtt: SimDuration,
        initial_cwnd_bytes: u64,
    ) {
        if !self.config.adaptive_tau {
            return;
        }
        let bound = min_tau(wifi_bw_mbps, wifi_rtt, initial_cwnd_bytes, 10);
        self.effective_tau = bound.clamp(self.config.tau, self.config.tau * 4);
    }

    /// The configuration.
    pub fn config(&self) -> &DelayConfig {
        &self.config
    }

    /// Note that the primary (WiFi) subflow finished its handshake.
    pub fn on_connection_established(&mut self, now: SimTime) {
        if self.started_at.is_none() {
            self.started_at = Some(now);
        }
    }

    /// Has establishment been triggered (and by what)?
    pub fn triggered(&self) -> Option<EstablishTrigger> {
        self.triggered
    }

    /// Evaluate the rules. Arguments are the current facts:
    /// `wifi_bytes` — bytes received over WiFi so far; `wifi_only_best` —
    /// the EIB's verdict on the predicted throughputs; `idle` — §3.5's
    /// idle test (no packets within an estimated RTT).
    ///
    /// Returns `Some(trigger)` exactly once, at the evaluation that decides
    /// to establish the cellular subflow.
    pub fn evaluate(
        &mut self,
        now: SimTime,
        wifi_bytes: u64,
        wifi_only_best: bool,
        idle: bool,
    ) -> Option<EstablishTrigger> {
        if self.triggered.is_some() {
            return None;
        }
        let Some(started) = self.started_at else {
            return None; // connection not yet up
        };
        // The EIB postponement applies to both triggers: as long as
        // WiFi-only is the most efficient usage there is nothing to gain
        // from waking the cellular radio. A short streak requirement
        // debounces transient application-limited dips.
        if wifi_only_best {
            self.non_wifi_streak = 0;
            return None;
        }
        self.non_wifi_streak += 1;
        if self.non_wifi_streak < self.config.debounce_evals {
            return None;
        }
        if wifi_bytes >= self.config.kappa_bytes {
            self.triggered = Some(EstablishTrigger::KappaReached);
            return self.triggered;
        }
        if now.saturating_since(started) >= self.effective_tau && !idle {
            self.triggered = Some(EstablishTrigger::TimerExpired);
            return self.triggered;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn eq1_matches_papers_setting() {
        // §4.1: "the estimated condition based on equation (1) to guarantee
        // ten bandwidth samples is tau >= 2.67 s" — for their WiFi setup.
        // With RTT 25 ms, IW10 (14280 B), 10 Mbps and phi = 10:
        let tau = min_tau(10.0, SimDuration::from_millis(25), 14_280, 10);
        let secs = tau.as_secs_f64();
        assert!(secs > 0.25 && secs < 0.5, "tau {secs}");
        // Their ~2.67 s arises from a larger RTT; with RTT 190 ms the
        // formula lands on the paper's number almost exactly.
        let tau2 = min_tau(10.0, SimDuration::from_millis(190), 14_280, 10);
        let secs2 = tau2.as_secs_f64();
        assert!(secs2 > 2.4 && secs2 < 3.0, "tau {secs2}");
    }

    #[test]
    fn eq1_monotone_in_inputs() {
        let base = min_tau(10.0, SimDuration::from_millis(50), 14_280, 10);
        assert!(min_tau(20.0, SimDuration::from_millis(50), 14_280, 10) > base);
        assert!(min_tau(10.0, SimDuration::from_millis(100), 14_280, 10) > base);
        assert!(min_tau(10.0, SimDuration::from_millis(50), 14_280, 20) > base);
    }

    #[test]
    fn eq1_degenerate_inputs() {
        // Zero bandwidth: just phi RTTs.
        let tau = min_tau(0.0, SimDuration::from_millis(100), 14_280, 10);
        assert!((tau.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    fn machine() -> DelayedEstablishment {
        // Tests exercise the rules directly; a streak of 1 keeps them
        // single-shot (debouncing has its own test).
        DelayedEstablishment::new(DelayConfig {
            debounce_evals: 1,
            ..DelayConfig::default()
        })
    }

    #[test]
    fn debounce_filters_transient_dips() {
        let mut d = DelayedEstablishment::new(DelayConfig {
            debounce_evals: 3,
            ..DelayConfig::default()
        });
        d.on_connection_established(s(0));
        // Two non-WiFi evaluations, then a WiFi-best one: streak resets.
        assert_eq!(d.evaluate(s(10), 1 << 20, false, false), None);
        assert_eq!(d.evaluate(s(11), 1 << 20, false, false), None);
        assert_eq!(d.evaluate(s(12), 1 << 20, true, false), None);
        assert_eq!(d.evaluate(s(13), 1 << 20, false, false), None);
        assert_eq!(d.evaluate(s(14), 1 << 20, false, false), None);
        // Third consecutive: trigger.
        assert_eq!(
            d.evaluate(s(15), 1 << 20, false, false),
            Some(EstablishTrigger::KappaReached)
        );
    }

    #[test]
    fn nothing_before_connection_up() {
        let mut d = machine();
        assert_eq!(d.evaluate(s(100), u64::MAX, false, false), None);
    }

    #[test]
    fn kappa_triggers_when_eib_agrees() {
        let mut d = machine();
        d.on_connection_established(s(0));
        // Below kappa: nothing.
        assert_eq!(d.evaluate(s(1), 1 << 19, false, false), None);
        // kappa reached but WiFi-only still best: postponed.
        assert_eq!(d.evaluate(s(1), 1 << 20, true, false), None);
        // kappa reached and EIB wants more than WiFi: trigger.
        assert_eq!(
            d.evaluate(s(1), 1 << 20, false, false),
            Some(EstablishTrigger::KappaReached)
        );
        // Only fires once.
        assert_eq!(d.evaluate(s(2), 1 << 21, false, false), None);
        assert_eq!(d.triggered(), Some(EstablishTrigger::KappaReached));
    }

    #[test]
    fn timer_triggers_on_slow_wifi() {
        let mut d = machine();
        d.on_connection_established(s(0));
        assert_eq!(d.evaluate(s(2), 1000, false, false), None);
        assert_eq!(
            d.evaluate(s(3), 1000, false, false),
            Some(EstablishTrigger::TimerExpired)
        );
    }

    #[test]
    fn idle_connection_postpones_timer() {
        let mut d = machine();
        d.on_connection_established(s(0));
        // Timer long expired, but the connection is idle (HTTP keep-alive):
        assert_eq!(d.evaluate(s(100), 1000, false, true), None);
        // Activity resumes: trigger.
        assert_eq!(
            d.evaluate(s(101), 1000, false, false),
            Some(EstablishTrigger::TimerExpired)
        );
    }

    #[test]
    fn adaptive_tau_tracks_eq1() {
        let mut d = DelayedEstablishment::new(DelayConfig {
            adaptive_tau: true,
            ..DelayConfig::default()
        });
        assert_eq!(d.effective_tau(), SimDuration::from_secs(3));
        // Fast WiFi, long RTT: eq. (1) demands more than 3 s.
        d.refresh_tau(10.0, SimDuration::from_millis(300), 14_280);
        assert!(d.effective_tau() > SimDuration::from_secs(4));
        assert!(d.effective_tau() <= SimDuration::from_secs(12));
        // Short RTT: the bound collapses, clamped at the configured floor.
        d.refresh_tau(10.0, SimDuration::from_millis(20), 14_280);
        assert_eq!(d.effective_tau(), SimDuration::from_secs(3));
        // Non-adaptive configs ignore refreshes entirely.
        let mut fixed = DelayedEstablishment::new(DelayConfig::default());
        fixed.refresh_tau(10.0, SimDuration::from_millis(300), 14_280);
        assert_eq!(fixed.effective_tau(), SimDuration::from_secs(3));
    }

    #[test]
    fn adaptive_tau_delays_the_trigger() {
        let mut d = DelayedEstablishment::new(DelayConfig {
            adaptive_tau: true,
            debounce_evals: 1,
            ..DelayConfig::default()
        });
        d.on_connection_established(s(0));
        d.refresh_tau(10.0, SimDuration::from_millis(300), 14_280);
        // Past the fixed 3 s but below the adaptive bound: no trigger.
        assert_eq!(d.evaluate(s(4), 1000, false, false), None);
        // Past the adaptive bound: fires.
        assert_eq!(
            d.evaluate(s(13), 1000, false, false),
            Some(EstablishTrigger::TimerExpired)
        );
    }

    #[test]
    fn good_wifi_never_establishes() {
        let mut d = machine();
        d.on_connection_established(s(0));
        for t in 1..1000 {
            assert_eq!(d.evaluate(s(t), t * (1 << 20), true, false), None);
        }
        assert_eq!(d.triggered(), None);
    }
}
