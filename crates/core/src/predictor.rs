//! The bandwidth predictor (§3.2).
//!
//! The predictor "samples all active subflow throughputs and predicts their
//! future values", categorized per interface. The sampling interval δ per
//! subflow derives from the RTT measured during subflow establishment, and
//! forecasts use Holt-Winters exponential smoothing — level plus trend,
//! which the time-series literature also calls Holt's linear method (the
//! paper's forecasting horizon is one step, so no seasonal component is
//! warranted).
//!
//! Two cold-start rules from the paper:
//!
//! * a **never-activated** interface is assumed to deliver a non-zero
//!   throughput (5 Mbps) so eMPTCP will probe the path at all;
//! * a **deactivated** interface keeps its old state: old observations are
//!   blended with new samples once it reactivates.

use emptcp_phy::IfaceKind;
use emptcp_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Holt-Winters (level + trend) one-step forecaster.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HoltWinters {
    /// Level smoothing factor.
    pub alpha: f64,
    /// Trend smoothing factor.
    pub beta: f64,
    level: Option<f64>,
    trend: f64,
}

impl HoltWinters {
    /// A forecaster with the given smoothing factors in `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range");
        assert!((0.0..=1.0).contains(&beta), "beta out of range");
        HoltWinters {
            alpha,
            beta,
            level: None,
            trend: 0.0,
        }
    }

    /// Incorporate an observation.
    pub fn observe(&mut self, x: f64) {
        match self.level {
            None => {
                self.level = Some(x);
                self.trend = 0.0;
            }
            Some(level) => {
                let new_level = self.alpha * x + (1.0 - self.alpha) * (level + self.trend);
                self.trend = self.beta * (new_level - level) + (1.0 - self.beta) * self.trend;
                self.level = Some(new_level);
            }
        }
    }

    /// One-step-ahead forecast, clamped to be non-negative; `None` before
    /// any observation.
    pub fn forecast(&self) -> Option<f64> {
        self.level.map(|l| (l + self.trend).max(0.0))
    }

    /// Number-free check: has this forecaster seen data?
    pub fn primed(&self) -> bool {
        self.level.is_some()
    }

    /// Age the state toward a prior: move the level `factor` of the way to
    /// `target` and damp the trend. Used while an interface is suspended.
    pub fn decay_toward(&mut self, target: f64, factor: f64) {
        if let Some(level) = self.level.as_mut() {
            *level += (target - *level) * factor;
        }
        self.trend *= 1.0 - factor;
    }
}

#[derive(Clone, Debug)]
struct IfaceState {
    hw: HoltWinters,
    /// Cumulative delivered bytes at the last sample.
    last_bytes: u64,
    /// When the last sample was taken.
    last_sample_at: SimTime,
    /// Sampling interval δ for this interface.
    delta: SimDuration,
    samples: u64,
}

/// Per-interface throughput sampling and forecasting.
#[derive(Clone, Debug)]
pub struct BandwidthPredictor {
    alpha: f64,
    beta: f64,
    /// Assumed throughput (Mbps) for interfaces never observed (§3.2's
    /// "e.g., 5 Mbps").
    initial_assumption_mbps: f64,
    default_delta: SimDuration,
    states: HashMap<IfaceKind, IfaceState>,
}

impl BandwidthPredictor {
    /// Default smoothing (α = 0.4, β = 0.2) and the paper's 5 Mbps
    /// never-activated assumption.
    pub fn new() -> Self {
        Self::with_params(0.4, 0.2, 5.0)
    }

    /// Fully parameterized constructor.
    pub fn with_params(alpha: f64, beta: f64, initial_assumption_mbps: f64) -> Self {
        BandwidthPredictor {
            alpha,
            beta,
            initial_assumption_mbps,
            default_delta: SimDuration::from_millis(250),
            states: HashMap::new(),
        }
    }

    /// Register an interface with its sampling interval δ, derived from the
    /// subflow-establishment RTT (clamped to a sane range: very short RTTs
    /// would oversample — windows shorter than a typical request/response
    /// turnaround read application pauses as bandwidth collapse — and very
    /// long ones starve the controller).
    pub fn register_iface(
        &mut self,
        now: SimTime,
        iface: IfaceKind,
        handshake_rtt: Option<SimDuration>,
    ) {
        let delta = handshake_rtt
            .unwrap_or(self.default_delta)
            .clamp(SimDuration::from_millis(250), SimDuration::from_secs(1));
        self.states.entry(iface).or_insert(IfaceState {
            hw: HoltWinters::new(self.alpha, self.beta),
            last_bytes: 0,
            last_sample_at: now,
            delta,
            samples: 0,
        });
    }

    /// True once `iface` was registered.
    pub fn knows(&self, iface: IfaceKind) -> bool {
        self.states.contains_key(&iface)
    }

    /// Sampling interval δ for an interface (if registered).
    pub fn delta(&self, iface: IfaceKind) -> Option<SimDuration> {
        self.states.get(&iface).map(|s| s.delta)
    }

    /// Offer the current cumulative delivered byte count for `iface`.
    /// A sample is taken only when δ has elapsed since the previous one;
    /// call this as often as convenient. Returns `true` when a new sample
    /// was recorded.
    pub fn offer(&mut self, now: SimTime, iface: IfaceKind, cumulative_bytes: u64) -> bool {
        let Some(st) = self.states.get_mut(&iface) else {
            return false;
        };
        let elapsed = now.saturating_since(st.last_sample_at);
        if elapsed < st.delta {
            return false;
        }
        let bytes = cumulative_bytes.saturating_sub(st.last_bytes);
        let mbps = bytes as f64 * 8.0 / elapsed.as_secs_f64() / 1e6;
        st.hw.observe(mbps);
        st.last_bytes = cumulative_bytes;
        st.last_sample_at = now;
        st.samples += 1;
        true
    }

    /// Skip the sampling window without observing (used while an interface
    /// is deliberately suspended: zero throughput there is policy, not
    /// evidence). Old observations are retained per §3.2 — but information
    /// ages: each skipped window nudges the forecast a few percent back
    /// toward the never-activated prior, so a path suspended on a
    /// pessimistic estimate (e.g. a sample taken mid-loss-recovery) gets
    /// another chance within tens of seconds rather than never.
    pub fn skip(&mut self, now: SimTime, iface: IfaceKind, cumulative_bytes: u64) {
        let assumption = self.initial_assumption_mbps;
        if let Some(st) = self.states.get_mut(&iface) {
            let elapsed = now.saturating_since(st.last_sample_at);
            if elapsed < st.delta {
                return;
            }
            st.last_bytes = cumulative_bytes;
            st.last_sample_at = now;
            st.hw.decay_toward(assumption, 0.03);
        }
    }

    /// Predicted throughput (Mbps). Never-activated interfaces yield the
    /// initial assumption; deactivated ones yield their last forecast.
    pub fn predict(&self, iface: IfaceKind) -> f64 {
        self.states
            .get(&iface)
            .and_then(|s| s.hw.forecast())
            .unwrap_or(self.initial_assumption_mbps)
    }

    /// Samples recorded for an interface.
    pub fn samples(&self, iface: IfaceKind) -> u64 {
        self.states.get(&iface).map(|s| s.samples).unwrap_or(0)
    }
}

impl Default for BandwidthPredictor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holt_winters_tracks_constant() {
        let mut hw = HoltWinters::new(0.4, 0.2);
        assert_eq!(hw.forecast(), None);
        for _ in 0..50 {
            hw.observe(7.0);
        }
        assert!((hw.forecast().unwrap() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn holt_winters_extrapolates_trend() {
        let mut hw = HoltWinters::new(0.5, 0.5);
        for i in 0..100 {
            hw.observe(i as f64);
        }
        // A linear ramp: the one-step forecast should exceed the last
        // observation (it has learnt the slope).
        assert!(hw.forecast().unwrap() > 99.0);
    }

    #[test]
    fn holt_winters_never_negative() {
        let mut hw = HoltWinters::new(0.9, 0.9);
        hw.observe(10.0);
        hw.observe(0.0);
        hw.observe(0.0);
        assert!(hw.forecast().unwrap() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha out of range")]
    fn holt_winters_validates_alpha() {
        HoltWinters::new(0.0, 0.5);
    }

    #[test]
    fn unknown_iface_uses_assumption() {
        let p = BandwidthPredictor::new();
        assert_eq!(p.predict(IfaceKind::CellularLte), 5.0);
        assert_eq!(p.samples(IfaceKind::CellularLte), 0);
    }

    #[test]
    fn sampling_respects_delta() {
        let mut p = BandwidthPredictor::new();
        let t0 = SimTime::ZERO;
        p.register_iface(t0, IfaceKind::Wifi, Some(SimDuration::from_millis(400)));
        assert_eq!(
            p.delta(IfaceKind::Wifi),
            Some(SimDuration::from_millis(400))
        );
        // Too early: no sample.
        assert!(!p.offer(t0 + SimDuration::from_millis(200), IfaceKind::Wifi, 10_000));
        // At delta: sampled.
        assert!(p.offer(t0 + SimDuration::from_millis(400), IfaceKind::Wifi, 500_000));
        // 500 kB in 400 ms = 10 Mbps.
        assert!((p.predict(IfaceKind::Wifi) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn delta_clamped() {
        let mut p = BandwidthPredictor::new();
        p.register_iface(
            SimTime::ZERO,
            IfaceKind::Wifi,
            Some(SimDuration::from_millis(1)),
        );
        assert_eq!(
            p.delta(IfaceKind::Wifi),
            Some(SimDuration::from_millis(250))
        );
        p.register_iface(
            SimTime::ZERO,
            IfaceKind::CellularLte,
            Some(SimDuration::from_secs(9)),
        );
        assert_eq!(
            p.delta(IfaceKind::CellularLte),
            Some(SimDuration::from_secs(1))
        );
    }

    #[test]
    fn skip_preserves_old_forecast() {
        let mut p = BandwidthPredictor::new();
        let mut now = SimTime::ZERO;
        p.register_iface(
            now,
            IfaceKind::CellularLte,
            Some(SimDuration::from_millis(400)),
        );
        let mut bytes = 0u64;
        for _ in 0..20 {
            now += SimDuration::from_millis(400);
            bytes += 500_000; // 10 Mbps
            p.offer(now, IfaceKind::CellularLte, bytes);
        }
        let before = p.predict(IfaceKind::CellularLte);
        // Suspended for a long stretch: skipped windows retain the old
        // forecast, decaying gently toward the 5 Mbps prior (never below
        // the smaller of the two).
        for _ in 0..50 {
            now += SimDuration::from_millis(400);
            p.skip(now, IfaceKind::CellularLte, bytes);
        }
        let stale = p.predict(IfaceKind::CellularLte);
        assert!(stale <= before && stale >= 5.0, "stale {stale}");
        // Reactivation blends new data with the retained state.
        now += SimDuration::from_millis(400);
        bytes += 100_000; // 2 Mbps now
        p.offer(now, IfaceKind::CellularLte, bytes);
        let after = p.predict(IfaceKind::CellularLte);
        assert!(after < stale && after > 2.0 - 1e-9);
    }

    #[test]
    fn suspended_pessimism_decays_toward_prior() {
        // A crash sample (e.g. taken mid-loss-recovery) followed by a long
        // suspension must not freeze the forecast near zero: it recovers
        // toward the 5 Mbps assumption so the path gets re-probed.
        let mut p = BandwidthPredictor::new();
        let mut now = SimTime::ZERO;
        p.register_iface(
            now,
            IfaceKind::CellularLte,
            Some(SimDuration::from_millis(400)),
        );
        now += SimDuration::from_millis(400);
        p.offer(now, IfaceKind::CellularLte, 10_000); // ~0.2 Mbps crash
        assert!(p.predict(IfaceKind::CellularLte) < 0.5);
        for _ in 0..200 {
            now += SimDuration::from_millis(400);
            p.skip(now, IfaceKind::CellularLte, 10_000);
        }
        assert!(
            p.predict(IfaceKind::CellularLte) > 4.0,
            "forecast stuck at {}",
            p.predict(IfaceKind::CellularLte)
        );
    }

    #[test]
    fn converges_to_new_rate_after_change() {
        let mut p = BandwidthPredictor::new();
        let mut now = SimTime::ZERO;
        p.register_iface(now, IfaceKind::Wifi, Some(SimDuration::from_millis(400)));
        let mut bytes = 0u64;
        for _ in 0..30 {
            now += SimDuration::from_millis(400);
            bytes += 500_000; // 10 Mbps
            p.offer(now, IfaceKind::Wifi, bytes);
        }
        for _ in 0..30 {
            now += SimDuration::from_millis(400);
            bytes += 50_000; // 1 Mbps
            p.offer(now, IfaceKind::Wifi, bytes);
        }
        assert!((p.predict(IfaceKind::Wifi) - 1.0).abs() < 0.2);
    }

    #[test]
    fn register_twice_keeps_state() {
        let mut p = BandwidthPredictor::new();
        let t0 = SimTime::ZERO;
        p.register_iface(t0, IfaceKind::Wifi, Some(SimDuration::from_millis(300)));
        p.offer(t0 + SimDuration::from_millis(300), IfaceKind::Wifi, 375_000);
        let before = p.predict(IfaceKind::Wifi);
        p.register_iface(t0, IfaceKind::Wifi, Some(SimDuration::from_millis(500)));
        assert_eq!(p.predict(IfaceKind::Wifi), before);
        assert_eq!(
            p.delta(IfaceKind::Wifi),
            Some(SimDuration::from_millis(300))
        );
    }
}
