//! The device ↔ server simulation host.
//!
//! One [`Simulation`] runs one strategy through one scenario: it owns the
//! radios (WiFi channel, cellular RRC machine), the two network paths, one
//! or more MPTCP connection pairs, the optional eMPTCP engine per
//! connection, and the energy meter. Everything advances through a single
//! deterministic event queue; a 100 ms control tick drives the environment
//! processes, the eMPTCP control loop and energy integration, while packet
//! deliveries and TCP timers are exact events.
//!
//! Modelling notes (deviations documented in DESIGN.md):
//!
//! * the RRC machine models the *device* radio; downlink packets arriving
//!   while the radio is idle trigger a promotion (standing in for paging)
//!   and are buffered until the radio is connected;
//! * the §3.6 resume tweaks are applied to both ends of a resumed subflow —
//!   the paper patches the phone's kernel, and the server-side minRTT
//!   probing effect it describes is reproduced this way;
//! * "MPTCP with WiFi-First" pins the cellular subflow to backup on both
//!   ends at creation (the host is omniscient, no MP_PRIO race).

use crate::scenario::{Scenario, WifiEnvironment, Workload};
use crate::strategy::Strategy;
use emptcp::{Action, EmptcpClient, IfaceTotals};
use emptcp_energy::{Eib, EnergyMeter, EnergyModel, RadioSnapshot};
use emptcp_faults::{FaultInjector, FaultPlan, FaultSurface, FaultTarget};
use emptcp_mptcp::{MpConnection, RecoveryStats, Role, SubflowId};
use emptcp_phy::link::{EnqueueOutcome, LossModel};
use emptcp_phy::mobility::MobilityModel;
use emptcp_phy::path::{Direction, Path, PathConfig};
use emptcp_phy::rrc::RrcState;
use emptcp_phy::{IfaceKind, RrcMachine, WifiChannel};
use emptcp_sim::trace::TimeSeries;
use emptcp_sim::{EventQueue, SimDuration, SimRng, SimTime};
use emptcp_tcp::{SegRef, SegSlabStats, Segment, SegmentSlab, TcpConfig};
use emptcp_telemetry::Telemetry;
use emptcp_workload::web::{FetchQueue, WebPage, BROWSER_CONNECTIONS};
use emptcp_workload::{BandwidthModulator, InterfererSet};
use serde::{Deserialize, Serialize};

const TICK: SimDuration = SimDuration::from_millis(100);
/// How long after workload completion the simulation keeps integrating
/// energy, waiting for the cellular tail to drain.
const DRAIN_CAP: SimDuration = SimDuration::from_secs(16);

#[derive(Clone, Debug)]
enum Event {
    Deliver {
        conn: usize,
        sf: SubflowId,
        to_client: bool,
        /// Parked in the host's segment slab while the event is queued;
        /// whoever consumes the event must take it exactly once.
        seg: SegRef,
    },
    Tick,
    TimerCheck,
    CellReady,
}

/// Everything measured from one run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Strategy label.
    pub strategy: String,
    /// Scenario name.
    pub scenario: String,
    /// The workload finished before the horizon.
    pub completed: bool,
    /// Time from start to the last workload byte (or the timed duration).
    pub download_time_s: f64,
    /// Total energy including the post-completion radio drain (J).
    pub energy_j: f64,
    /// Energy at the moment the last byte arrived (J).
    pub energy_at_completion_j: f64,
    /// Workload payload bytes delivered to the client.
    pub bytes_delivered: u64,
    /// Payload bytes that rode WiFi.
    pub wifi_bytes: u64,
    /// Payload bytes that rode cellular.
    pub cell_bytes: u64,
    /// Energy per delivered byte (J/B), drain included.
    pub joules_per_byte: f64,
    /// Cellular promotions performed (each costs fixed energy).
    pub promotions: u64,
    /// eMPTCP controller state switches (0 for other strategies).
    pub usage_switches: u64,
    /// TCP-level retransmissions across all subflows.
    pub retransmissions: u64,
    /// Streaming workloads: chunks that missed their playback deadline.
    pub rebuffer_events: u64,
    /// Cellular energy spent in the promotion state (J).
    pub promo_energy_j: f64,
    /// Cellular energy spent in the tail state (J) — stranded fixed cost.
    pub tail_energy_j: f64,
    /// Average WiFi throughput over the download (Mbps).
    pub avg_wifi_mbps: f64,
    /// Average cellular throughput over the download (Mbps).
    pub avg_cell_mbps: f64,
    /// Accumulated energy over time (downsampled).
    pub energy_trace: TimeSeries,
    /// WiFi goodput over time, Mbps (downsampled).
    pub wifi_thpt_trace: TimeSeries,
    /// Cellular goodput over time, Mbps (downsampled).
    pub cell_thpt_trace: TimeSeries,
    /// Effective WiFi capacity over time, Mbps (downsampled).
    pub wifi_capacity_trace: TimeSeries,
    /// Fault events the injector applied (0 when no plan was attached).
    pub faults_injected: u64,
    /// Subflows declared dead by the consecutive-RTO detector (both ends).
    pub subflow_failures: u64,
    /// Link-down notifications propagated to the stack (both ends).
    pub link_down_events: u64,
    /// Data-level bytes queued for reinjection on surviving subflows.
    pub bytes_reinjected: u64,
    /// Backup subflows promoted because no regular path survived.
    pub backup_promotions: u64,
    /// Dead subflows that came back into service.
    pub subflow_revivals: u64,
    /// Worst failure-to-progress latency in seconds (0 when no failure).
    pub worst_recovery_latency_s: f64,
    /// Subflows (both ends) still flagged link-down when the run ended.
    /// Non-zero after a fault plan that restores every interface means a
    /// link-up notification was lost — the no-stuck-subflows oracle.
    pub stuck_subflows: u64,
}

struct ConnState {
    client: MpConnection,
    server: MpConnection,
    engine: Option<EmptcpClient>,
    wifi_sf: Option<SubflowId>,
    cell_sf: Option<SubflowId>,
    /// Response bytes the server still owes once requests arrive.
    request_cursor: u64,
    /// Total payload the client expects (grows per web object).
    expected_bytes: u64,
    /// Bytes of the current in-flight web object (None = idle).
    web_current: Option<u64>,
    wifi_established_seen: bool,
}

impl ConnState {
    fn total_retransmissions(&self) -> u64 {
        self.client
            .subflows()
            .iter()
            .map(|sf| sf.tcp.retransmissions())
            .sum::<u64>()
            + self
                .server
                .subflows()
                .iter()
                .map(|sf| sf.tcp.retransmissions())
                .sum::<u64>()
    }
}

/// One strategy through one scenario.
pub struct Simulation {
    scenario: Scenario,
    strategy: Strategy,
    rng: SimRng,
    queue: EventQueue<Event>,

    wifi_channel: WifiChannel,
    rrc: RrcMachine,
    wifi_path: Path,
    cell_path: Path,
    cell_pending: Vec<(usize, SubflowId, bool, Segment)>,
    cell_ready_scheduled: bool,
    /// In-flight segments parked while their [`Event::Deliver`] is queued;
    /// doubles as the run's leak oracle ([`Simulation::seg_slab_stats`]).
    seg_slab: SegmentSlab,
    /// Reused transmit batch: [`Simulation::drain_conn`] runs on every
    /// delivery, so allocating a fresh `Vec` per call would be the single
    /// biggest allocation source in a run.
    tx_scratch: Vec<(SubflowId, Segment, bool)>,

    modulator: Option<BandwidthModulator>,
    interferers: Option<InterfererSet>,
    mobility: Option<MobilityModel>,

    conns: Vec<ConnState>,
    web_queue: Option<FetchQueue>,

    meter: EnergyMeter,
    /// Wire bytes seen at the device per interface since the last tick:
    /// `[wifi, cellular]`.
    window_bytes: [u64; 2],
    /// The single outstanding TimerCheck event (time + cancellation
    /// handle). Re-arming cancels the old event: stale timer events must
    /// not accumulate.
    timer_handle: Option<(SimTime, emptcp_sim::TimerId)>,

    energy_trace: TimeSeries,
    wifi_thpt_trace: TimeSeries,
    cell_thpt_trace: TimeSeries,
    wifi_capacity_trace: TimeSeries,

    completed_at: Option<SimTime>,
    energy_at_completion: f64,
    /// Streaming: when the next chunk is due, how many were pushed, and
    /// how many missed their deadline.
    stream_next_at: SimTime,
    stream_chunks: u64,
    stream_misses: u64,
    mdp_policy: Option<crate::mdp::MdpPolicy>,
    mdp_epoch_bytes: [u64; 2],
    done: bool,

    telemetry: Telemetry,
    /// Energy at the previous tick, for the monotonicity invariant.
    last_energy_j: f64,

    /// Scripted fault injection (None = fault-free run). Polled at the top
    /// of every control tick, so fault timestamps quantise to 100 ms.
    injector: Option<FaultInjector>,
    /// Fault events applied so far.
    faults_applied: u64,
    /// A WiFi `IfaceDown` fault is in force: the association is held down
    /// regardless of what the scenario environment wants.
    fault_wifi_down: bool,
    /// While set, wins over the WiFi channel model's effective rate.
    fault_wifi_rate: Option<u64>,
    /// While set, the channel model's per-tick loss push is suppressed so
    /// the injected model's burst state is not reset every 100 ms.
    fault_wifi_loss: Option<LossModel>,
    /// Nominal values restored when a fault clears: WiFi/cell one-way
    /// propagation delays, cellular down/up rates and downlink loss.
    nominal_wifi_prop: SimDuration,
    nominal_cell_prop: SimDuration,
    nominal_cell_rates: (u64, u64),
    nominal_cell_loss: f64,
}

impl Simulation {
    /// Build a simulation; `seed` controls every random process. Telemetry
    /// comes from [`emptcp_telemetry::current`]: the calling thread's
    /// override if one is installed (the parallel experiment runner sets
    /// one per exhibit), otherwise the process-wide default installed via
    /// [`emptcp_telemetry::set_global`], otherwise disabled.
    pub fn new(scenario: Scenario, strategy: Strategy, seed: u64) -> Simulation {
        Simulation::new_with_telemetry(scenario, strategy, seed, emptcp_telemetry::current())
    }

    /// Build a simulation reporting through an explicit telemetry pipeline.
    pub fn new_with_telemetry(
        scenario: Scenario,
        strategy: Strategy,
        seed: u64,
        telemetry: Telemetry,
    ) -> Simulation {
        let mut rng = SimRng::new(seed);
        let model = EnergyModel::new(scenario.profile.clone(), scenario.cell_kind);
        let meter = EnergyMeter::new(model.clone(), SimTime::ZERO, scenario.baseline_w);

        let modulator = match &scenario.wifi {
            WifiEnvironment::Modulated {
                mean_hold_s,
                start_high,
            } => Some(BandwidthModulator::new(
                SimTime::ZERO,
                *start_high,
                1.0 / mean_hold_s,
                emptcp_workload::bwplan::Band {
                    lo_bps: 10_000_000,
                    hi_bps: 12_000_000,
                },
                emptcp_workload::bwplan::Band {
                    lo_bps: 300_000,
                    hi_bps: 1_000_000,
                },
                &mut rng,
            )),
            _ => None,
        };
        let initial_wifi_bps = match &scenario.wifi {
            WifiEnvironment::Static { bps } => *bps,
            WifiEnvironment::Modulated { .. } => {
                modulator.as_ref().expect("just built").current_bps()
            }
            WifiEnvironment::Contended { bps, .. } => *bps,
            WifiEnvironment::Mobile { model } => model.wifi_goodput_bps(SimTime::ZERO),
            WifiEnvironment::StaticWithOutage { bps, .. } => *bps,
        };
        let wifi_channel = WifiChannel::new(initial_wifi_bps);
        let rrc_cfg = match scenario.cell_kind {
            IfaceKind::Cellular3g => scenario.profile.threeg.rrc,
            _ => scenario.profile.lte.rrc,
        };
        let wifi_path = Path::new(PathConfig::wifi(initial_wifi_bps, scenario.wifi_rtt));
        let cell_path = Path::new(PathConfig::cellular(
            scenario.cell_kind,
            scenario.cell_bps,
            scenario.cell_rtt,
        ));

        let interferers = match &scenario.wifi {
            WifiEnvironment::Contended { n, lambda_off, .. } => Some(InterfererSet::new(
                SimTime::ZERO,
                *n,
                emptcp_workload::interference::LAMBDA_ON,
                *lambda_off,
                &mut rng,
            )),
            _ => None,
        };
        let mobility = match &scenario.wifi {
            WifiEnvironment::Mobile { model } => Some(model.clone()),
            _ => None,
        };

        let mdp_policy = if matches!(strategy, Strategy::MdpScheduler) {
            Some(crate::mdp::MdpPolicy::pluntke(&model))
        } else {
            None
        };

        let mut rrc = RrcMachine::new(rrc_cfg);
        rrc.set_telemetry(telemetry.scope(0));
        let mut meter = meter;
        meter.set_telemetry(telemetry.scope(0));
        let nominal_wifi_prop = wifi_path.down().prop_delay();
        let nominal_cell_prop = cell_path.down().prop_delay();
        let nominal_cell_rates = (cell_path.down().rate_bps(), cell_path.up().rate_bps());
        let nominal_cell_loss = cell_path.down().loss_prob();
        let mut sim = Simulation {
            scenario,
            strategy,
            rng,
            queue: EventQueue::new(),
            wifi_channel,
            rrc,
            wifi_path,
            cell_path,
            cell_pending: Vec::new(),
            cell_ready_scheduled: false,
            seg_slab: SegmentSlab::new(),
            tx_scratch: Vec::new(),
            modulator,
            interferers,
            mobility,
            conns: Vec::new(),
            web_queue: None,
            meter,
            window_bytes: [0, 0],
            timer_handle: None,
            energy_trace: TimeSeries::new("energy_j"),
            wifi_thpt_trace: TimeSeries::new("wifi_mbps"),
            cell_thpt_trace: TimeSeries::new("cell_mbps"),
            wifi_capacity_trace: TimeSeries::new("wifi_capacity_mbps"),
            completed_at: None,
            energy_at_completion: 0.0,
            stream_next_at: SimTime::ZERO,
            stream_chunks: 0,
            stream_misses: 0,
            mdp_policy,
            mdp_epoch_bytes: [0, 0],
            done: false,
            telemetry,
            last_energy_j: 0.0,
            injector: None,
            faults_applied: 0,
            fault_wifi_down: false,
            fault_wifi_rate: None,
            fault_wifi_loss: None,
            nominal_wifi_prop,
            nominal_cell_prop,
            nominal_cell_rates,
            nominal_cell_loss,
        };
        sim.setup_connections();
        sim
    }

    /// Arm a scripted fault plan. Events are applied on the 100 ms control
    /// tick, the same clock the environment processes run on, so a plan
    /// perturbs the run exactly as a hostile environment would — and two
    /// runs with the same seed and plan stay byte-identical.
    pub fn attach_faults(&mut self, plan: FaultPlan) {
        let mut injector = FaultInjector::new(plan);
        injector.set_telemetry(self.telemetry.scope(0));
        self.injector = Some(injector);
    }

    fn tcp_config(&self) -> TcpConfig {
        TcpConfig::default()
    }

    fn setup_connections(&mut self) {
        let now = SimTime::ZERO;
        let n_conns = match self.scenario.workload {
            Workload::WebPage => BROWSER_CONNECTIONS,
            _ => 1,
        };
        if matches!(self.scenario.workload, Workload::WebPage) {
            let page = WebPage::cnn_like(&mut self.rng.fork(0xCAFE));
            self.web_queue = Some(FetchQueue::new(&page));
        }
        for conn_idx in 0..n_conns {
            let mut client = MpConnection::new(Role::Client, self.tcp_config());
            let mut server = MpConnection::new(Role::Server, self.tcp_config());
            // Both ends report under the same connection id; the client is
            // the device whose behaviour the traces describe.
            client.set_telemetry(self.telemetry.scope(conn_idx as u32));
            server.set_telemetry(self.telemetry.scope(conn_idx as u32));
            let mut wifi_sf = None;
            let mut cell_sf = None;
            if self.strategy.uses_wifi() {
                let id = client.add_subflow(now, IfaceKind::Wifi);
                server.add_subflow(now, IfaceKind::Wifi);
                wifi_sf = Some(id);
            }
            if self.strategy.opens_cellular_immediately() {
                let id = client.add_subflow(now, self.scenario.cell_kind);
                server.add_subflow(now, self.scenario.cell_kind);
                cell_sf = Some(id);
                if matches!(self.strategy, Strategy::WifiFirst) {
                    client.subflow_mut(id).backup = true;
                    server.subflow_mut(id).backup = true;
                }
            }
            let engine = match &self.strategy {
                Strategy::Emptcp(cfg) => {
                    let model =
                        EnergyModel::new(self.scenario.profile.clone(), self.scenario.cell_kind);
                    let eib = Eib::generate_default(&model);
                    let mut engine = EmptcpClient::new(*cfg, eib, self.scenario.cell_kind);
                    engine.set_telemetry(self.telemetry.scope(conn_idx as u32));
                    Some(engine)
                }
                _ => None,
            };
            // The client uploads its request immediately; it flows once the
            // handshake completes. Upload workloads have no request — the
            // client writes the payload itself.
            match self.scenario.workload {
                Workload::WebPage => {}
                Workload::Upload { size } => client.write(size),
                _ => client.write(400),
            }
            self.conns.push(ConnState {
                client,
                server,
                engine,
                wifi_sf,
                cell_sf,
                request_cursor: 0,
                expected_bytes: 0,
                web_current: None,
                wifi_established_seen: false,
            });
        }
    }

    // ------------------------------------------------------------------
    // wire plumbing
    // ------------------------------------------------------------------

    fn send(&mut self, now: SimTime, conn: usize, sf: SubflowId, seg: Segment, from_client: bool) {
        let iface = self.conns[conn].client.subflow(sf).iface;
        let dir = if from_client {
            Direction::Up
        } else {
            Direction::Down
        };
        if iface == IfaceKind::Wifi {
            if from_client {
                self.window_bytes[0] += seg.wire_bytes();
            }
            match self
                .wifi_path
                .enqueue(dir, now, seg.wire_bytes(), &mut self.rng)
            {
                EnqueueOutcome::Delivered(at) => {
                    let seg = self.seg_slab.insert(seg);
                    self.queue.schedule(
                        at,
                        Event::Deliver {
                            conn,
                            sf,
                            to_client: !from_client,
                            seg,
                        },
                    );
                }
                EnqueueOutcome::Dropped(_) => {}
            }
        } else {
            // Cellular: the device radio must be connected.
            let (_transitions, ready) = self.rrc.on_activity(now);
            if !self.rrc.state().can_transfer() {
                self.cell_pending.push((conn, sf, !from_client, seg));
                if !self.cell_ready_scheduled {
                    self.queue.schedule(ready, Event::CellReady);
                    self.cell_ready_scheduled = true;
                }
                return;
            }
            if from_client {
                self.window_bytes[1] += seg.wire_bytes();
            }
            match self
                .cell_path
                .enqueue(dir, now, seg.wire_bytes(), &mut self.rng)
            {
                EnqueueOutcome::Delivered(at) => {
                    let seg = self.seg_slab.insert(seg);
                    self.queue.schedule(
                        at,
                        Event::Deliver {
                            conn,
                            sf,
                            to_client: !from_client,
                            seg,
                        },
                    );
                }
                EnqueueOutcome::Dropped(_) => {}
            }
        }
    }

    fn drain_conn(&mut self, now: SimTime, i: usize) {
        // Reuse one batch buffer across calls (taken so `send` can borrow
        // `self` mutably while we iterate).
        let mut batch = std::mem::take(&mut self.tx_scratch);
        loop {
            batch.clear();
            while let Some((sf, seg)) = self.conns[i].client.poll_transmit(now) {
                batch.push((sf, seg, true));
            }
            while let Some((sf, seg)) = self.conns[i].server.poll_transmit(now) {
                batch.push((sf, seg, false));
            }
            if batch.is_empty() {
                break;
            }
            for &(sf, seg, from_client) in &batch {
                self.send(now, i, sf, seg, from_client);
            }
        }
        self.tx_scratch = batch;
    }

    fn drain_all(&mut self, now: SimTime) {
        for i in 0..self.conns.len() {
            self.drain_conn(now, i);
        }
        self.schedule_timers(now);
    }

    fn schedule_timers(&mut self, now: SimTime) {
        let next = self
            .conns
            .iter()
            .flat_map(|c| [c.client.next_deadline(), c.server.next_deadline()])
            .flatten()
            .min();
        if let Some(d) = next {
            let d = d.max(now);
            let need = match self.timer_handle {
                Some((t, _)) => d < t,
                None => true,
            };
            if need {
                if let Some((_, id)) = self.timer_handle.take() {
                    self.queue.cancel(id);
                }
                let id = self.queue.schedule(d, Event::TimerCheck);
                self.timer_handle = Some((d, id));
            }
        }
    }

    // ------------------------------------------------------------------
    // event handlers
    // ------------------------------------------------------------------

    fn on_deliver(
        &mut self,
        now: SimTime,
        conn: usize,
        sf: SubflowId,
        to_client: bool,
        seg: Segment,
    ) {
        let iface = self.conns[conn].client.subflow(sf).iface;
        if iface != IfaceKind::Wifi {
            // Keep the device radio's activity clock fresh; deliveries only
            // happen while connected, so this never queues.
            let _ = self.rrc.on_activity(now);
            if to_client {
                self.window_bytes[1] += seg.wire_bytes();
            }
        } else if to_client {
            self.window_bytes[0] += seg.wire_bytes();
        }

        let outcome = if to_client {
            self.conns[conn].client.on_segment(now, sf, seg)
        } else {
            self.conns[conn].server.on_segment(now, sf, seg)
        };

        if to_client && outcome.established_now {
            self.on_subflow_established(now, conn, sf);
        }
        if !to_client {
            self.feed_server(now, conn);
        }
        self.drain_conn(now, conn);
        self.schedule_timers(now);
        self.check_completion(now);
    }

    fn on_subflow_established(&mut self, now: SimTime, conn: usize, sf: SubflowId) {
        let c = &mut self.conns[conn];
        if Some(sf) == c.wifi_sf && !c.wifi_established_seen {
            c.wifi_established_seen = true;
            if let Some(engine) = c.engine.as_mut() {
                engine.on_wifi_established(now, sf, &c.client);
            }
            if matches!(self.scenario.workload, Workload::WebPage) {
                self.start_next_web_object(now, conn);
            }
        } else if Some(sf) == c.cell_sf {
            if let Some(engine) = c.engine.as_mut() {
                engine.on_cellular_established(now, sf, &c.client);
            }
        }
    }

    /// Server-side workload logic: answer requests.
    fn feed_server(&mut self, now: SimTime, conn: usize) {
        let _ = now;
        let c = &mut self.conns[conn];
        let got = c.server.bytes_delivered();
        match self.scenario.workload {
            Workload::Download { size } => {
                if got >= 400 && c.request_cursor == 0 {
                    c.request_cursor = 400;
                    c.server.write(size);
                    c.expected_bytes = size;
                }
            }
            Workload::TimedBulk { .. } => {
                if got >= 400 && c.request_cursor == 0 {
                    c.request_cursor = 400;
                    // "Unbounded" bulk: far more than any run can move.
                    c.server.write(1 << 42);
                    c.expected_bytes = u64::MAX;
                }
            }
            Workload::WebPage => {
                // Each 600-byte request unlocks one object response.
                if let Some(obj) = c.web_current {
                    let needed = c.request_cursor + 600;
                    if got >= needed {
                        c.request_cursor = needed;
                        c.server.write(obj);
                        c.expected_bytes += obj;
                    }
                }
            }
            Workload::Upload { .. } => {}
            Workload::Streaming { .. } => {} // chunks pushed from on_tick
        }
    }

    /// Client-side web driving: fetch the next object when idle.
    fn start_next_web_object(&mut self, now: SimTime, conn: usize) {
        let _ = now;
        let Some(queue) = self.web_queue.as_mut() else {
            return;
        };
        let c = &mut self.conns[conn];
        if c.web_current.is_some() {
            return;
        }
        if let Some(size) = queue.pop() {
            c.web_current = Some(size);
            c.client.write(600);
        }
    }

    fn on_cell_ready(&mut self, now: SimTime) {
        self.cell_ready_scheduled = false;
        self.rrc.poll(now);
        if !self.rrc.state().can_transfer() {
            // Still promoting (e.g. spurious event); re-arm.
            if let Some(d) = self.rrc.next_deadline() {
                self.queue.schedule(d, Event::CellReady);
                self.cell_ready_scheduled = true;
            }
            return;
        }
        let pending = std::mem::take(&mut self.cell_pending);
        for (conn, sf, to_client, seg) in pending {
            let dir = if to_client {
                Direction::Down
            } else {
                Direction::Up
            };
            if !to_client {
                self.window_bytes[1] += seg.wire_bytes();
            }
            match self
                .cell_path
                .enqueue(dir, now, seg.wire_bytes(), &mut self.rng)
            {
                EnqueueOutcome::Delivered(at) => {
                    let seg = self.seg_slab.insert(seg);
                    self.queue.schedule(
                        at,
                        Event::Deliver {
                            conn,
                            sf,
                            to_client,
                            seg,
                        },
                    );
                }
                EnqueueOutcome::Dropped(_) => {}
            }
        }
    }

    /// The WiFi association came or went: propagate link state to every
    /// WiFi subflow on both ends (the kernel learns this from the link
    /// layer; the server infers it from timeouts — the host short-circuits
    /// that, see DESIGN.md §8), and let Single-Path mode fail over.
    fn on_wifi_association_change(&mut self, now: SimTime, associated: bool) {
        for i in 0..self.conns.len() {
            if let Some(id) = self.conns[i].wifi_sf {
                self.conns[i]
                    .client
                    .set_subflow_link_up(now, id, associated);
                self.conns[i]
                    .server
                    .set_subflow_link_up(now, id, associated);
            }
            if !associated
                && matches!(self.strategy, Strategy::SinglePath)
                && self.conns[i].cell_sf.is_none()
            {
                // §2.1: Single-Path mode establishes a new subflow only
                // after the current interface goes down.
                let kind = self.scenario.cell_kind;
                let c = &mut self.conns[i];
                let id = c.client.add_subflow(now, kind);
                c.server.add_subflow(now, kind);
                c.cell_sf = Some(id);
            }
        }
    }

    fn on_timer_check(&mut self, now: SimTime) {
        self.timer_handle = None;
        for i in 0..self.conns.len() {
            self.conns[i].client.on_deadline(now);
            self.conns[i].server.on_deadline(now);
        }
        self.drain_all(now);
        self.check_completion(now);
    }

    fn apply_engine_actions(&mut self, now: SimTime, conn: usize, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::EstablishCellular => {
                    let kind = self.scenario.cell_kind;
                    let c = &mut self.conns[conn];
                    let id = c.client.add_subflow(now, kind);
                    c.server.add_subflow(now, kind);
                    c.cell_sf = Some(id);
                }
                Action::SetPriority { id, backup } => {
                    self.conns[conn]
                        .client
                        .set_subflow_priority(now, id, backup);
                }
                Action::Resume { id } => {
                    self.conns[conn].client.prepare_subflow_resume(id);
                    self.conns[conn].server.prepare_subflow_resume(id);
                }
            }
        }
    }

    fn apply_mdp_policy(&mut self, now: SimTime) {
        let Some(policy) = self.mdp_policy.as_ref() else {
            return;
        };
        // Epoch throughputs in Mbps over the last second.
        let wifi = self.mdp_epoch_bytes[0] as f64 * 8.0 / 1e6;
        let cell = self.mdp_epoch_bytes[1] as f64 * 8.0 / 1e6;
        self.mdp_epoch_bytes = [0, 0];
        let usage = policy.action(wifi.max(0.1), cell);
        for i in 0..self.conns.len() {
            let (wifi_sf, cell_sf) = (self.conns[i].wifi_sf, self.conns[i].cell_sf);
            if usage.uses_cellular() {
                match cell_sf {
                    None => {
                        let kind = self.scenario.cell_kind;
                        let c = &mut self.conns[i];
                        let id = c.client.add_subflow(now, kind);
                        c.server.add_subflow(now, kind);
                        c.cell_sf = Some(id);
                    }
                    Some(id) => {
                        self.conns[i].client.set_subflow_priority(now, id, false);
                    }
                }
            } else if let Some(id) = cell_sf {
                self.conns[i].client.set_subflow_priority(now, id, true);
            }
            if let Some(id) = wifi_sf {
                self.conns[i]
                    .client
                    .set_subflow_priority(now, id, !usage.uses_wifi());
            }
        }
    }

    fn on_tick(&mut self, now: SimTime) {
        // 0. Scripted faults fire before the environment pushes state into
        //    the paths, so a rate/loss override wins over the channel model
        //    within the same tick. The injector is taken out of `self` for
        //    the call because the simulation is its own fault surface.
        if let Some(mut injector) = self.injector.take() {
            self.faults_applied += injector.poll(now, self) as u64;
            self.injector = Some(injector);
        }

        // 1. Environment updates.
        if let Some(m) = self.modulator.as_mut() {
            if let Some(rate) = m.poll(now) {
                self.wifi_channel.set_nominal_bps(rate);
            }
        }
        if let Some(set) = self.interferers.as_mut() {
            set.poll(now);
            let k = set.active(now);
            self.wifi_channel.set_active_contenders(k);
        }
        if let Some(mob) = self.mobility.as_ref() {
            self.wifi_channel.set_nominal_bps(mob.wifi_goodput_bps(now));
        }
        let scenario_associated = match self.scenario.wifi {
            WifiEnvironment::StaticWithOutage {
                outage_start,
                outage_end,
                ..
            } => !(outage_start..outage_end).contains(&now),
            _ => true,
        };
        let associated = scenario_associated && !self.fault_wifi_down;
        if associated != self.wifi_channel.associated() {
            self.wifi_channel.set_associated(associated);
            self.on_wifi_association_change(now, associated);
        }
        let eff = self
            .fault_wifi_rate
            .unwrap_or_else(|| self.wifi_channel.effective_rate_bps());
        self.wifi_path.down_mut().set_rate_bps(now, eff);
        if self.fault_wifi_loss.is_none() {
            // An injected loss model is installed once at fault time; the
            // per-tick push would reset its burst state every 100 ms.
            self.wifi_path
                .down_mut()
                .set_loss_prob(self.wifi_channel.loss_prob());
        }

        // 2. RRC timers (tail/idle transitions).
        self.rrc.poll(now);

        // 3. eMPTCP control loops, fed the device-wide per-interface
        //    counters (§3.2 samples per interface across all connections).
        let upload = matches!(self.scenario.workload, Workload::Upload { .. });
        let per_iface = |conns: &[ConnState], iface: IfaceKind| -> u64 {
            conns
                .iter()
                .map(|c| {
                    if upload {
                        c.client.acked_by_iface(iface)
                    } else {
                        c.client.delivered_by_iface(iface)
                    }
                })
                .sum()
        };
        let totals = IfaceTotals {
            wifi_bytes: per_iface(&self.conns, IfaceKind::Wifi),
            cell_bytes: per_iface(&self.conns, self.scenario.cell_kind),
        };
        for i in 0..self.conns.len() {
            if self.conns[i].engine.is_some() {
                let actions = {
                    let c = &mut self.conns[i];
                    let engine = c.engine.as_mut().expect("checked");
                    engine.on_tick(now, &c.client, totals)
                };
                if !actions.is_empty() {
                    self.apply_engine_actions(now, i, actions);
                }
            }
        }

        // 4. MDP policy at one-second epochs.
        self.mdp_epoch_bytes[0] += self.window_bytes[0];
        self.mdp_epoch_bytes[1] += self.window_bytes[1];
        if self.mdp_policy.is_some() && now.as_nanos().is_multiple_of(1_000_000_000) {
            self.apply_mdp_policy(now);
        }

        // 5. Web workload: hand idle connections their next object.
        if matches!(self.scenario.workload, Workload::WebPage) {
            self.drive_web(now);
        }

        // 5b. Streaming workload: push chunks on the playback clock and
        //     count deadline misses (the previous chunk not fully delivered
        //     when the next one is due).
        if let Workload::Streaming {
            chunk_bytes,
            interval,
            duration,
        } = self.scenario.workload
        {
            if now >= self.stream_next_at
                && now < SimTime::ZERO + duration
                && self.conns[0].wifi_established_seen
            {
                if self.stream_chunks > 0
                    && self.conns[0].client.bytes_delivered() < self.conns[0].expected_bytes
                {
                    self.stream_misses += 1;
                }
                self.conns[0].server.write(chunk_bytes);
                self.conns[0].expected_bytes += chunk_bytes;
                self.stream_chunks += 1;
                self.stream_next_at = now + interval;
                self.drain_conn(now, 0);
            }
        }

        // 6. Energy accounting.
        let dt = TICK.as_secs_f64();
        let wifi_mbps = self.window_bytes[0] as f64 * 8.0 / dt / 1e6;
        let cell_mbps = self.window_bytes[1] as f64 * 8.0 / dt / 1e6;
        self.window_bytes = [0, 0];
        self.meter.update(
            now,
            RadioSnapshot {
                wifi_on: true,
                wifi_mbps,
                cell_state: self.rrc.state(),
                cell_mbps,
            },
        );
        self.energy_trace.push(now, self.meter.energy_j(now));
        self.wifi_thpt_trace.push(now, wifi_mbps);
        self.cell_thpt_trace.push(now, cell_mbps);
        self.wifi_capacity_trace.push(now, eff as f64 / 1e6);

        // 6b. Online invariant checks over the whole stack.
        if self.telemetry.invariants_enabled() {
            self.run_invariant_checks(now);
        }

        // 7. Completion / drain management.
        self.check_completion(now);
        if let Some(done_at) = self.completed_at {
            let drained = self.rrc.state() == RrcState::Idle;
            if drained || now.saturating_since(done_at) >= DRAIN_CAP {
                self.done = true;
                return;
            }
        }
        self.drain_all(now);
        self.queue.schedule(now + TICK, Event::Tick);
    }

    /// Conservation checks run every tick when invariants are enabled:
    /// per-subflow ACK conservation, energy monotonicity, and radio-state
    /// residency partitioning (DSS coverage is checked inside
    /// [`MpConnection::on_segment`]).
    fn run_invariant_checks(&mut self, now: SimTime) {
        let energy = self.meter.energy_j(now);
        let prev_energy = self.last_energy_j;
        self.last_energy_j = energy;
        let residency = self.rrc.residency_sum_ns(now);
        let conns = &self.conns;
        self.telemetry.check_invariants(now, |obs| {
            for (i, c) in conns.iter().enumerate() {
                for (side, mp) in [("client", &c.client), ("server", &c.server)] {
                    for sf in mp.subflows() {
                        obs.check_ack_conservation(
                            now,
                            &format!("conn{i}.{side}.sf{}", sf.id.0),
                            sf.tcp.bytes_acked_total(),
                            sf.tcp.bytes_sent_total(),
                        );
                    }
                }
            }
            obs.check_energy_monotone(now, prev_energy, energy);
            obs.check_residency_sum(now, residency, now.as_nanos());
        });
    }

    fn drive_web(&mut self, now: SimTime) {
        for i in 0..self.conns.len() {
            let c = &self.conns[i];
            if c.web_current.is_some()
                && c.expected_bytes > 0
                && c.client.bytes_delivered() >= c.expected_bytes
            {
                self.conns[i].web_current = None;
                self.start_next_web_object(now, i);
                self.drain_conn(now, i);
            } else if c.web_current.is_none() && c.wifi_established_seen {
                self.start_next_web_object(now, i);
                self.drain_conn(now, i);
            }
        }
    }

    fn workload_complete(&self, now: SimTime) -> bool {
        match self.scenario.workload {
            Workload::Download { size } => self
                .conns
                .iter()
                .all(|c| c.client.bytes_delivered() >= size),
            Workload::TimedBulk { duration } => now >= SimTime::ZERO + duration,
            Workload::Upload { size } => self
                .conns
                .iter()
                .all(|c| c.server.bytes_delivered() >= size),
            Workload::Streaming { duration, .. } => {
                now >= SimTime::ZERO + duration
                    && self
                        .conns
                        .iter()
                        .all(|c| c.client.bytes_delivered() >= c.expected_bytes)
            }
            Workload::WebPage => {
                self.web_queue
                    .as_ref()
                    .map(|q| q.remaining() == 0)
                    .unwrap_or(true)
                    && self.conns.iter().all(|c| {
                        c.web_current.is_none() || c.client.bytes_delivered() >= c.expected_bytes
                    })
            }
        }
    }

    fn check_completion(&mut self, now: SimTime) {
        if self.completed_at.is_none() && self.workload_complete(now) {
            self.completed_at = Some(now);
            self.energy_at_completion = self.meter.energy_j(now);
        }
    }

    // ------------------------------------------------------------------
    // the run loop
    // ------------------------------------------------------------------

    /// Run to completion (workload + radio drain) or the horizon.
    pub fn run(mut self) -> RunResult {
        self.queue.schedule(SimTime::ZERO, Event::Tick);
        self.drain_all(SimTime::ZERO);
        let horizon = self.scenario.horizon;
        while !self.done {
            let Some((now, event)) = self.queue.pop() else {
                break;
            };
            if now > horizon {
                self.reclaim(event);
                break;
            }
            match event {
                Event::Deliver {
                    conn,
                    sf,
                    to_client,
                    seg,
                } => {
                    let seg = self
                        .seg_slab
                        .take(seg)
                        .expect("deliver event holds a parked segment");
                    self.on_deliver(now, conn, sf, to_client, seg);
                }
                Event::Tick => self.on_tick(now),
                Event::TimerCheck => self.on_timer_check(now),
                Event::CellReady => {
                    self.on_cell_ready(now);
                    self.drain_all(now);
                }
            }
        }
        self.finish()
    }

    /// Return an unprocessed event's parked segment (if any) to the slab.
    fn reclaim(&mut self, event: Event) {
        if let Event::Deliver { seg, .. } = event {
            self.seg_slab
                .take(seg)
                .expect("queued deliver event holds a parked segment");
        }
    }

    /// Segment-slab allocation counters, consumed by the invariant battery
    /// as a structural leak oracle: at end of run every parked segment must
    /// have been taken exactly once (`live == 0 && double_frees == 0`).
    pub fn seg_slab_stats(&self) -> SegSlabStats {
        self.seg_slab.stats()
    }

    fn finish(mut self) -> RunResult {
        let end = self.queue.now();
        // Reclaim the segments of every deliver event still queued so the
        // slab's counters certify the take-exactly-once discipline. `end`
        // is captured first: popping advances the queue clock.
        while let Some((_, event)) = self.queue.pop() {
            self.reclaim(event);
        }
        // With every queued segment reclaimed the slab must balance; a
        // miss is a host bug, surfaced through the invariant pipeline.
        let slab = self.seg_slab.stats();
        self.telemetry.check_invariants(end, |obs| {
            obs.check_segment_slab(end, "host", slab.live, slab.double_frees)
        });
        // Close the final cellular-state segment for the breakdown.
        let final_snapshot = self.meter.snapshot();
        self.meter.update(end, final_snapshot);
        self.meter.export_metrics(end);
        if self.telemetry.enabled() {
            self.telemetry.with_metrics(|m| {
                m.gauge_set("rrc.promotions_total", self.rrc.promotions() as f64);
                for state in emptcp_phy::rrc::RrcState::ALL {
                    m.gauge_set(
                        &format!("rrc.residency.{}_s", state.name()),
                        self.rrc.residency_ns(state, end) as f64 / 1e9,
                    );
                }
            });
            let _ = self.telemetry.flush();
        }
        let (_, promo_energy_j, _, tail_energy_j) = self.meter.cell_state_energy_j();
        let completed = self.completed_at.is_some();
        let done_at = self.completed_at.unwrap_or(end);
        let download_time_s = done_at.as_secs_f64();
        let energy_j = self.meter.energy_j(end);
        let upload = matches!(self.scenario.workload, Workload::Upload { .. });
        let bytes_delivered: u64 = if upload {
            self.conns.iter().map(|c| c.server.bytes_delivered()).sum()
        } else {
            self.conns.iter().map(|c| c.client.bytes_delivered()).sum()
        };
        let by_iface = |iface: IfaceKind| -> u64 {
            self.conns
                .iter()
                .map(|c| {
                    if upload {
                        c.client.acked_by_iface(iface)
                    } else {
                        c.client.delivered_by_iface(iface)
                    }
                })
                .sum()
        };
        let wifi_bytes: u64 = by_iface(IfaceKind::Wifi);
        let cell_bytes: u64 = by_iface(self.scenario.cell_kind);
        let usage_switches = self
            .conns
            .iter()
            .filter_map(|c| c.engine.as_ref())
            .map(|e| e.switches())
            .sum();
        let retransmissions = self.conns.iter().map(|c| c.total_retransmissions()).sum();
        let mut recovery = RecoveryStats::default();
        for c in &self.conns {
            recovery.absorb(c.client.recovery_stats());
            recovery.absorb(c.server.recovery_stats());
        }
        let t = download_time_s.max(1e-9);
        RunResult {
            strategy: self.strategy.label().to_string(),
            scenario: self.scenario.name.clone(),
            completed,
            download_time_s,
            energy_j,
            energy_at_completion_j: if completed {
                self.energy_at_completion
            } else {
                energy_j
            },
            bytes_delivered,
            wifi_bytes,
            cell_bytes,
            joules_per_byte: if bytes_delivered > 0 {
                energy_j / bytes_delivered as f64
            } else {
                f64::INFINITY
            },
            promotions: self.rrc.promotions(),
            usage_switches,
            retransmissions,
            rebuffer_events: self.stream_misses,
            promo_energy_j,
            tail_energy_j,
            avg_wifi_mbps: wifi_bytes as f64 * 8.0 / t / 1e6,
            avg_cell_mbps: cell_bytes as f64 * 8.0 / t / 1e6,
            energy_trace: self.energy_trace.downsample(2000),
            wifi_thpt_trace: self.wifi_thpt_trace.downsample(2000),
            cell_thpt_trace: self.cell_thpt_trace.downsample(2000),
            wifi_capacity_trace: self.wifi_capacity_trace.downsample(2000),
            faults_injected: self.faults_applied,
            subflow_failures: recovery.subflow_failures,
            link_down_events: recovery.link_down_events,
            bytes_reinjected: recovery.bytes_reinjected,
            backup_promotions: recovery.backup_promotions,
            subflow_revivals: recovery.revivals,
            worst_recovery_latency_s: recovery
                .worst_recovery_latency()
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0),
            stuck_subflows: self
                .conns
                .iter()
                .flat_map(|c| c.client.subflows().iter().chain(c.server.subflows().iter()))
                .filter(|sf| sf.link_down)
                .count() as u64,
        }
    }
}

/// How the fault injector mutates this host. WiFi faults ride the same
/// machinery the scenario environments use (association state, effective
/// rate pushed each tick); cellular faults mutate the cellular path links
/// directly because nothing else touches them after construction.
///
/// `Rate(Some(0))` on either target is a *silent* blackhole — packets die
/// in the link but no link-down notification reaches the stack, so only
/// the consecutive-RTO failure detector can react. `IfaceDown` is the
/// *notified* variant: the link layer tells every subflow immediately.
impl FaultSurface for Simulation {
    fn set_iface_up(&mut self, now: SimTime, target: FaultTarget, up: bool) {
        match target {
            FaultTarget::Wifi => {
                // The association flip itself happens in `on_tick`, right
                // after the injector poll, composed with the scenario's own
                // outage windows.
                self.fault_wifi_down = !up;
            }
            FaultTarget::Cellular => {
                for i in 0..self.conns.len() {
                    if let Some(id) = self.conns[i].cell_sf {
                        self.conns[i].client.set_subflow_link_up(now, id, up);
                        self.conns[i].server.set_subflow_link_up(now, id, up);
                    }
                }
                let (down, up_rate) = if up { self.nominal_cell_rates } else { (0, 0) };
                self.cell_path.down_mut().set_rate_bps(now, down);
                self.cell_path.up_mut().set_rate_bps(now, up_rate);
            }
            // This host has no explicit core hop: a congested core is both
            // access paths failing at once.
            FaultTarget::Core => {
                self.set_iface_up(now, FaultTarget::Wifi, up);
                self.set_iface_up(now, FaultTarget::Cellular, up);
            }
        }
    }

    fn set_rate(&mut self, now: SimTime, target: FaultTarget, rate_bps: Option<u64>) {
        match target {
            // Applied in this tick's channel push, which runs right after
            // the injector poll.
            FaultTarget::Wifi => self.fault_wifi_rate = rate_bps,
            FaultTarget::Cellular => {
                let rate = rate_bps.unwrap_or(self.nominal_cell_rates.0);
                self.cell_path.down_mut().set_rate_bps(now, rate);
            }
            FaultTarget::Core => {
                self.set_rate(now, FaultTarget::Wifi, rate_bps);
                self.set_rate(now, FaultTarget::Cellular, rate_bps);
            }
        }
    }

    fn set_loss(&mut self, _now: SimTime, target: FaultTarget, model: Option<LossModel>) {
        match target {
            FaultTarget::Wifi => {
                self.fault_wifi_loss = model;
                match model {
                    Some(m) => self.wifi_path.down_mut().set_loss_model(m),
                    None => self
                        .wifi_path
                        .down_mut()
                        .set_loss_prob(self.wifi_channel.loss_prob()),
                }
            }
            FaultTarget::Cellular => match model {
                Some(m) => self.cell_path.down_mut().set_loss_model(m),
                None => self
                    .cell_path
                    .down_mut()
                    .set_loss_prob(self.nominal_cell_loss),
            },
            FaultTarget::Core => {
                self.set_loss(_now, FaultTarget::Wifi, model);
                self.set_loss(_now, FaultTarget::Cellular, model);
            }
        }
    }

    fn set_extra_delay(&mut self, _now: SimTime, target: FaultTarget, extra: Option<SimDuration>) {
        // The spike rides the downlink: one extra one-way delay is one
        // extra RTT contribution, which is what an RRC reconfiguration or
        // a congested AP queue looks like from the transport.
        if target == FaultTarget::Core {
            self.set_extra_delay(_now, FaultTarget::Wifi, extra);
            self.set_extra_delay(_now, FaultTarget::Cellular, extra);
            return;
        }
        let extra = extra.unwrap_or(SimDuration::ZERO);
        match target {
            FaultTarget::Wifi => self
                .wifi_path
                .down_mut()
                .set_prop_delay(self.nominal_wifi_prop + extra),
            FaultTarget::Cellular => self
                .cell_path
                .down_mut()
                .set_prop_delay(self.nominal_cell_prop + extra),
            FaultTarget::Core => unreachable!(),
        }
    }
}

/// Convenience: build and run in one call.
pub fn run(scenario: Scenario, strategy: Strategy, seed: u64) -> RunResult {
    Simulation::new(scenario, strategy, seed).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emptcp_workload::download::MB;

    fn quick_download(size: u64) -> Scenario {
        let mut s = Scenario::static_good_wifi();
        s.workload = Workload::Download { size };
        s
    }

    #[test]
    fn tcp_wifi_completes_small_download() {
        let r = run(quick_download(MB), Strategy::TcpWifi, 1);
        assert!(r.completed, "did not complete: {r:?}");
        assert_eq!(r.bytes_delivered, MB);
        assert_eq!(r.cell_bytes, 0);
        assert!(r.download_time_s > 0.5 && r.download_time_s < 10.0);
        assert!(r.energy_j > 0.0);
        assert_eq!(r.promotions, 0);
    }

    #[test]
    fn mptcp_uses_both_paths() {
        let r = run(quick_download(16 * MB), Strategy::Mptcp, 2);
        assert!(r.completed);
        assert!(r.wifi_bytes > 0);
        assert!(r.cell_bytes > 0, "LTE never used: {r:?}");
        assert_eq!(r.promotions, 1);
        // Both paths: faster than WiFi alone would be (11 Mbps).
        assert!(r.download_time_s < 16.0 * 8.0 / 11.0 * 1.2);
    }

    #[test]
    fn tcp_cellular_promotes_radio() {
        let r = run(quick_download(MB), Strategy::TcpCellular, 3);
        assert!(r.completed);
        assert_eq!(r.wifi_bytes, 0);
        assert_eq!(r.bytes_delivered, MB);
        assert_eq!(r.promotions, 1);
        // Fixed overhead: at least promotion+tail energy.
        assert!(r.energy_j > 11.0, "energy {j}", j = r.energy_j);
    }

    #[test]
    fn emptcp_avoids_cellular_on_good_wifi() {
        let r = run(quick_download(16 * MB), Strategy::emptcp_default(), 4);
        assert!(r.completed);
        assert_eq!(r.cell_bytes, 0, "eMPTCP woke LTE on good WiFi");
        assert_eq!(r.promotions, 0);
        // And beats MPTCP on energy (no LTE fixed costs).
        let m = run(quick_download(16 * MB), Strategy::Mptcp, 4);
        assert!(
            r.energy_j < m.energy_j * 0.8,
            "eMPTCP {e} vs MPTCP {me}",
            e = r.energy_j,
            me = m.energy_j
        );
    }

    #[test]
    fn emptcp_uses_both_on_bad_wifi() {
        let mut s = Scenario::static_bad_wifi();
        s.workload = Workload::Download { size: 8 * MB };
        let r = run(s, Strategy::emptcp_default(), 5);
        assert!(r.completed, "{r:?}");
        assert!(r.cell_bytes > 0, "eMPTCP never used LTE on bad WiFi");
        assert!(r.promotions >= 1);
    }

    #[test]
    fn wifi_first_ignores_cellular_while_wifi_up() {
        let r = run(quick_download(16 * MB), Strategy::WifiFirst, 6);
        assert!(r.completed);
        assert_eq!(r.cell_bytes, 0, "WiFi-First used LTE despite WiFi up");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run(quick_download(4 * MB), Strategy::Mptcp, 42);
        let b = run(quick_download(4 * MB), Strategy::Mptcp, 42);
        assert_eq!(a.download_time_s, b.download_time_s);
        assert_eq!(a.energy_j, b.energy_j);
        assert_eq!(a.wifi_bytes, b.wifi_bytes);
    }

    #[test]
    fn timed_bulk_stops_at_duration() {
        let mut s = Scenario::static_good_wifi();
        s.workload = Workload::TimedBulk {
            duration: SimDuration::from_secs(20),
        };
        let r = run(s, Strategy::TcpWifi, 7);
        assert!(r.completed);
        assert!((r.download_time_s - 20.0).abs() < 0.2, "{r:?}");
        assert!(
            r.bytes_delivered > 10 * MB,
            "moved {b}",
            b = r.bytes_delivered
        );
    }

    #[test]
    fn fixed_cost_breakdown_reported() {
        let r = run(quick_download(MB), Strategy::TcpCellular, 30);
        assert!(r.completed);
        // One promotion (~0.5 J) and one full tail (~11 J).
        assert!(
            (0.3..1.0).contains(&r.promo_energy_j),
            "{}",
            r.promo_energy_j
        );
        assert!(
            (8.0..12.0).contains(&r.tail_energy_j),
            "{}",
            r.tail_energy_j
        );
        let w = run(quick_download(MB), Strategy::TcpWifi, 30);
        assert_eq!(w.promo_energy_j, 0.0);
        assert_eq!(w.tail_energy_j, 0.0);
    }

    #[test]
    fn upload_completes_and_counts_sender_side() {
        let mut s = Scenario::upload();
        s.workload = Workload::Upload { size: 4 * MB };
        let r = run(s, Strategy::TcpWifi, 20);
        assert!(r.completed, "{r:?}");
        assert_eq!(r.bytes_delivered, 4 * MB);
        assert_eq!(r.wifi_bytes, 4 * MB);
        assert_eq!(r.cell_bytes, 0);
    }

    #[test]
    fn upload_emptcp_stays_wifi_only_on_good_wifi() {
        let mut s = Scenario::upload();
        s.workload = Workload::Upload { size: 8 * MB };
        let r = run(s, Strategy::emptcp_default(), 21);
        assert!(r.completed, "{r:?}");
        assert_eq!(r.promotions, 0, "LTE woken for a WiFi-friendly upload");
    }

    #[test]
    fn streaming_counts_rebuffers() {
        // Shrink the stream for test speed: 20 chunks over 40 s.
        let mut s = Scenario::streaming();
        s.workload = Workload::Streaming {
            chunk_bytes: 1 << 20,
            interval: SimDuration::from_secs(2),
            duration: SimDuration::from_secs(40),
        };
        let good = run(s.clone(), Strategy::Mptcp, 22);
        assert!(good.completed, "{good:?}");
        assert!(good.bytes_delivered >= 19 << 20);
        // MPTCP with both paths should stream nearly hitch-free.
        assert!(good.rebuffer_events <= 3, "{}", good.rebuffer_events);
        // Single-path WiFi over the modulated AP misses deadlines in the
        // low-bandwidth phases (1 MB per 2 s needs 4 Mbps; the low band
        // offers <= 1 Mbps).
        let tcp = run(s, Strategy::TcpWifi, 22);
        assert!(
            tcp.rebuffer_events > good.rebuffer_events,
            "tcp {} vs mptcp {}",
            tcp.rebuffer_events,
            good.rebuffer_events
        );
    }

    #[test]
    fn web_page_fetches_everything() {
        let s = Scenario::web_browsing();
        let r = run(s, Strategy::TcpWifi, 8);
        assert!(r.completed, "{r:?}");
        assert!(r.bytes_delivered > 300_000);
        assert!(r.download_time_s < 60.0);
    }
}
