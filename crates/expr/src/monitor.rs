//! The `monitor` subcommand: live fleet observability and trace replay.
//!
//! Two entry points sharing one pipeline:
//!
//! * [`run_live`] (`repro monitor`) — runs a contended fleet with the
//!   streaming [`PipelineSink`] tapped into its telemetry, optionally
//!   teeing the same events into a JSONL recording, and drives the
//!   redraw-in-place terminal dashboard while the simulation executes.
//! * [`run_replay`] (`simulate monitor --replay <trace.jsonl>`) — feeds a
//!   recorded trace through the identical pipeline and renders the final
//!   dashboard and/or exports.
//!
//! Determinism contract: for the same seed, the exports written by a live
//! run and by a replay of the recording that run produced are
//! byte-identical (`tests/monitor.rs` pins this; CI replays twice and
//! diffs). The dashboard is display-only — its wall-clock frame throttling
//! never influences what is exported.

use emptcp_net::{FleetConfig, FleetSim};
use emptcp_obsv::{
    export_csv, export_json, render, Dashboard, Pipeline, PipelineConfig, PipelineSink,
};
use emptcp_sim::SimDuration;
use emptcp_telemetry::{JsonlSink, TeeSink, Telemetry, TraceSink};
use std::io::{BufReader, IsTerminal, Write as _};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Aggregation knobs shared by live and replay modes.
#[derive(Debug, Clone, Copy)]
pub struct PipelineKnobs {
    /// Bin width in milliseconds.
    pub bin_ms: u64,
    /// Dashboard rolling-window length, in bins.
    pub window_bins: usize,
    /// Rows in the hot-client/hot-port tables.
    pub top_k: usize,
}

impl Default for PipelineKnobs {
    fn default() -> Self {
        let d = PipelineConfig::default();
        PipelineKnobs {
            bin_ms: d.bin.as_nanos() / 1_000_000,
            window_bins: d.window_bins,
            top_k: d.top_k,
        }
    }
}

impl PipelineKnobs {
    fn config(&self) -> PipelineConfig {
        PipelineConfig {
            bin: SimDuration::from_millis(self.bin_ms.max(1)),
            window_bins: self.window_bins.max(1),
            top_k: self.top_k.max(1),
        }
    }
}

/// Options for `repro monitor`.
#[derive(Debug, Clone)]
pub struct LiveOptions {
    /// Fleet size (mixed TCP/MPTCP clients behind the shared bottleneck).
    pub clients: usize,
    /// Simulation seed; same seed ⇒ byte-identical trace and exports.
    pub seed: u64,
    /// Simulated run length in seconds.
    pub duration_s: f64,
    /// Also record the trace as JSONL for later replay.
    pub record: Option<PathBuf>,
    /// Write the time-series JSON export here.
    pub export_json: Option<PathBuf>,
    /// Write the per-bin CSV export here.
    pub export_csv: Option<PathBuf>,
    /// Suppress the dashboard (exports still written).
    pub quiet: bool,
    /// Aggregation parameters.
    pub knobs: PipelineKnobs,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            clients: 16,
            seed: 42,
            duration_s: 4.0,
            record: None,
            export_json: None,
            export_csv: None,
            quiet: false,
            knobs: PipelineKnobs::default(),
        }
    }
}

/// Options for `repro monitor --follow`.
#[derive(Debug, Clone)]
pub struct FollowOptions {
    /// The JSONL trace to tail — typically one a `simulate serve` or
    /// `simulate connect` process is writing right now.
    pub trace: PathBuf,
    /// Exit after this much wall time without new trace data. A finished
    /// file is followed to EOF and then times out normally.
    pub idle_timeout_s: f64,
    /// Write the time-series JSON export here.
    pub export_json: Option<PathBuf>,
    /// Write the per-bin CSV export here.
    pub export_csv: Option<PathBuf>,
    /// Suppress the dashboard (exports still written).
    pub quiet: bool,
    /// Aggregation parameters.
    pub knobs: PipelineKnobs,
}

/// Options for `simulate monitor --replay`.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// The recorded JSONL trace to replay.
    pub trace: PathBuf,
    /// Machine mode: no dashboard, fail (exit 1) on any malformed line.
    pub check: bool,
    /// Write the time-series JSON export here.
    pub export_json: Option<PathBuf>,
    /// Write the per-bin CSV export here.
    pub export_csv: Option<PathBuf>,
    /// Suppress the final dashboard frame (exports still written).
    pub quiet: bool,
    /// Aggregation parameters.
    pub knobs: PipelineKnobs,
}

fn write_exports(
    pipeline: &Pipeline,
    json: &Option<PathBuf>,
    csv: &Option<PathBuf>,
) -> std::io::Result<()> {
    if let Some(path) = json {
        std::fs::write(path, export_json(pipeline))?;
    }
    if let Some(path) = csv {
        std::fs::write(path, export_csv(pipeline))?;
    }
    Ok(())
}

/// Run a contended fleet live with the streaming pipeline tapped in.
/// Returns the final pipeline state (exports, if requested, are written
/// before returning).
pub fn run_live(opts: &LiveOptions) -> std::io::Result<Pipeline> {
    let pipeline = Arc::new(Mutex::new(Pipeline::new(opts.knobs.config())));

    // Live dashboard: redraw at most every 50 ms of wall time, triggered
    // by aggregation-bin advances. Display only — skipping frames cannot
    // change pipeline state.
    let want_dash = !opts.quiet && std::io::stdout().is_terminal();
    let dash = Arc::new(Mutex::new((
        Dashboard::new(),
        std::time::Instant::now(),
        true,
    )));
    let mut sink = PipelineSink::new(Arc::clone(&pipeline));
    if want_dash {
        let dash = Arc::clone(&dash);
        sink = sink.with_observer(Box::new(move |p| {
            let mut guard = dash.lock().expect("dashboard poisoned");
            let (dashboard, last_frame, first) = &mut *guard;
            if *first || last_frame.elapsed().as_millis() >= 50 {
                *first = false;
                *last_frame = std::time::Instant::now();
                let _ = dashboard.draw(&mut std::io::stdout(), &render(p));
            }
        }));
    }

    let tap: Box<dyn TraceSink> = match &opts.record {
        Some(path) => Box::new(TeeSink::new(vec![
            Box::new(JsonlSink::new(std::fs::File::create(path)?)),
            Box::new(sink),
        ])),
        None => Box::new(sink),
    };
    let telemetry = Telemetry::builder().invariants(true).sink(tap).build();

    let mut cfg = FleetConfig::contended(opts.clients, opts.seed);
    cfg.duration = SimDuration::from_nanos((opts.duration_s * 1e9) as u64);
    let mut sim = FleetSim::new_with_telemetry(cfg, telemetry.clone());
    let report = sim.run();
    telemetry.flush()?;
    // Release every handle to the tap so the pipeline Arc unwraps cleanly.
    drop(sim);
    drop(telemetry);

    let pipeline = Arc::try_unwrap(pipeline)
        .map(|m| m.into_inner().expect("pipeline poisoned"))
        .unwrap_or_else(|arc| arc.lock().expect("pipeline poisoned").clone());

    if !opts.quiet {
        // Final frame: on a TTY it overdraws the last live frame; on a
        // plain pipe it is the only frame printed.
        let mut stdout = std::io::stdout();
        if want_dash {
            // Same Dashboard the observer drew with, so the final frame
            // overdraws the last live frame instead of appending.
            let mut guard = dash.lock().expect("dashboard poisoned");
            guard.0.draw(&mut stdout, &render(&pipeline))?;
        } else {
            stdout.write_all(render(&pipeline).as_bytes())?;
        }
        writeln!(
            stdout,
            "fleet: {} clients · mean goodput mptcp={:.2} / tcp={:.2} Mbps · Jain={:.3}",
            report.clients, report.mptcp_mean_mbps, report.tcp_mean_mbps, report.jain_index
        )?;
    }
    write_exports(&pipeline, &opts.export_json, &opts.export_csv)?;
    Ok(pipeline)
}

/// Tail a JSONL trace as it is being written, dashboarding the events as
/// they land — this is how `repro monitor --follow` observes a live
/// serve/connect transfer from a third process. Works equally on a
/// finished file (reads to EOF, then times out idle). Returns the process
/// exit code (non-zero when malformed lines were seen).
pub fn run_follow(opts: &FollowOptions) -> std::io::Result<i32> {
    use emptcp_telemetry::parse_jsonl_line;
    use std::io::BufRead;
    use std::time::{Duration, Instant};

    let idle = Duration::from_nanos((opts.idle_timeout_s.max(0.05) * 1e9) as u64);
    let poll = Duration::from_millis(25);

    // The producer may not have created the file yet (serve starting up);
    // waiting for it counts against the same idle budget.
    let start = Instant::now();
    let file = loop {
        match std::fs::File::open(&opts.trace) {
            Ok(f) => break f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && start.elapsed() < idle => {
                std::thread::sleep(poll);
            }
            Err(e) => return Err(e),
        }
    };

    let mut pipeline = Pipeline::new(opts.knobs.config());
    let mut reader = BufReader::new(file);
    let mut line = String::new();
    let mut events = 0u64;
    let mut malformed = 0u64;
    let mut last_data = Instant::now();

    let want_dash = !opts.quiet && std::io::stdout().is_terminal();
    let mut dashboard = Dashboard::new();
    let mut last_frame = Instant::now() - Duration::from_secs(1);

    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            if last_data.elapsed() >= idle {
                break;
            }
            std::thread::sleep(poll);
            continue;
        }
        if !line.ends_with('\n') {
            // Caught the producer mid-line: rewind and let it finish.
            reader.seek_relative(-(n as i64))?;
            std::thread::sleep(poll);
            continue;
        }
        last_data = Instant::now();
        match parse_jsonl_line(line.trim_end()) {
            Ok((t, event)) => {
                pipeline.ingest(t, &event);
                events += 1;
            }
            Err(err) => {
                malformed += 1;
                eprintln!("{}: {err}", opts.trace.display());
            }
        }
        if want_dash && last_frame.elapsed().as_millis() >= 50 {
            last_frame = Instant::now();
            let _ = dashboard.draw(&mut std::io::stdout(), &render(&pipeline));
        }
    }

    let mut stdout = std::io::stdout();
    if !opts.quiet {
        if want_dash {
            dashboard.draw(&mut stdout, &render(&pipeline))?;
        } else {
            stdout.write_all(render(&pipeline).as_bytes())?;
        }
        writeln!(
            stdout,
            "follow: {} event(s) from {} ({} malformed)",
            events,
            opts.trace.display(),
            malformed
        )?;
    }
    write_exports(&pipeline, &opts.export_json, &opts.export_csv)?;
    Ok(if malformed > 0 { 1 } else { 0 })
}

/// Replay a recorded JSONL trace through the pipeline. Returns the process
/// exit code (non-zero when `--check` finds malformed lines).
pub fn run_replay(opts: &ReplayOptions) -> std::io::Result<i32> {
    let mut pipeline = Pipeline::new(opts.knobs.config());
    let file = std::fs::File::open(&opts.trace)?;
    let stats = emptcp_obsv::replay(BufReader::new(file), &mut pipeline)?;

    if !stats.is_clean() {
        for (line, err) in &stats.errors {
            eprintln!("{}:{line}: {err}", opts.trace.display());
        }
        eprintln!(
            "{}: {} malformed line(s), {} events ingested",
            opts.trace.display(),
            stats.errors.len(),
            stats.events
        );
        if opts.check {
            return Ok(1);
        }
    }
    if !opts.quiet && !opts.check {
        std::io::stdout().write_all(render(&pipeline).as_bytes())?;
    }
    write_exports(&pipeline, &opts.export_json, &opts.export_csv)?;
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_round_trip_defaults() {
        let knobs = PipelineKnobs::default();
        let cfg = knobs.config();
        let d = PipelineConfig::default();
        assert_eq!(cfg.bin.as_nanos(), d.bin.as_nanos());
        assert_eq!(cfg.window_bins, d.window_bins);
        assert_eq!(cfg.top_k, d.top_k);
    }

    #[test]
    fn zero_knobs_are_clamped() {
        let knobs = PipelineKnobs {
            bin_ms: 0,
            window_bins: 0,
            top_k: 0,
        };
        let cfg = knobs.config();
        assert_eq!(cfg.bin.as_nanos(), 1_000_000);
        assert_eq!(cfg.window_bins, 1);
        assert_eq!(cfg.top_k, 1);
    }
}
