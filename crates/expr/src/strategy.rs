//! The transport strategies compared throughout the evaluation.

use emptcp::EmptcpConfig;
use serde::{Deserialize, Serialize};

/// Which stack the device runs for a given experiment.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum Strategy {
    /// Standard MPTCP: WiFi + cellular subflows from the start, minRTT
    /// scheduler, LIA coupling.
    Mptcp,
    /// The paper's contribution, with its §4.1 parameters.
    Emptcp(EmptcpConfig),
    /// Single-path TCP over WiFi.
    TcpWifi,
    /// Single-path TCP over the cellular interface.
    TcpCellular,
    /// Raiciu et al.'s "MPTCP with WiFi-First": both subflows open, the
    /// cellular one in backup mode from the start (§4.6).
    WifiFirst,
    /// Pluntke et al.'s MDP scheduler (§4.6), applying a precomputed
    /// policy at one-second epochs.
    MdpScheduler,
    /// Paasch et al.'s Single-Path mode (§2.1/§4.6): one subflow at a
    /// time, a new one established only after the current interface goes
    /// down.
    SinglePath,
}

impl Strategy {
    /// The default eMPTCP configuration as a strategy.
    pub fn emptcp_default() -> Strategy {
        Strategy::Emptcp(EmptcpConfig::default())
    }

    /// Label used in tables and figures.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Mptcp => "MPTCP",
            Strategy::Emptcp(_) => "eMPTCP",
            Strategy::TcpWifi => "TCP over WiFi",
            Strategy::TcpCellular => "TCP over LTE",
            Strategy::WifiFirst => "MPTCP WiFi-First",
            Strategy::MdpScheduler => "MDP scheduler",
            Strategy::SinglePath => "Single-Path mode",
        }
    }

    /// Does this strategy ever open a cellular subflow at connection start?
    pub fn opens_cellular_immediately(&self) -> bool {
        matches!(
            self,
            Strategy::Mptcp | Strategy::TcpCellular | Strategy::WifiFirst
        )
    }

    /// Does this strategy open a WiFi subflow?
    pub fn uses_wifi(&self) -> bool {
        !matches!(self, Strategy::TcpCellular)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let all = [
            Strategy::Mptcp,
            Strategy::emptcp_default(),
            Strategy::TcpWifi,
            Strategy::TcpCellular,
            Strategy::WifiFirst,
            Strategy::MdpScheduler,
            Strategy::SinglePath,
        ];
        let mut labels: Vec<_> = all.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn cellular_opening_policy() {
        assert!(Strategy::Mptcp.opens_cellular_immediately());
        assert!(Strategy::WifiFirst.opens_cellular_immediately());
        assert!(!Strategy::emptcp_default().opens_cellular_immediately());
        assert!(!Strategy::TcpWifi.opens_cellular_immediately());
        assert!(Strategy::TcpWifi.uses_wifi());
        assert!(!Strategy::TcpCellular.uses_wifi());
    }
}
