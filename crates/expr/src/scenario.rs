//! Experiment environments (§4 and §5).
//!
//! A [`Scenario`] fully describes the world outside the transport stack:
//! link capacities and RTTs, how the WiFi capacity evolves (static,
//! modulated, contended, or mobility-driven), the workload, the device
//! profile, and the simulation horizon. Strategies are orthogonal: every
//! figure runs the same scenario under several strategies.

use emptcp_energy::DeviceProfile;
use emptcp_phy::mobility::{MobilityModel, Position, RateAdaptation, WaypointRoute};
use emptcp_phy::IfaceKind;
use emptcp_sim::{SimDuration, SimTime};
use emptcp_workload::download::MB;
use serde::{Deserialize, Serialize};

/// How the WiFi capacity behaves over the run.
#[derive(Clone, Debug)]
pub enum WifiEnvironment {
    /// Fixed nominal capacity.
    Static {
        /// AP goodput, bps.
        bps: u64,
    },
    /// §4.3: two-state exponential on-off modulation of the AP capacity.
    Modulated {
        /// Mean holding time per state, seconds.
        mean_hold_s: f64,
        /// Start in the high state?
        start_high: bool,
    },
    /// §4.4: static capacity plus `n` on-off interfering stations.
    Contended {
        /// AP goodput with an idle channel, bps.
        bps: u64,
        /// Number of interfering stations.
        n: usize,
        /// Their off-state rate λ_off (λ_on is fixed at 0.05).
        lambda_off: f64,
    },
    /// §4.5: capacity follows the device's position along a route.
    Mobile {
        /// The walk (route + AP position + rate adaptation).
        model: MobilityModel,
    },
    /// A handover scenario: static capacity, but the WiFi *association* is
    /// lost for a window (AP reboot, walking past coverage). This is the
    /// case Single-Path mode and WiFi-First were designed for (§4.6).
    StaticWithOutage {
        /// AP goodput while associated, bps.
        bps: u64,
        /// Association lost at this time...
        outage_start: SimTime,
        /// ...and regained at this time.
        outage_end: SimTime,
    },
}

/// What the device downloads.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum Workload {
    /// One file of this many bytes; the run ends at delivery (plus radio
    /// drain).
    Download {
        /// Transfer size in bytes.
        size: u64,
    },
    /// Download as much as possible for a fixed duration (§4.5 measures
    /// the amount moved in 250 s).
    TimedBulk {
        /// Measurement window.
        duration: SimDuration,
    },
    /// §5.4: a 107-object page over six parallel connections.
    WebPage,
    /// Extension (paper §7 future work): the device uploads `size` bytes.
    Upload {
        /// Bytes the client sends to the server.
        size: u64,
    },
    /// Extension (paper §7 future work): chunked video streaming — the
    /// server pushes one `chunk_bytes` segment every `interval` for
    /// `duration`; a chunk arriving after the next one is due counts as a
    /// rebuffer event.
    Streaming {
        /// Bytes per video chunk.
        chunk_bytes: u64,
        /// Playback interval between chunks.
        interval: SimDuration,
        /// Total stream length.
        duration: SimDuration,
    },
}

/// A complete experiment environment.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable name (appears in result tables).
    pub name: String,
    /// WiFi behaviour.
    pub wifi: WifiEnvironment,
    /// Cellular downlink capacity, bps.
    pub cell_bps: u64,
    /// Which cellular radio the device uses.
    pub cell_kind: IfaceKind,
    /// Base round-trip to the server over WiFi.
    pub wifi_rtt: SimDuration,
    /// Base round-trip to the server over cellular.
    pub cell_rtt: SimDuration,
    /// The workload.
    pub workload: Workload,
    /// Device energy profile.
    pub profile: DeviceProfile,
    /// Constant platform power included in totals (0 = network-only, the
    /// §4/§5 file transfers; the §5.4 web case uses a whole-device value).
    pub baseline_w: f64,
    /// Absolute simulation cut-off (safety net for degenerate runs).
    pub horizon: SimTime,
}

impl Scenario {
    fn base(name: &str, wifi: WifiEnvironment, workload: Workload) -> Scenario {
        Scenario {
            name: name.to_string(),
            wifi,
            cell_bps: 12_000_000,
            cell_kind: IfaceKind::CellularLte,
            wifi_rtt: SimDuration::from_millis(25),
            cell_rtt: SimDuration::from_millis(60),
            workload,
            profile: DeviceProfile::galaxy_s3(),
            baseline_w: 0.0,
            horizon: SimTime::from_secs(6_000),
        }
    }

    /// §4.2, high WiFi bandwidth (>10 Mbps), 256 MB download.
    pub fn static_good_wifi() -> Scenario {
        Scenario::base(
            "static-good-wifi",
            WifiEnvironment::Static { bps: 11_000_000 },
            Workload::Download { size: 256 * MB },
        )
    }

    /// §4.2, low WiFi bandwidth (<1 Mbps), 256 MB download.
    pub fn static_bad_wifi() -> Scenario {
        let mut s = Scenario::base(
            "static-bad-wifi",
            WifiEnvironment::Static { bps: 800_000 },
            Workload::Download { size: 256 * MB },
        );
        s.horizon = SimTime::from_secs(12_000);
        s
    }

    /// §4.3: random WiFi bandwidth changes (mean 40 s holding times).
    pub fn bandwidth_changes() -> Scenario {
        let mut s = Scenario::base(
            "bandwidth-changes",
            WifiEnvironment::Modulated {
                mean_hold_s: 40.0,
                start_high: false,
            },
            Workload::Download { size: 256 * MB },
        );
        s.horizon = SimTime::from_secs(12_000);
        s
    }

    /// §4.4: background traffic with `n` interferers and the given λ_off.
    pub fn background_traffic(n: usize, lambda_off: f64) -> Scenario {
        let mut s = Scenario::base(
            &format!("background-n{n}-loff{lambda_off}"),
            WifiEnvironment::Contended {
                bps: 12_000_000,
                n,
                lambda_off,
            },
            Workload::Download { size: 256 * MB },
        );
        s.horizon = SimTime::from_secs(12_000);
        s
    }

    /// §4.5: the mobile walk (Fig 11), 250 s of timed bulk transfer.
    pub fn mobility() -> Scenario {
        Scenario::base(
            "mobility",
            WifiEnvironment::Mobile {
                model: Scenario::umass_walk(),
            },
            Workload::TimedBulk {
                duration: SimDuration::from_secs(250),
            },
        )
    }

    /// The Fig 11 walk, synthesized: start near the AP, walk out of range
    /// (~25–40 s), come back within range, linger at medium distance, leave
    /// again, and return by 250 s.
    pub fn umass_walk() -> MobilityModel {
        let s = SimTime::from_secs;
        let p = Position::new;
        let route = WaypointRoute::new(vec![
            (s(0), p(6.0, 0.0)),
            (s(20), p(18.0, 0.0)),
            (s(25), p(40.0, 10.0)),
            (s(32), p(58.0, 20.0)), // out of usable range
            (s(40), p(42.0, 8.0)),
            (s(60), p(15.0, 2.0)),
            (s(110), p(10.0, 0.0)),
            (s(140), p(30.0, 6.0)),
            (s(165), p(52.0, 18.0)), // out again
            (s(185), p(34.0, 8.0)),
            (s(215), p(14.0, 2.0)),
            (s(250), p(7.0, 0.0)),
        ]);
        MobilityModel::new(route, p(0.0, 0.0), RateAdaptation::ieee80211g())
    }

    /// Extension experiment (paper §7 future work): a 64 MB upload from
    /// the device over good WiFi.
    pub fn upload() -> Scenario {
        Scenario::base(
            "upload",
            WifiEnvironment::Static { bps: 11_000_000 },
            Workload::Upload { size: 64 * MB },
        )
    }

    /// Extension experiment (paper §7 future work): 2 Mbps-equivalent video
    /// streaming (1 MB chunks every 4 s) for 200 s over modest WiFi.
    pub fn streaming() -> Scenario {
        let mut s = Scenario::base(
            "streaming",
            WifiEnvironment::Modulated {
                mean_hold_s: 40.0,
                start_high: true,
            },
            Workload::Streaming {
                chunk_bytes: MB,
                interval: SimDuration::from_secs(4),
                duration: SimDuration::from_secs(200),
            },
        );
        s.horizon = SimTime::from_secs(600);
        s
    }

    /// Extension experiment: a 30 s WiFi association outage in the middle
    /// of a bulk download — the handover case §4.6's related approaches
    /// (Single-Path mode, WiFi-First) target.
    pub fn wifi_outage() -> Scenario {
        let mut s = Scenario::base(
            "wifi-outage",
            WifiEnvironment::StaticWithOutage {
                bps: 11_000_000,
                outage_start: SimTime::from_secs(20),
                outage_end: SimTime::from_secs(50),
            },
            Workload::Download { size: 64 * MB },
        );
        s.horizon = SimTime::from_secs(2_000);
        s
    }

    /// §5.4: the web-browsing case study (good WiFi, good LTE), with a
    /// whole-device baseline power since the paper's totals include the
    /// browser application.
    pub fn web_browsing() -> Scenario {
        let mut s = Scenario::base(
            "web-browsing",
            WifiEnvironment::Static { bps: 25_000_000 },
            Workload::WebPage,
        );
        s.cell_bps = 10_000_000;
        // Department building to the WDC server.
        s.wifi_rtt = SimDuration::from_millis(40);
        s.cell_rtt = SimDuration::from_millis(80);
        s.baseline_w = 1.0;
        s.horizon = SimTime::from_secs(300);
        s
    }

    /// A wild-study configuration: capacities and RTTs drawn by
    /// [`crate::wild`], download of `size` bytes.
    pub fn wild(
        name: &str,
        wifi_bps: u64,
        cell_bps: u64,
        wifi_rtt: SimDuration,
        cell_rtt: SimDuration,
        size: u64,
    ) -> Scenario {
        let mut s = Scenario::base(
            name,
            WifiEnvironment::Static { bps: wifi_bps },
            Workload::Download { size },
        );
        s.cell_bps = cell_bps;
        s.wifi_rtt = wifi_rtt;
        s.cell_rtt = cell_rtt;
        s.horizon = SimTime::from_secs(3_000);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_scenarios_construct() {
        for s in [
            Scenario::static_good_wifi(),
            Scenario::static_bad_wifi(),
            Scenario::bandwidth_changes(),
            Scenario::background_traffic(2, 0.025),
            Scenario::mobility(),
            Scenario::web_browsing(),
            Scenario::wifi_outage(),
        ] {
            assert!(!s.name.is_empty());
            assert!(s.horizon > SimTime::ZERO);
        }
    }

    #[test]
    fn umass_walk_leaves_and_returns() {
        let walk = Scenario::umass_walk();
        // In range at the start...
        assert!(walk.in_usable_range(SimTime::from_secs(0)));
        // ...out of range around 32 s (the paper's 25–40 s window)...
        assert!(!walk.in_usable_range(SimTime::from_secs(32)));
        // ...back in range by 60 s...
        assert!(walk.in_usable_range(SimTime::from_secs(60)));
        // ...out again around 165 s...
        assert!(!walk.in_usable_range(SimTime::from_secs(165)));
        // ...and home at the end.
        assert!(walk.in_usable_range(SimTime::from_secs(250)));
        assert_eq!(walk.end_time(), SimTime::from_secs(250));
    }

    #[test]
    fn wild_scenario_applies_parameters() {
        let s = Scenario::wild(
            "wild-test",
            5_000_000,
            9_000_000,
            SimDuration::from_millis(95),
            SimDuration::from_millis(140),
            16 * MB,
        );
        assert_eq!(s.cell_bps, 9_000_000);
        assert_eq!(s.wifi_rtt, SimDuration::from_millis(95));
        match s.workload {
            Workload::Download { size } => assert_eq!(size, 16 * MB),
            _ => panic!("wrong workload"),
        }
    }
}
