//! A deterministic work-stealing job runner for the experiment harness.
//!
//! `repro all` fans ~30 exhibits — and the individual points inside
//! sweep-style exhibits — out across a small pool of worker threads. The
//! design constraints, in order:
//!
//! 1. **Determinism.** Results must be byte-identical to a serial run.
//!    The runner guarantees this structurally: jobs carry their own seeds
//!    (derived from the job *index*, never from execution order), results
//!    land in index-addressed slots, and nothing observable depends on
//!    which thread ran what when.
//! 2. **Nesting.** Exhibits spawn sweeps which spawn repeated runs. A
//!    scope waiting for its jobs *helps*: it executes queued work instead
//!    of blocking, so nested fan-out can never deadlock the pool and
//!    `jobs = 1` degenerates to a plain serial loop on the calling thread.
//! 3. **Work stealing.** Each worker owns a deque; jobs spawned from a
//!    worker go to its own deque (LIFO for locality), idle workers steal
//!    from the shared injector and then from peers (FIFO).
//!
//! The pool is addressed through a thread-local *current runner*
//! ([`Runner::install`]), inherited by worker threads, so deeply nested
//! library code ([`crate::figures::repeat_runs`], the sweep loops) finds
//! the pool without threading a handle through every signature. Telemetry
//! is propagated the same way: [`Scope::spawn`] captures the spawner's
//! effective pipeline and installs it around the job body, so per-exhibit
//! metrics stay attributed under parallel execution.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send>;

struct PoolShared {
    /// Jobs injected from outside the pool (scope owners on non-worker
    /// threads). Drained FIFO.
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker: owner pushes/pops the back (LIFO), thieves
    /// steal from the front (FIFO).
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Sleep coordination: any push and any job completion notifies.
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    /// Pop a job: own deque first (LIFO), then the injector, then steal
    /// from peers (FIFO). `me` is the calling worker's index, if any.
    ///
    /// Workers drain the injector FIFO (oldest top-level job first). A
    /// non-worker scope driver pops the injector LIFO instead: its own
    /// nested spawns are the newest entries, and preferring them keeps a
    /// nested scope from burrowing into *other* top-level jobs while its
    /// sub-jobs sit runnable behind them.
    fn pop(&self, me: Option<usize>) -> Option<Job> {
        if let Some(i) = me {
            if let Some(job) = self.locals[i].lock().expect("deque poisoned").pop_back() {
                return Some(job);
            }
        }
        let injected = {
            let mut injector = self.injector.lock().expect("injector poisoned");
            match me {
                Some(_) => injector.pop_front(),
                None => injector.pop_back(),
            }
        };
        if let Some(job) = injected {
            return Some(job);
        }
        let n = self.locals.len();
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = self.locals[victim]
                .lock()
                .expect("deque poisoned")
                .pop_front()
            {
                return Some(job);
            }
        }
        None
    }

    /// Make a job runnable and wake sleepers. Spawns from a worker thread
    /// of this pool go to that worker's own deque; everything else goes to
    /// the injector.
    fn push(&self, me: Option<usize>, job: Job) {
        match me {
            Some(i) => self.locals[i]
                .lock()
                .expect("deque poisoned")
                .push_back(job),
            None => self
                .injector
                .lock()
                .expect("injector poisoned")
                .push_back(job),
        }
        let _guard = self.sleep.lock().expect("sleep lock poisoned");
        self.wake.notify_all();
    }

    fn notify_all(&self) {
        let _guard = self.sleep.lock().expect("sleep lock poisoned");
        self.wake.notify_all();
    }
}

struct PoolInner {
    shared: Arc<PoolShared>,
    /// Total parallelism including the thread driving a scope.
    jobs: usize,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify_all();
        for handle in self.workers.lock().expect("workers poisoned").drain(..) {
            let _ = handle.join();
        }
    }
}

/// Handle to a job pool. Clones share the pool; dropping the last handle
/// shuts the workers down.
#[derive(Clone)]
pub struct Runner {
    inner: Arc<PoolInner>,
}

thread_local! {
    /// The worker identity of this thread: (pool it belongs to, index).
    static WORKER: std::cell::RefCell<Option<(Arc<PoolShared>, usize)>> =
        const { std::cell::RefCell::new(None) };
    /// The runner nested library code should fan out through.
    static CURRENT: std::cell::RefCell<Option<Runner>> = const { std::cell::RefCell::new(None) };
}

impl Runner {
    /// A pool with total parallelism `jobs` (clamped to at least 1).
    /// `jobs - 1` worker threads are spawned; the thread driving a scope
    /// contributes the remaining unit by helping, so `Runner::new(1)`
    /// spawns no threads at all and executes every job inline, in spawn
    /// order, on the calling thread.
    pub fn new(jobs: usize) -> Runner {
        let jobs = jobs.max(1);
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..jobs.saturating_sub(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let inner = Arc::new(PoolInner {
            shared: shared.clone(),
            jobs,
            workers: Mutex::new(Vec::new()),
        });
        let runner = Runner { inner };
        let mut handles = Vec::new();
        for index in 0..jobs.saturating_sub(1) {
            let shared = shared.clone();
            let for_current = runner.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("expr-worker-{index}"))
                    .spawn(move || worker_main(shared, index, for_current))
                    .expect("spawning worker thread"),
            );
        }
        *runner.inner.workers.lock().expect("workers poisoned") = handles;
        runner
    }

    /// A serial pool (`jobs = 1`).
    pub fn serial() -> Runner {
        Runner::new(1)
    }

    /// Total parallelism this pool was built with.
    pub fn jobs(&self) -> usize {
        self.inner.jobs
    }

    /// Run `f` with this runner installed as the thread's current runner
    /// (restoring the previous one afterwards), so nested library code
    /// picks it up through [`current`].
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(self.clone()));
        let _restore = RestoreCurrent(prev);
        f()
    }

    /// Execute jobs `0..n` and collect their results in index order. The
    /// result is identical for any pool size: seeding and output position
    /// depend only on the index.
    pub fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
        self.scope(|scope| {
            for (index, slot) in slots.iter_mut().enumerate() {
                let f = &f;
                scope.spawn(move || {
                    *slot = Some(f(index));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("job completed"))
            .collect()
    }

    /// Open a scope: `f` may spawn borrowing jobs; every spawned job is
    /// guaranteed to have finished when `scope` returns. While waiting,
    /// the calling thread executes queued jobs itself (help-first), so
    /// scopes nest freely and a 1-job pool is a serial loop. The first
    /// job panic (or a panic in `f`) is resumed on the caller.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
        });
        let scope = Scope {
            runner: self,
            state: state.clone(),
            _scope: PhantomData,
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Help until every job spawned into this scope has completed —
        // even if `f` itself panicked, borrowed jobs must not outlive it.
        self.help_until(&state);
        if let Some(payload) = state.panic.lock().expect("panic slot poisoned").take() {
            resume_unwind(payload);
        }
        match result {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Execute queued jobs (any scope's — help-first scheduling) until
    /// `state` has no pending jobs left.
    fn help_until(&self, state: &ScopeState) {
        let shared = &self.inner.shared;
        let me = worker_index_on(shared);
        loop {
            if state.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if let Some(job) = shared.pop(me) {
                job();
                continue;
            }
            // Nothing runnable: all remaining jobs of this scope are in
            // flight on other threads. Sleep until one completes.
            let guard = shared.sleep.lock().expect("sleep lock poisoned");
            if state.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            // Re-check the queues under the sleep lock: a push between our
            // failed pop and the lock acquisition must not be missed.
            drop(
                shared
                    .wake
                    .wait_timeout(guard, std::time::Duration::from_millis(50))
                    .expect("sleep lock poisoned"),
            );
        }
    }
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("jobs", &self.jobs())
            .finish()
    }
}

struct RestoreCurrent(Option<Runner>);

impl Drop for RestoreCurrent {
    fn drop(&mut self) {
        let prev = self.0.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// The thread's current runner: the innermost [`Runner::install`], which
/// worker threads inherit from their pool. Falls back to a process-wide
/// serial runner, so library code is deterministic and thread-free unless
/// a pool was explicitly installed.
pub fn current() -> Runner {
    if let Some(runner) = CURRENT.with(|c| c.borrow().clone()) {
        return runner;
    }
    static FALLBACK: OnceLock<Runner> = OnceLock::new();
    FALLBACK.get_or_init(Runner::serial).clone()
}

/// Fan `n` indexed points out across the [`current`] pool, collecting
/// results in index order. When the calling thread's telemetry pipeline
/// writes a real trace, the points run serially on the calling thread
/// instead — event interleaving from concurrent points would make the
/// trace JSONL depend on scheduling, breaking the byte-identical
/// guarantee between `--jobs 1` and `--jobs N`.
pub fn run_points<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if emptcp_telemetry::current().tracing_active() {
        return (0..n).map(f).collect();
    }
    current().run_indexed(n, f)
}

/// This thread's worker index, if it is a worker of `shared`'s pool.
fn worker_index_on(shared: &Arc<PoolShared>) -> Option<usize> {
    WORKER.with(|w| {
        w.borrow()
            .as_ref()
            .filter(|(pool, _)| Arc::ptr_eq(pool, shared))
            .map(|&(_, index)| index)
    })
}

fn worker_main(shared: Arc<PoolShared>, index: usize, runner: Runner) {
    WORKER.with(|w| *w.borrow_mut() = Some((shared.clone(), index)));
    // Nested fan-out from jobs running here goes back into this pool.
    runner.install(|| loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(job) = shared.pop(Some(index)) {
            job();
            continue;
        }
        let guard = shared.sleep.lock().expect("sleep lock poisoned");
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        drop(
            shared
                .wake
                .wait_timeout(guard, std::time::Duration::from_millis(50))
                .expect("sleep lock poisoned"),
        );
    });
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Spawn handle passed to the closure of [`Runner::scope`]. Jobs may
/// borrow from the enclosing environment (`'env`); the scope guarantees
/// they complete before `scope` returns.
pub struct Scope<'scope, 'env: 'scope> {
    runner: &'scope Runner,
    state: Arc<ScopeState>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queue `f` for execution on the pool. The spawner's current
    /// telemetry pipeline is captured here and re-installed around the
    /// job body, so metrics and traces stay attributed to the exhibit
    /// that spawned the work regardless of which thread runs it.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = self.state.clone();
        let shared = self.runner.inner.shared.clone();
        let telemetry = emptcp_telemetry::current();
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                emptcp_telemetry::with_current(telemetry, f);
            }));
            if let Err(payload) = outcome {
                let mut slot = state.panic.lock().expect("panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            state.pending.fetch_sub(1, Ordering::AcqRel);
            shared.notify_all();
        });
        // A pool with no workers is a plain serial loop: run the job
        // right here, in spawn order, on the calling thread. This keeps
        // `jobs = 1` free of queue traffic and recursion through the
        // help loop, and makes per-job wall-clock timing exact.
        if self.runner.inner.shared.locals.is_empty() {
            job();
            return;
        }
        // SAFETY: the job borrows data living at least as long as 'scope.
        // `Runner::scope` does not return before `state.pending` reaches
        // zero — it helps/sleeps until every spawned job has run to
        // completion (including when the scope closure panics) — so the
        // borrow can never be observed after 'scope ends. This is the
        // same lifetime-erasure argument `std::thread::scope` relies on.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        let me = worker_index_on(&self.runner.inner.shared);
        self.runner.inner.shared.push(me, job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_runner_runs_inline_in_order() {
        let runner = Runner::serial();
        let order = Mutex::new(Vec::new());
        runner.scope(|s| {
            for i in 0..8 {
                let order = &order;
                s.spawn(move || order.lock().unwrap().push(i));
            }
        });
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn run_indexed_returns_in_index_order_any_pool_size() {
        for jobs in [1, 2, 4, 7] {
            let runner = Runner::new(jobs);
            let out = runner.run_indexed(20, |i| i * i);
            assert_eq!(
                out,
                (0..20).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let runner = Runner::new(3);
        let total = AtomicU64::new(0);
        let out = runner.run_indexed(6, |i| {
            // Fan out again from inside a job: the inner scope helps.
            let inner: u64 = current()
                .run_indexed(4, |j| (i * 10 + j) as u64)
                .iter()
                .sum();
            total.fetch_add(inner, Ordering::Relaxed);
            inner
        });
        let expect: Vec<u64> = (0..6u64)
            .map(|i| (0..4).map(|j| i * 10 + j).sum())
            .collect();
        assert_eq!(out, expect);
        assert_eq!(total.load(Ordering::Relaxed), expect.iter().sum::<u64>());
    }

    #[test]
    fn workers_inherit_current_runner() {
        let runner = Runner::new(4);
        runner.install(|| {
            let sizes = current().run_indexed(8, |_| current().jobs());
            assert!(sizes.iter().all(|&j| j == 4), "{sizes:?}");
        });
    }

    #[test]
    fn panics_propagate_after_all_jobs_finish() {
        let runner = Runner::new(2);
        let finished = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            runner.scope(|s| {
                for i in 0..6 {
                    let finished = &finished;
                    s.spawn(move || {
                        if i == 3 {
                            panic!("job 3 exploded");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        // The other five jobs still ran to completion before the panic
        // was resumed — borrows never dangle.
        assert_eq!(finished.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn telemetry_propagates_to_jobs() {
        use emptcp_telemetry::Telemetry;
        let runner = Runner::new(3);
        let telemetry = Telemetry::builder().build();
        emptcp_telemetry::with_current(telemetry.clone(), || {
            runner.run_indexed(10, |_| {
                emptcp_telemetry::current().with_metrics(|m| m.counter_add("jobs.ran", 1));
            });
        });
        assert_eq!(telemetry.metrics().unwrap().counter("jobs.ran"), 10);
    }

    #[test]
    fn parallel_matches_serial_for_seeded_work() {
        // The determinism contract in miniature: per-index seeds, index
        // slots, any pool size.
        let work = |i: usize| {
            let mut rng = emptcp_sim::SimRng::new(0xABCD ^ (i as u64 * 7919));
            (0..100)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let serial = Runner::new(1).run_indexed(16, work);
        let parallel = Runner::new(4).run_indexed(16, work);
        assert_eq!(serial, parallel);
    }
}
