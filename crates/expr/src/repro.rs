//! The exhibit engine behind the `repro` binary, exposed as a library so
//! the determinism and golden-shape regression tests can drive it
//! in-process.
//!
//! Each requested exhibit becomes one job on the [`crate::runner`] pool
//! (fig16 and fig14 merge into one job when both are requested, since
//! fig14 post-processes fig16's traces). Every job runs under its own
//! telemetry pipeline installed as the thread-current override — workers
//! inherit it through [`crate::runner::Scope::spawn`] — so per-exhibit
//! metrics and invariant attribution survive parallel execution. Inside a
//! job, sweep points and repeated runs fan out further through the same
//! pool.
//!
//! Determinism contract: for a fixed `ReproOptions`, the bytes written to
//! `<out>/<id>.{txt,json,csv}` (and `<id>.trace.jsonl` under tracing) are
//! identical for every pool size, because all simulation seeds derive
//! from exhibit/run indices and results are collected in index order.

use crate::figures::{self, Config};
use crate::report::FigureOutput;
use crate::runner;
use crate::wild::WildTrace;
use emptcp_telemetry::{JsonlSink, Telemetry};
use std::path::{Path, PathBuf};

/// Every exhibit id, in the paper's order of appearance.
pub const IDS: &[&str] = &[
    "table1",
    "fig1",
    "table2",
    "fig3",
    "fig4",
    "eq1",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig12",
    "fig13",
    "sec46",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "handover",
    "devices",
    "ablations",
    "upload",
    "streaming",
    "breakdown",
    "sweep_hold",
    "sweep_kappa",
    "fleet",
    "fairness",
];

/// True when `id` names an exhibit.
pub fn is_known(id: &str) -> bool {
    IDS.contains(&id)
}

/// How to run a batch of exhibits.
#[derive(Clone, Debug)]
pub struct ReproOptions {
    /// Experiment scale.
    pub cfg: Config,
    /// Directory receiving `<id>.{txt,json,csv}`.
    pub out_dir: PathBuf,
    /// Also write `<id>.trace.jsonl` per job. Tracing serializes the runs
    /// *within* each job (exhibits still run concurrently — they write
    /// distinct files), so the JSONL is byte-identical across pool sizes.
    pub trace: bool,
    /// Explicit trace destination (`repro fleet --trace fleet.jsonl`),
    /// overriding the per-job `<out>/<id>.trace.jsonl` default. Only valid
    /// when a single job runs — the binary enforces that — since two jobs
    /// appending to one file would interleave nondeterministically.
    pub trace_path: Option<PathBuf>,
}

impl ReproOptions {
    /// Defaults: quick scale into `dir`, no tracing.
    pub fn quick(dir: impl Into<PathBuf>) -> ReproOptions {
        ReproOptions {
            cfg: Config::quick(),
            out_dir: dir.into(),
            trace: false,
            trace_path: None,
        }
    }
}

/// What one job produced, for in-order printing by the binary.
#[derive(Debug)]
pub struct ExhibitReport {
    /// The exhibit ids this job covered (two for the merged fig16+fig14).
    pub ids: Vec<String>,
    /// Rendered tables, in id order.
    pub rendered: String,
    /// Invariant violations recorded by the job's pipeline.
    pub violations: Vec<String>,
    /// Family-summed counter roll-up (`tcp.conn3.sf1.x` → `tcp.x`).
    pub metrics: Vec<(String, u64)>,
    /// Wall-clock seconds the job took.
    pub wall_s: f64,
}

/// `conn3` / `sf1` / `router0` / `port5` / `shard2` style path segments
/// name an instance, not a family.
fn is_instance_segment(seg: &str) -> bool {
    ["conn", "sf", "router", "port", "shard"]
        .iter()
        .any(|prefix| {
            seg.strip_prefix(prefix)
                .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
        })
}

/// Sum every per-connection/per-subflow counter into its stack-level
/// family (`tcp.conn3.sf1.retransmits` → `tcp.retransmits`) so the
/// roll-up stays a handful of lines no matter how many flows an
/// experiment spawned.
pub fn summarize_metrics(telemetry: &Telemetry) -> Vec<(String, u64)> {
    let Some(metrics) = telemetry.metrics() else {
        return Vec::new();
    };
    let mut totals: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for (name, value) in metrics.counters() {
        let family = name
            .split('.')
            .filter(|seg| !is_instance_segment(seg))
            .collect::<Vec<_>>()
            .join(".");
        *totals.entry(family).or_insert(0) += value;
    }
    totals.into_iter().collect()
}

/// Group requested ids into jobs: one per exhibit, except fig16+fig14
/// which share fig16's traces and therefore one job (at fig16's position)
/// when both are requested.
fn plan(ids: &[String]) -> Vec<Vec<String>> {
    let mut groups: Vec<Vec<String>> = Vec::new();
    let both = ids.iter().any(|i| i == "fig16") && ids.iter().any(|i| i == "fig14");
    for id in ids {
        match id.as_str() {
            "fig16" if both => groups.push(vec!["fig16".into(), "fig14".into()]),
            "fig14" if both => {} // folded into the fig16 job
            _ => groups.push(vec![id.clone()]),
        }
    }
    groups
}

fn dispatch(
    id: &str,
    cfg: &Config,
    out_dir: &Path,
    fig16_traces: &mut Option<Vec<WildTrace>>,
) -> std::io::Result<Vec<FigureOutput>> {
    Ok(match id {
        "table1" => vec![figures::table1()],
        "fig1" => vec![figures::fig1()],
        "table2" => vec![figures::table2()],
        "fig3" => vec![figures::fig3()],
        "fig4" => vec![figures::fig4()],
        "eq1" => vec![figures::eq1()],
        "fig5" => vec![figures::fig5(cfg)],
        "fig6" => vec![figures::fig6(cfg)],
        "fig7" => vec![figures::fig7(cfg)],
        "fig8" => vec![figures::fig8(cfg)],
        "fig9" => vec![figures::fig9(cfg)],
        "fig10" => vec![figures::fig10(cfg)],
        "fig12" => vec![figures::fig12(cfg)],
        "fig13" => vec![figures::fig13(cfg)],
        "sec46" => vec![figures::sec46(cfg)],
        "fig15" => vec![figures::fig15(cfg)],
        "fig16" => {
            let (out, traces) = figures::fig16(cfg);
            *fig16_traces = Some(traces);
            vec![out]
        }
        "fig14" => {
            let traces = match fig16_traces.take() {
                Some(t) => t,
                None => {
                    // fig14 alone still needs fig16's study; write the
                    // fig16 outputs it produced along the way.
                    let (out, traces) = figures::fig16(cfg);
                    out.write_to(out_dir)?;
                    traces
                }
            };
            vec![figures::fig14(&traces)]
        }
        "fig17" => vec![figures::fig17(cfg)],
        "handover" => vec![figures::handover(cfg)],
        "devices" => vec![figures::devices(cfg)],
        "ablations" => vec![figures::ablations(cfg)],
        "upload" => vec![figures::upload(cfg)],
        "streaming" => vec![figures::streaming(cfg)],
        "breakdown" => vec![figures::breakdown(cfg)],
        "sweep_hold" => vec![figures::sweep_hold(cfg)],
        "sweep_kappa" => vec![figures::sweep_kappa(cfg)],
        "fleet" => vec![figures::fleet(cfg)],
        "fairness" => vec![figures::fairness(cfg)],
        other => panic!("unknown exhibit id: {other}"),
    })
}

fn run_job(group: &[String], opts: &ReproOptions) -> std::io::Result<ExhibitReport> {
    let started = std::time::Instant::now();
    // A fresh pipeline per job: simulations pick it up through the
    // thread-current handle (inherited by nested pool jobs), so counters
    // never bleed across exhibits even when they run concurrently.
    let mut builder = Telemetry::builder().invariants(true);
    if opts.trace {
        let path = match &opts.trace_path {
            Some(path) => path.clone(),
            None => opts.out_dir.join(format!("{}.trace.jsonl", group[0])),
        };
        builder = builder.sink(Box::new(JsonlSink::new(std::fs::File::create(path)?)));
    }
    let telemetry = builder.build();
    let outputs: std::io::Result<Vec<FigureOutput>> =
        emptcp_telemetry::with_current(telemetry.clone(), || {
            let mut fig16_traces = None;
            let mut outputs = Vec::new();
            for id in group {
                outputs.extend(dispatch(id, &opts.cfg, &opts.out_dir, &mut fig16_traces)?);
            }
            Ok(outputs)
        });
    let outputs = outputs?;
    let mut rendered = String::new();
    for out in &outputs {
        rendered.push_str(&out.render());
        out.write_to(&opts.out_dir)?;
    }
    telemetry.flush()?;
    Ok(ExhibitReport {
        ids: group.to_vec(),
        rendered,
        violations: telemetry
            .violations()
            .iter()
            .map(|v| v.to_string())
            .collect(),
        metrics: summarize_metrics(&telemetry),
        wall_s: started.elapsed().as_secs_f64(),
    })
}

/// Run `ids` (already validated against [`IDS`]) on the current
/// [`runner`] pool and return one report per job, in request order.
pub fn run_exhibits(ids: &[String], opts: &ReproOptions) -> std::io::Result<Vec<ExhibitReport>> {
    for id in ids {
        assert!(is_known(id), "unknown exhibit id: {id}");
    }
    std::fs::create_dir_all(&opts.out_dir)?;
    let groups = plan(ids);
    let reports = runner::run_points(groups.len(), |i| {
        let report = run_job(&groups[i], opts);
        if let Ok(r) = &report {
            emptcp_telemetry::info!("[{}] done in {:.1}s", r.ids.join("+"), r.wall_s);
        }
        report
    });
    reports.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_merges_fig16_and_fig14() {
        let ids: Vec<String> = ["fig5", "fig14", "fig16", "fig6"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let groups = plan(&ids);
        assert_eq!(
            groups,
            vec![
                vec!["fig5".to_string()],
                vec!["fig16".to_string(), "fig14".to_string()],
                vec!["fig6".to_string()],
            ]
        );
    }

    #[test]
    fn plan_keeps_lone_fig14() {
        let ids = vec!["fig14".to_string()];
        assert_eq!(plan(&ids), vec![vec!["fig14".to_string()]]);
    }

    #[test]
    fn all_ids_are_known() {
        for id in IDS {
            assert!(is_known(id));
        }
        assert!(!is_known("fig99"));
    }
}
