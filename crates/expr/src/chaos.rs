//! Chaos certification: run declarative scenarios through the simulators
//! and judge the outcome with end-of-run oracles.
//!
//! This module is the binding layer the `emptcp-scenario` crate
//! deliberately leaves out: it maps a [`Scenario`] onto the host
//! simulation (`host::Simulation`) or the fleet (`net::FleetSim`), runs it
//! with the telemetry invariant observer attached, and then applies the
//! *end-of-run oracles* — properties that must hold for every valid
//! scenario, not just hand-picked ones:
//!
//! * **exact delivery** — under a recoverable fault script the host
//!   workload still delivers every byte (and every fleet client makes
//!   progress);
//! * **no stuck subflows** — once the last fault clears, no subflow may
//!   still believe its link is down;
//! * **energy conservation** — accumulated energy never decreases and the
//!   radio sub-accounts never exceed the total;
//! * **capacity conservation** — fleet aggregate goodput cannot exceed the
//!   bottleneck;
//! * **fairness bounds** — on do-no-harm topologies the MPTCP/TCP split
//!   stays near fair;
//! * **invariant observer** — zero online violations during the run.
//!
//! On top of single runs sit [`fuzz`] (generate → run → oracle → greedy
//! [`emptcp_scenario::shrink`] to a minimal failing `.scenario` repro) and
//! [`replay_corpus`] (every committed scenario, deterministic reports).

use crate::host::Simulation;
use crate::scenario::Scenario as ExprScenario;
use crate::strategy::Strategy;
use emptcp_net::FleetSim;
use emptcp_scenario::gen::generate;
use emptcp_scenario::io::save;
use emptcp_scenario::shrink::shrink;
use emptcp_scenario::{corpus, HostSpec, Scenario, ScenarioError, StrategyKind, World};
use emptcp_sim::{SimDuration, SimTime};
use emptcp_telemetry::{InvariantObserver, Telemetry};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The oracle a `--sabotage-oracle` run deliberately breaks, to prove the
/// fuzz → shrink → repro pipeline catches real regressions.
pub const SABOTAGE_DELIVERY: &str = "delivery";

/// One failed end-of-run oracle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OracleViolation {
    /// Oracle name (`exact_delivery`, `no_stuck_subflows`, ...).
    pub oracle: String,
    /// Human-readable evidence.
    pub detail: String,
}

/// Everything a chaos run reports about one scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Scenario name.
    pub scenario: String,
    /// `host` or `fleet`.
    pub world: String,
    /// Seed the run used.
    pub seed: u64,
    /// Fault events the injector applied.
    pub faults_injected: u64,
    /// Host worlds: workload bytes delivered. Fleet worlds: 0.
    pub bytes_delivered: u64,
    /// Fleet worlds: aggregate goodput, Mbps. Host worlds: 0.
    pub aggregate_mbps: f64,
    /// Online invariant violations recorded during the run.
    pub invariant_violations: u64,
    /// Every end-of-run oracle that failed (empty = certified).
    pub violations: Vec<OracleViolation>,
}

impl ChaosReport {
    /// True when every oracle passed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn strategy_of(kind: StrategyKind) -> Strategy {
    match kind {
        StrategyKind::Mptcp => Strategy::Mptcp,
        StrategyKind::Emptcp => Strategy::emptcp_default(),
        StrategyKind::TcpWifi => Strategy::TcpWifi,
        StrategyKind::TcpCellular => Strategy::TcpCellular,
        StrategyKind::WifiFirst => Strategy::WifiFirst,
        StrategyKind::MdpScheduler => Strategy::MdpScheduler,
        StrategyKind::SinglePath => Strategy::SinglePath,
    }
}

/// Drain a local observer into the report's violation list.
fn collect(obs: &mut InvariantObserver) -> Vec<OracleViolation> {
    obs.take_violations()
        .into_iter()
        .map(|v| OracleViolation {
            oracle: v.name.to_string(),
            detail: v.detail,
        })
        .collect()
}

/// Run one scenario and judge it. The scenario's own seed drives every
/// random draw; callers override by editing the scenario first.
/// `sabotage` deliberately mis-wires the named oracle (see
/// [`SABOTAGE_DELIVERY`]) so the shrinking pipeline can be exercised
/// end-to-end against a known-bad judgement.
pub fn run_scenario(sc: &Scenario, sabotage: Option<&str>) -> Result<ChaosReport, ScenarioError> {
    sc.validate()?;
    let sabotage_delivery = sabotage == Some(SABOTAGE_DELIVERY);
    match &sc.world {
        World::Host(host) => Ok(run_host(sc, host, sabotage_delivery)),
        World::Fleet(_) => run_fleet(sc, sabotage_delivery),
    }
}

fn run_host(sc: &Scenario, host: &HostSpec, sabotage_delivery: bool) -> ChaosReport {
    let plan = sc.fault_plan();
    let mut xs = ExprScenario::wild(
        &format!("chaos/{}", sc.name),
        host.wifi_bps,
        host.cell_bps,
        SimDuration::from_millis(host.wifi_rtt_ms),
        SimDuration::from_millis(host.cell_rtt_ms),
        host.transfer_bytes,
    );
    xs.profile = host.device.profile();
    let telemetry = Telemetry::builder().invariants(true).build();
    let mut sim =
        Simulation::new_with_telemetry(xs, strategy_of(host.strategy), sc.seed, telemetry.clone());
    if !plan.is_empty() {
        sim.attach_faults(plan.clone());
    }
    let r = sim.run();
    let invariant_violations = telemetry.violations().len() as u64;

    let at = SimTime::ZERO + SimDuration::from_secs_f64(r.download_time_s);
    let mut obs = InvariantObserver::new();

    // Exact delivery: every recoverable script still lands every byte.
    // A sabotaged run pretends one extra byte was owed whenever faults
    // fired, emulating an oracle/recovery regression for the shrinker.
    let asked = if sabotage_delivery && r.faults_injected > 0 {
        host.transfer_bytes + 1
    } else {
        host.transfer_bytes
    };
    obs.check_exact_delivery(at, &sc.name, r.bytes_delivered, asked);
    obs.check(at, "exact_delivery", r.completed, || {
        format!("{}: transfer did not complete before the horizon", sc.name)
    });

    // No stuck subflows once the network is back to nominal.
    if plan.is_empty() || plan.restores_nominal() {
        obs.check_no_stuck_subflows(at, &sc.name, r.stuck_subflows);
    }

    // Energy accounting conserves.
    obs.check_energy_conservation(at, &sc.name, r.promo_energy_j + r.tail_energy_j, r.energy_j);
    obs.check(
        at,
        "energy_conservation",
        r.energy_at_completion_j <= r.energy_j + 1e-9,
        || {
            format!(
                "{}: energy at completion {} J exceeds final total {} J",
                sc.name, r.energy_at_completion_j, r.energy_j
            )
        },
    );
    let mut prev = 0.0_f64;
    for &(t, joules) in r.energy_trace.points() {
        obs.check_energy_monotone(t, prev, joules);
        if joules < prev - 1e-9 {
            break; // one violation is evidence enough
        }
        prev = joules;
    }

    // The online observer must have stayed silent.
    obs.check(at, "invariant_observer", invariant_violations == 0, || {
        format!(
            "{}: {} online invariant violation(s) during the run",
            sc.name, invariant_violations
        )
    });

    ChaosReport {
        scenario: sc.name.clone(),
        world: "host".to_string(),
        seed: sc.seed,
        faults_injected: r.faults_injected,
        bytes_delivered: r.bytes_delivered,
        aggregate_mbps: 0.0,
        invariant_violations,
        violations: collect(&mut obs),
    }
}

fn run_fleet(sc: &Scenario, sabotage_delivery: bool) -> Result<ChaosReport, ScenarioError> {
    let World::Fleet(cfg) = &sc.world else {
        unreachable!("run_fleet called with a host world");
    };
    let plan = sc.fault_plan();
    let mut cfg = cfg.clone();
    cfg.seed = sc.seed;
    let telemetry = Telemetry::builder().invariants(true).build();
    let mut sim = FleetSim::try_new_with_telemetry(cfg.clone(), telemetry.clone())?;
    if !plan.is_empty() {
        sim.attach_faults(plan.clone());
    }
    let r = sim.run();
    let invariant_violations = telemetry.violations().len() as u64;

    let at = SimTime::ZERO + cfg.duration;
    let mut obs = InvariantObserver::new();

    // Every client makes progress — the fleet analogue of exact delivery.
    // Sabotage pretends one extra client was owed progress when faults
    // fired (see `run_host`).
    let progressed = r.per_client_mbps.iter().filter(|&&m| m > 0.0).count() as u64;
    let owed = if sabotage_delivery && r.faults_injected > 0 {
        cfg.clients as u64 + 1
    } else {
        cfg.clients as u64
    };
    obs.check_exact_delivery(at, &sc.name, progressed, owed);

    // Aggregate goodput cannot exceed the shared bottleneck.
    let cap_mbps = cfg.bottleneck.rate_bps as f64 / 1e6;
    obs.check(
        at,
        "capacity_conservation",
        r.aggregate_mbps <= cap_mbps * 1.05,
        || {
            format!(
                "{}: aggregate {:.2} Mbps exceeds the {:.2} Mbps bottleneck",
                sc.name, r.aggregate_mbps, cap_mbps
            )
        },
    );

    // The do-no-harm shape is entitled to the fairness oracle.
    if sc.is_do_no_harm() {
        obs.check_fairness_bounds(at, &sc.name, r.mptcp_tcp_ratio, 0.5, 1.6);
    }

    // Structural leak oracle: every segment parked for a queued hop event
    // must have been reclaimed exactly once by end of run.
    let slab = sim.seg_slab_stats();
    obs.check_segment_slab(at, &sc.name, slab.live, slab.double_frees);

    obs.check(at, "invariant_observer", invariant_violations == 0, || {
        format!(
            "{}: {} online invariant violation(s) during the run",
            sc.name, invariant_violations
        )
    });

    Ok(ChaosReport {
        scenario: sc.name.clone(),
        world: "fleet".to_string(),
        seed: sc.seed,
        faults_injected: r.faults_injected,
        bytes_delivered: 0,
        aggregate_mbps: r.aggregate_mbps,
        invariant_violations,
        violations: collect(&mut obs),
    })
}

/// One fuzz case that failed its oracles, with the shrunk minimal repro.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FuzzFailure {
    /// Case index within the fuzz run.
    pub case: u64,
    /// Name of the generated scenario that failed.
    pub scenario: String,
    /// The oracles it failed.
    pub violations: Vec<OracleViolation>,
    /// Fault primitives left after shrinking.
    pub shrunk_faults: usize,
    /// Clients left after shrinking (1 for host worlds).
    pub shrunk_clients: usize,
    /// Where the minimal `.scenario` repro was written (when a repro dir
    /// was given).
    pub repro_path: Option<String>,
}

/// Outcome of a whole fuzz run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FuzzOutcome {
    /// Root seed of the run.
    pub seed: u64,
    /// Cases generated and executed.
    pub cases: u64,
    /// Every case that failed an oracle (empty = certified).
    pub failures: Vec<FuzzFailure>,
}

/// Generate `cases` arbitrary-but-valid scenarios from `run_seed`, run
/// each through the oracles (fanned out on the current runner), and shrink
/// every failure to a minimal `.scenario` repro in `repro_dir`.
pub fn fuzz(
    run_seed: u64,
    cases: u64,
    sabotage: Option<&str>,
    repro_dir: Option<&Path>,
) -> std::io::Result<FuzzOutcome> {
    let reports = crate::runner::run_points(cases as usize, |i| {
        let sc = generate(run_seed, i as u64);
        let report = run_scenario(&sc, sabotage).expect("generated scenarios validate");
        (sc, report)
    });

    let mut failures = Vec::new();
    for (case, (sc, report)) in reports.into_iter().enumerate() {
        if report.ok() {
            continue;
        }
        // Shrink while the failure reproduces.
        let min = shrink(sc.clone(), |cand| {
            run_scenario(cand, sabotage)
                .map(|r| !r.ok())
                .unwrap_or(false)
        });
        let mut min = min;
        min.name = format!("{}-min", sc.name);
        min.summary = format!("shrunk repro of fuzz case {case} (seed {run_seed})");
        let repro_path = match repro_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join(format!("{}.scenario", min.name));
                save(&path, &min)?;
                Some(path.display().to_string())
            }
            None => None,
        };
        let shrunk_clients = match &min.world {
            World::Fleet(c) => c.clients,
            World::Host(_) => 1,
        };
        failures.push(FuzzFailure {
            case: case as u64,
            scenario: sc.name.clone(),
            violations: report.violations.clone(),
            shrunk_faults: min.faults.len(),
            shrunk_clients,
            repro_path,
        });
    }
    Ok(FuzzOutcome {
        seed: run_seed,
        cases,
        failures,
    })
}

/// Replay the whole committed corpus (fanned out on the current runner)
/// and, when `out_dir` is given, write one deterministic
/// `<name>.report.json` per scenario. The reports are byte-identical for
/// any `--jobs` value: each depends only on its scenario.
pub fn replay_corpus(out_dir: Option<&Path>) -> std::io::Result<Vec<ChaosReport>> {
    let names = corpus::names();
    let reports = crate::runner::run_points(names.len(), |i| {
        let sc = corpus::load(names[i]).expect("corpus scenario loads");
        run_scenario(&sc, None).expect("corpus scenario runs")
    });
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir)?;
        for report in &reports {
            let mut body = serde_json::to_string_pretty(report).expect("chaos report serializes");
            body.push('\n');
            std::fs::write(dir.join(format!("{}.report.json", report.scenario)), body)?;
        }
    }
    Ok(reports)
}

/// Load a `.scenario` file, run it, and judge it — the `--file --check`
/// replay path for shrunk repros.
pub fn run_file(path: &Path, sabotage: Option<&str>) -> Result<ChaosReport, ScenarioError> {
    let sc = emptcp_scenario::io::load(path)?;
    run_scenario(&sc, sabotage)
}

/// Canonical JSON body (pretty + trailing newline) for CLI `--json`.
pub fn report_json(report: &ChaosReport) -> String {
    let mut body = serde_json::to_string_pretty(report).expect("chaos report serializes");
    body.push('\n');
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_host_scenario_certifies() {
        let sc = corpus::load("cafe-hotspot").unwrap();
        let report = run_scenario(&sc, None).unwrap();
        assert!(report.ok(), "{:?}", report.violations);
        assert!(report.faults_injected > 0);
        assert!(report.bytes_delivered > 0);
    }

    #[test]
    fn a_clean_fleet_scenario_certifies() {
        let sc = corpus::load("fleet-lossy-core").unwrap();
        let report = run_scenario(&sc, None).unwrap();
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.world, "fleet");
        assert!(report.aggregate_mbps > 0.0);
    }

    #[test]
    fn sabotaged_delivery_oracle_fails_faulted_runs_only() {
        let faulted = corpus::load("cafe-hotspot").unwrap();
        let report = run_scenario(&faulted, Some(SABOTAGE_DELIVERY)).unwrap();
        assert!(!report.ok(), "sabotage must trip on a faulted run");
        assert_eq!(report.violations[0].oracle, "exact_delivery");

        let calm = corpus::load("fleet-uncoupled-pair").unwrap();
        let report = run_scenario(&calm, Some(SABOTAGE_DELIVERY)).unwrap();
        assert!(report.ok(), "sabotage only bites when faults fired");
    }

    #[test]
    fn an_invalid_scenario_is_rejected_before_running() {
        let mut sc = corpus::load("cafe-hotspot").unwrap();
        sc.name = String::new();
        assert_eq!(
            run_scenario(&sc, None).unwrap_err(),
            ScenarioError::EmptyName
        );
    }
}
