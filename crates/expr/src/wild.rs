//! The §5 in-the-wild study.
//!
//! The paper deploys servers in Singapore, Amsterdam and Washington D.C.,
//! and measures from three client venues (university building, student
//! housing on long-reach Ethernet, residence on cable). Network conditions
//! are *not* controlled; traces are categorized afterwards by the observed
//! WiFi and LTE throughput against an 8 Mbps Good/Bad threshold (§5.1,
//! Fig 14).
//!
//! The reproduction samples per-run WiFi/LTE capacities from per-venue and
//! per-carrier distributions, per-server base RTTs from geography, runs the
//! three strategies over identical draws, and applies the same 8 Mbps
//! categorization to the *measured* throughputs of the MPTCP run — exactly
//! how the paper bins its traces.

use crate::host::{run, RunResult};
use crate::scenario::Scenario;
use crate::strategy::Strategy;
use emptcp_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// The 8 Mbps Good/Bad threshold of §5.1.
pub const GOOD_THRESHOLD_MBPS: f64 = 8.0;

/// Server locations (Table-free: §5's SNG/AMS/WDC deployment).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Server {
    /// Washington D.C. (near).
    Wdc,
    /// Amsterdam (transatlantic).
    Ams,
    /// Singapore (transpacific).
    Sng,
}

impl Server {
    /// All three, in the paper's order of appearance.
    pub const ALL: [Server; 3] = [Server::Sng, Server::Ams, Server::Wdc];

    /// Base one-way-ish RTT contribution of the server's location.
    pub fn base_rtt(self) -> SimDuration {
        match self {
            Server::Wdc => SimDuration::from_millis(25),
            Server::Ams => SimDuration::from_millis(95),
            Server::Sng => SimDuration::from_millis(230),
        }
    }

    /// Label.
    pub fn label(self) -> &'static str {
        match self {
            Server::Wdc => "WDC",
            Server::Ams => "AMS",
            Server::Sng => "SNG",
        }
    }
}

/// Client venues (§5's three measurement locations).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Venue {
    /// University building, AP on the campus network.
    University,
    /// Student housing behind Cisco Long-Reach Ethernet.
    StudentHousing,
    /// Personal residence on a cable uplink.
    Residence,
}

impl Venue {
    /// All three venues.
    pub const ALL: [Venue; 3] = [Venue::University, Venue::StudentHousing, Venue::Residence];

    /// Draw a WiFi capacity (bps) for one visit.
    pub fn draw_wifi_bps(self, rng: &mut SimRng) -> u64 {
        let mbps = match self {
            // Campus WiFi: usually fast, occasionally congested.
            Venue::University => rng.lognormal(2.6, 0.5),
            // Long-reach Ethernet bottleneck: mediocre, stable-ish.
            Venue::StudentHousing => rng.lognormal(1.5, 0.5),
            // Cable + home AP: wildly variable.
            Venue::Residence => rng.lognormal(2.0, 0.9),
        };
        (mbps.clamp(0.3, 25.0) * 1e6) as u64
    }

    /// Label.
    pub fn label(self) -> &'static str {
        match self {
            Venue::University => "university",
            Venue::StudentHousing => "student-housing",
            Venue::Residence => "residence",
        }
    }
}

/// Draw an LTE capacity (bps): one carrier, varying coverage.
pub fn draw_lte_bps(rng: &mut SimRng) -> u64 {
    let mbps = rng.lognormal(2.2, 0.7).clamp(0.5, 25.0);
    (mbps * 1e6) as u64
}

/// The four §5.1 categories.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Category {
    /// WiFi < 8 Mbps, LTE < 8 Mbps.
    BadBad,
    /// WiFi < 8 Mbps, LTE ≥ 8 Mbps.
    BadGood,
    /// WiFi ≥ 8 Mbps, LTE < 8 Mbps.
    GoodBad,
    /// WiFi ≥ 8 Mbps, LTE ≥ 8 Mbps.
    GoodGood,
}

impl Category {
    /// All four, in the paper's subfigure order.
    pub const ALL: [Category; 4] = [
        Category::BadBad,
        Category::BadGood,
        Category::GoodBad,
        Category::GoodGood,
    ];

    /// Categorize measured throughputs.
    pub fn of(wifi_mbps: f64, lte_mbps: f64) -> Category {
        match (
            wifi_mbps >= GOOD_THRESHOLD_MBPS,
            lte_mbps >= GOOD_THRESHOLD_MBPS,
        ) {
            (false, false) => Category::BadBad,
            (false, true) => Category::BadGood,
            (true, false) => Category::GoodBad,
            (true, true) => Category::GoodGood,
        }
    }

    /// Label matching the paper's subfigure captions.
    pub fn label(self) -> &'static str {
        match self {
            Category::BadBad => "Bad WiFi & Bad LTE",
            Category::BadGood => "Bad WiFi & Good LTE",
            Category::GoodBad => "Good WiFi & Bad LTE",
            Category::GoodGood => "Good WiFi & Good LTE",
        }
    }
}

/// One trace set: the three strategies over one environment draw.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WildTrace {
    /// Which server.
    pub server: Server,
    /// Which venue.
    pub venue: Venue,
    /// Iteration index.
    pub iteration: u32,
    /// Capacity draws (bps).
    pub wifi_bps: u64,
    /// LTE capacity draw (bps).
    pub lte_bps: u64,
    /// Category from the MPTCP run's measured throughputs.
    pub category: Category,
    /// MPTCP result.
    pub mptcp: RunResult,
    /// eMPTCP result.
    pub emptcp: RunResult,
    /// TCP-over-WiFi result.
    pub tcp_wifi: RunResult,
}

/// Run the full §5 sweep for one transfer size: every server × venue ×
/// iteration, all three strategies per draw.
///
/// Split into two phases for the parallel runner: the population draws
/// consume the parent RNG in a fixed nesting order and therefore stay
/// serial (they are pure RNG work, microseconds in total), while the
/// simulations — the actual cost — fan out one trace per job. Each trace
/// carries its own pre-drawn `run_seed`, so the result is byte-identical
/// to the old fully-serial loop for any pool size.
pub fn run_study(size_bytes: u64, iterations: u32, seed: u64) -> Vec<WildTrace> {
    struct Draw {
        server: Server,
        venue: Venue,
        iteration: u32,
        wifi_bps: u64,
        lte_bps: u64,
        run_seed: u64,
    }
    let mut rng = SimRng::new(seed);
    let mut draws = Vec::new();
    for &server in &Server::ALL {
        for &venue in &Venue::ALL {
            for iteration in 0..iterations {
                let mut draw_rng =
                    rng.fork((server as u64) << 32 | (venue as u64) << 16 | iteration as u64);
                let wifi_bps = venue.draw_wifi_bps(&mut draw_rng);
                let lte_bps = draw_lte_bps(&mut draw_rng);
                let run_seed = draw_rng.next_u64();
                draws.push(Draw {
                    server,
                    venue,
                    iteration,
                    wifi_bps,
                    lte_bps,
                    run_seed,
                });
            }
        }
    }
    crate::runner::run_points(draws.len(), |i| {
        let d = &draws[i];
        let wifi_rtt = d.server.base_rtt() + SimDuration::from_millis(5);
        let cell_rtt = d.server.base_rtt() + SimDuration::from_millis(40);
        let name = format!(
            "wild-{}-{}-{}",
            d.server.label(),
            d.venue.label(),
            d.iteration
        );
        let scenario =
            || Scenario::wild(&name, d.wifi_bps, d.lte_bps, wifi_rtt, cell_rtt, size_bytes);
        let mptcp = run(scenario(), Strategy::Mptcp, d.run_seed);
        let emptcp = run(scenario(), Strategy::emptcp_default(), d.run_seed);
        let tcp_wifi = run(scenario(), Strategy::TcpWifi, d.run_seed);
        // Categorize by the MPTCP run's measured throughputs, like
        // the paper; fall back to capacities if a path went unused.
        let wifi_meas = if mptcp.avg_wifi_mbps > 0.1 {
            mptcp.avg_wifi_mbps
        } else {
            d.wifi_bps as f64 / 1e6
        };
        let lte_meas = if mptcp.avg_cell_mbps > 0.1 {
            mptcp.avg_cell_mbps
        } else {
            d.lte_bps as f64 / 1e6
        };
        WildTrace {
            server: d.server,
            venue: d.venue,
            iteration: d.iteration,
            wifi_bps: d.wifi_bps,
            lte_bps: d.lte_bps,
            category: Category::of(wifi_meas, lte_meas),
            mptcp,
            emptcp,
            tcp_wifi,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorization_threshold() {
        assert_eq!(Category::of(7.9, 7.9), Category::BadBad);
        assert_eq!(Category::of(7.9, 8.0), Category::BadGood);
        assert_eq!(Category::of(8.0, 7.9), Category::GoodBad);
        assert_eq!(Category::of(8.0, 8.0), Category::GoodGood);
    }

    #[test]
    fn venue_draws_are_plausible() {
        let mut rng = SimRng::new(1);
        for venue in Venue::ALL {
            let draws: Vec<f64> = (0..500)
                .map(|_| venue.draw_wifi_bps(&mut rng) as f64 / 1e6)
                .collect();
            let mean = draws.iter().sum::<f64>() / draws.len() as f64;
            assert!(mean > 1.0 && mean < 20.0, "{venue:?}: mean {mean}");
            assert!(draws.iter().all(|&d| (0.3..=25.0).contains(&d)));
        }
    }

    #[test]
    fn university_faster_than_housing() {
        let mut rng = SimRng::new(2);
        let uni: f64 = (0..500)
            .map(|_| Venue::University.draw_wifi_bps(&mut rng) as f64)
            .sum();
        let housing: f64 = (0..500)
            .map(|_| Venue::StudentHousing.draw_wifi_bps(&mut rng) as f64)
            .sum();
        assert!(uni > housing);
    }

    #[test]
    fn server_rtts_ordered_by_distance() {
        assert!(Server::Wdc.base_rtt() < Server::Ams.base_rtt());
        assert!(Server::Ams.base_rtt() < Server::Sng.base_rtt());
    }

    #[test]
    fn small_study_produces_all_strategies() {
        // 1 iteration x 9 (server x venue) with a small file: fast enough
        // for a unit test.
        let traces = run_study(256 * 1024, 1, 7);
        assert_eq!(traces.len(), 9);
        for t in &traces {
            assert!(t.mptcp.completed, "{:?}", t.mptcp);
            assert!(t.emptcp.completed);
            assert!(t.tcp_wifi.completed);
            assert_eq!(t.mptcp.bytes_delivered, 256 * 1024);
        }
    }
}
