//! Table formatting and result output.
//!
//! Every figure runner produces a [`Table`] (printed to stdout by the
//! `repro` binary and written to `results/<id>.txt`) plus a JSON dump of
//! the underlying numbers, so EXPERIMENTS.md entries are regenerable and
//! machine-checkable.

use serde::Serialize;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (figure/table id + caption).
    pub title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A titled table with the given column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols;
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<w$}  ", cell, w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// Format a float with sensible precision for tables.
pub fn f(x: f64) -> String {
    if !x.is_finite() {
        return "inf".to_string();
    }
    let x = if x == 0.0 { 0.0 } else { x }; // normalize -0.0
    if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Format `mean ± 2*SEM`.
pub fn pm(mean: f64, sem: f64) -> String {
    format!("{} ± {}", f(mean), f(2.0 * sem))
}

/// A figure's full output: rendered tables plus the raw data as JSON and
/// optional CSV attachments (time-series traces for plotting).
pub struct FigureOutput {
    /// Experiment id (e.g. "fig5").
    pub id: String,
    /// The printable tables.
    pub tables: Vec<Table>,
    /// JSON payload of the raw numbers.
    pub json: serde_json::Value,
    /// `(suffix, csv_content)` attachments, written as `<id>_<suffix>.csv`.
    pub csvs: Vec<(String, String)>,
}

impl FigureOutput {
    /// Build from tables and any serializable payload.
    pub fn new(id: &str, tables: Vec<Table>, payload: impl Serialize) -> FigureOutput {
        FigureOutput {
            id: id.to_string(),
            tables,
            json: serde_json::to_value(payload).expect("serializable payload"),
            csvs: Vec::new(),
        }
    }

    /// Attach a CSV (e.g. a trace for external plotting).
    pub fn with_csv(mut self, suffix: &str, content: String) -> FigureOutput {
        self.csvs.push((suffix.to_string(), content));
        self
    }

    /// Render all tables.
    pub fn render(&self) -> String {
        self.tables
            .iter()
            .map(|t| t.render())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Write `<dir>/<id>.txt` and `<dir>/<id>.json`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.txt", self.id)), self.render())?;
        fs::write(
            dir.join(format!("{}.json", self.id)),
            serde_json::to_string_pretty(&self.json).expect("valid json"),
        )?;
        for (suffix, content) in &self.csvs {
            fs::write(dir.join(format!("{}_{suffix}.csv", self.id)), content)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Fig X", &["strategy", "energy (J)"]);
        t.row(vec!["MPTCP".into(), "412.3".into()]);
        t.row(vec!["eMPTCP".into(), "250.1".into()]);
        let s = t.render();
        assert!(s.contains("== Fig X =="));
        assert!(s.contains("MPTCP"));
        assert!(s.contains("412.3"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1234.5), "1234");
        assert_eq!(f(12.345), "12.35");
        assert_eq!(f(0.1234), "0.1234");
        assert_eq!(f(f64::INFINITY), "inf");
    }

    #[test]
    fn pm_formatting() {
        assert_eq!(pm(10.0, 1.0), "10.00 ± 2.00");
    }

    #[test]
    fn figure_output_roundtrip() {
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        let out = FigureOutput::new("test_fig", vec![t], vec![1, 2, 3]);
        let dir = std::env::temp_dir().join("emptcp_report_test");
        out.write_to(&dir).unwrap();
        let txt = std::fs::read_to_string(dir.join("test_fig.txt")).unwrap();
        assert!(txt.contains("== t =="));
        let json: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("test_fig.json")).unwrap())
                .unwrap();
        assert_eq!(json, serde_json::json!([1, 2, 3]));
    }
}
