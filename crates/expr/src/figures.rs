//! One runner per table and figure of the paper.
//!
//! Each function regenerates the data behind one exhibit and returns a
//! [`FigureOutput`] (printable tables + raw JSON). The [`Config`] scales
//! the experiments: [`Config::full`] uses the paper's sizes and run counts
//! (what EXPERIMENTS.md records), [`Config::quick`] shrinks transfers for
//! benches and smoke tests while exercising identical code paths.

use crate::host::{run, RunResult};
use crate::mdp::MdpPolicy;
use crate::report::{f, pm, FigureOutput, Table};
use crate::runner;
use crate::scenario::{Scenario, Workload};
use crate::strategy::Strategy;
use crate::wild::{self, Category, WildTrace};
use emptcp::delay::min_tau;
use emptcp_energy::eib::efficiency_heatmap;
use emptcp_energy::region::{mptcp_region, region_area};
use emptcp_energy::{DeviceProfile, Eib, EnergyModel};
use emptcp_sim::stats::{MeanSem, WhiskerSummary};
use emptcp_sim::SimDuration;
use emptcp_workload::download::{KB, MB};
use serde::Serialize;

/// Experiment scale.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Runs per (scenario, strategy) cell.
    pub runs: usize,
    /// The §4 bulk transfer size.
    pub bulk_size: u64,
    /// The §5 "large" transfer size.
    pub large_size: u64,
    /// Wild-study iterations per (server, venue).
    pub wild_iterations: u32,
    /// Client stacks in the fleet exhibit's shared-bottleneck run.
    pub fleet_clients: usize,
    /// Shard count for the fleet exhibit's sharded engine; `None` picks a
    /// deterministic default from `fleet_clients`. The report is
    /// byte-identical for every value, so this is purely a wall-clock
    /// knob (`repro --shards N`).
    pub fleet_shards: Option<usize>,
    /// Root seed.
    pub seed: u64,
}

impl Config {
    /// Paper-scale settings.
    pub fn full() -> Config {
        Config {
            runs: 5,
            bulk_size: 256 * MB,
            large_size: 16 * MB,
            wild_iterations: 10,
            fleet_clients: 100,
            fleet_shards: None,
            seed: 0xE0_07C9,
        }
    }

    /// Shrunk settings for benches and smoke tests.
    pub fn quick() -> Config {
        Config {
            runs: 2,
            bulk_size: 8 * MB,
            large_size: 2 * MB,
            wild_iterations: 1,
            fleet_clients: 32,
            fleet_shards: None,
            seed: 0xE0_07C9,
        }
    }

    /// The shard count the fleet exhibit runs with: the explicit
    /// `fleet_shards` override, else a deterministic function of the
    /// population (8 shards once the fleet is large enough for the
    /// partition to pay for its barriers, 1 below that). Never depends on
    /// the worker pool, so `--jobs` cannot change the output.
    pub fn fleet_shard_count(&self) -> usize {
        self.fleet_shards
            .unwrap_or(if self.fleet_clients >= 1024 { 8 } else { 1 })
    }
}

/// Run `runs` seeded repetitions of a strategy through a scenario on the
/// current [`runner`] pool. Run `i` always simulates with seed
/// `seed0 + i·7919` and lands in slot `i`, so the result vector is
/// byte-identical for every pool size. When the current telemetry
/// pipeline writes a real trace, the repetitions run serially on the
/// calling thread instead, keeping trace JSONL ordering reproducible.
pub fn repeat_runs<F>(make: F, strategy: Strategy, runs: usize, seed0: u64) -> Vec<RunResult>
where
    F: Fn() -> Scenario + Sync,
{
    let seed_of = |i: usize| seed0.wrapping_add(i as u64 * 7919);
    runner::run_points(runs, |i| run(make(), strategy, seed_of(i)))
}

/// Fan `n` sweep points out across the current [`runner`] pool, collecting
/// results in index order — the sweep-exhibit analogue of [`repeat_runs`].
fn sweep_points<T, F>(n: usize, point: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    runner::run_points(n, point)
}

#[derive(Serialize)]
struct StrategySummary {
    strategy: String,
    energy: MeanSem,
    time: MeanSem,
    wifi_bytes: f64,
    cell_bytes: f64,
    completed: usize,
    runs: usize,
}

fn summarize(results: &[RunResult]) -> StrategySummary {
    StrategySummary {
        strategy: results[0].strategy.clone(),
        energy: MeanSem::of(&results.iter().map(|r| r.energy_j).collect::<Vec<_>>()),
        time: MeanSem::of(
            &results
                .iter()
                .map(|r| r.download_time_s)
                .collect::<Vec<_>>(),
        ),
        wifi_bytes: results.iter().map(|r| r.wifi_bytes as f64).sum::<f64>() / results.len() as f64,
        cell_bytes: results.iter().map(|r| r.cell_bytes as f64).sum::<f64>() / results.len() as f64,
        completed: results.iter().filter(|r| r.completed).count(),
        runs: results.len(),
    }
}

fn energy_time_table(title: &str, summaries: &[StrategySummary]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "strategy",
            "energy (J)",
            "time (s)",
            "wifi MB",
            "cell MB",
            "done",
        ],
    );
    for s in summaries {
        t.row(vec![
            s.strategy.clone(),
            pm(s.energy.mean, s.energy.sem),
            pm(s.time.mean, s.time.sem),
            f(s.wifi_bytes / MB as f64),
            f(s.cell_bytes / MB as f64),
            format!("{}/{}", s.completed, s.runs),
        ]);
    }
    t
}

// ----------------------------------------------------------------------
// Model-only exhibits (no simulation needed)
// ----------------------------------------------------------------------

/// Table 1: device specifications.
pub fn table1() -> FigureOutput {
    let mut t = Table::new(
        "Table 1: Mobile devices",
        &["property", "Samsung Galaxy S3", "LG Nexus 5"],
    );
    for (k, a, b) in [
        ("Release date", "May 2012", "Nov 2013"),
        ("App. processor", "Qualcomm MSM8960", "Qualcomm 8974-AA"),
        ("Semiconductor", "28nm LP", "28nm HPM"),
        ("Android version", "4.1.2 (Jelly Bean)", "4.4.4 (KitKat)"),
        ("Kernel version", "3.0.48", "3.4.0"),
        ("WiFi chipset", "Broadcom BCM4334", "Broadcom BCM4339"),
    ] {
        t.row(vec![k.into(), a.into(), b.into()]);
    }
    FigureOutput::new("table1", vec![t], ())
}

/// Fig 1: fixed energy overheads of WiFi / 3G / LTE on both devices.
pub fn fig1() -> FigureOutput {
    let mut t = Table::new(
        "Fig 1: Fixed energy cost (J): promotion + tail per activation",
        &["device", "WiFi", "3G", "LTE"],
    );
    let mut payload = Vec::new();
    for profile in [DeviceProfile::galaxy_s3(), DeviceProfile::nexus_5()] {
        let (wifi, threeg, lte) = profile.fixed_overheads_j();
        t.row(vec![profile.name.clone(), f(wifi), f(threeg), f(lte)]);
        payload.push((profile.name.clone(), wifi, threeg, lte));
    }
    FigureOutput::new("fig1", vec![t], payload)
}

/// Table 2: the Energy Information Base thresholds.
pub fn table2() -> FigureOutput {
    let model = EnergyModel::galaxy_s3_lte();
    let eib = Eib::generate_default(&model);
    let mut t = Table::new(
        "Table 2: EIB (Galaxy S3, LTE): WiFi-throughput transition points",
        &[
            "LTE thpt (Mbps)",
            "LTE-only below",
            "WiFi-only at/above",
            "paper LTE-only",
            "paper WiFi-only",
        ],
    );
    let paper = [
        (0.5, 0.043, 0.234),
        (1.0, 0.134, 0.502),
        (1.5, 0.209, 0.803),
        (2.0, 0.304, 1.070),
    ];
    let mut payload = Vec::new();
    for (cell, p1, p2) in paper {
        let (t1, t2) = eib.thresholds(cell);
        t.row(vec![f(cell), f(t1), f(t2), f(p1), f(p2)]);
        payload.push((cell, t1, t2, p1, p2));
    }
    FigureOutput::new("table2", vec![t], payload)
}

/// Fig 3: the per-byte efficiency heat map with its V-region. The paper
/// plots the Galaxy S3; the JSON payload carries the Nexus 5's map too.
pub fn fig3() -> FigureOutput {
    let model = EnergyModel::galaxy_s3_lte();
    let grid: Vec<f64> = (1..=40).map(|i| i as f64 * 0.25).collect();
    let map = efficiency_heatmap(&model, &grid, &grid);
    let n5 = EnergyModel::new(DeviceProfile::nexus_5(), emptcp_phy::IfaceKind::CellularLte);
    let map_n5 = efficiency_heatmap(&n5, &grid, &grid);
    // ASCII rendition: rows = LTE (top = fast), cols = WiFi.
    let mut t = Table::new(
        "Fig 3: both-vs-best-single per-byte energy ratio ('#' < 0.95, '+' < 1.0, '.' >= 1.0)",
        &["LTE Mbps", "WiFi 0.25 -> 10 Mbps"],
    );
    for (i, row) in map.iter().enumerate().rev().step_by(2) {
        let line: String = row
            .iter()
            .step_by(1)
            .map(|&v| {
                if v < 0.95 {
                    '#'
                } else if v < 1.0 {
                    '+'
                } else {
                    '.'
                }
            })
            .collect();
        t.row(vec![f(grid[i]), line]);
    }
    FigureOutput::new(
        "fig3",
        vec![t],
        serde_json::json!({ "galaxy_s3": map, "nexus_5": map_n5, "grid_mbps": grid }),
    )
}

/// Fig 4: operating regions where MPTCP is most efficient for entire
/// transfers of 1/4/16 MB.
pub fn fig4() -> FigureOutput {
    let model = EnergyModel::galaxy_s3_lte();
    let cell_grid: Vec<f64> = (1..=24).map(|i| i as f64 * 0.5).collect();
    let mut t = Table::new(
        "Fig 4: WiFi interval (Mbps) where 'both' wins the whole transfer",
        &["LTE Mbps", "1 MB", "4 MB", "16 MB"],
    );
    let r1 = mptcp_region(&model, MB, &cell_grid, 6.0, 0.05);
    let r4 = mptcp_region(&model, 4 * MB, &cell_grid, 6.0, 0.05);
    let r16 = mptcp_region(&model, 16 * MB, &cell_grid, 6.0, 0.05);
    let fmt_range = |r: &Option<(f64, f64)>| match r {
        Some((lo, hi)) => format!("[{}..{}]", f(*lo), f(*hi)),
        None => "-".to_string(),
    };
    for i in 0..cell_grid.len() {
        t.row(vec![
            f(cell_grid[i]),
            fmt_range(&r1[i].wifi_range),
            fmt_range(&r4[i].wifi_range),
            fmt_range(&r16[i].wifi_range),
        ]);
    }
    let areas = (
        region_area(&r1, 0.5, 0.05),
        region_area(&r4, 0.5, 0.05),
        region_area(&r16, 0.5, 0.05),
    );
    let mut summary = Table::new("Fig 4 region areas (Mbps^2)", &["size", "area"]);
    summary.row(vec!["1 MB".into(), f(areas.0)]);
    summary.row(vec!["4 MB".into(), f(areas.1)]);
    summary.row(vec!["16 MB".into(), f(areas.2)]);
    FigureOutput::new("fig4", vec![t, summary], (r1, r4, r16))
}

/// Eq 1: the τ lower bound across WiFi conditions.
pub fn eq1() -> FigureOutput {
    let mut t = Table::new(
        "Eq 1: minimum tau (s) to collect phi=10 samples",
        &["WiFi Mbps", "RTT (ms)", "min tau (s)"],
    );
    let mut payload = Vec::new();
    for &(bw, rtt_ms) in &[
        (1.0, 25u64),
        (10.0, 25),
        (10.0, 100),
        (10.0, 190),
        (25.0, 50),
    ] {
        let tau = min_tau(bw, SimDuration::from_millis(rtt_ms), 14_280, 10);
        t.row(vec![f(bw), format!("{rtt_ms}"), f(tau.as_secs_f64())]);
        payload.push((bw, rtt_ms, tau.as_secs_f64()));
    }
    FigureOutput::new("eq1", vec![t], payload)
}

// ----------------------------------------------------------------------
// §4 controlled-lab experiments
// ----------------------------------------------------------------------

fn lab_strategies() -> [Strategy; 3] {
    [
        Strategy::Mptcp,
        Strategy::emptcp_default(),
        Strategy::TcpWifi,
    ]
}

fn run_lab(make: impl Fn() -> Scenario + Sync, cfg: &Config) -> Vec<StrategySummary> {
    let strategies = lab_strategies();
    sweep_points(strategies.len(), |i| {
        summarize(&repeat_runs(&make, strategies[i], cfg.runs, cfg.seed))
    })
}

/// Fig 5: static good WiFi.
pub fn fig5(cfg: &Config) -> FigureOutput {
    let make = || {
        let mut s = Scenario::static_good_wifi();
        s.workload = Workload::Download {
            size: cfg.bulk_size,
        };
        s
    };
    let summaries = run_lab(make, cfg);
    let t = energy_time_table("Fig 5: static good WiFi (>10 Mbps)", &summaries);
    FigureOutput::new("fig5", vec![t], summaries)
}

/// Fig 6: static bad WiFi.
pub fn fig6(cfg: &Config) -> FigureOutput {
    let make = || {
        let mut s = Scenario::static_bad_wifi();
        s.workload = Workload::Download {
            size: cfg.bulk_size,
        };
        s
    };
    let summaries = run_lab(make, cfg);
    let t = energy_time_table("Fig 6: static bad WiFi (<1 Mbps)", &summaries);
    FigureOutput::new("fig6", vec![t], summaries)
}

/// Fig 7: accumulated-energy time series under random bandwidth changes
/// (single run per strategy, traces exported).
pub fn fig7(cfg: &Config) -> FigureOutput {
    let make = || {
        let mut s = Scenario::bandwidth_changes();
        s.workload = Workload::Download {
            size: cfg.bulk_size,
        };
        s
    };
    let strategies = lab_strategies();
    let runs: Vec<RunResult> =
        sweep_points(strategies.len(), |i| run(make(), strategies[i], cfg.seed));
    let mut t = Table::new(
        "Fig 7: random WiFi bandwidth changes, single-run traces",
        &["strategy", "energy (J)", "time (s)", "trace points"],
    );
    for r in &runs {
        t.row(vec![
            r.strategy.clone(),
            f(r.energy_j),
            f(r.download_time_s),
            format!("{}", r.energy_trace.len()),
        ]);
    }
    let mut out = FigureOutput::new("fig7", vec![t], &runs);
    for r in &runs {
        let tag = r.strategy.to_lowercase().replace(' ', "_");
        out = out
            .with_csv(&format!("energy_{tag}"), r.energy_trace.to_csv())
            .with_csv(
                &format!("wifi_capacity_{tag}"),
                r.wifi_capacity_trace.to_csv(),
            );
    }
    out
}

/// Fig 8: random bandwidth changes, mean ± SEM over many runs.
pub fn fig8(cfg: &Config) -> FigureOutput {
    let make = || {
        let mut s = Scenario::bandwidth_changes();
        s.workload = Workload::Download {
            size: cfg.bulk_size,
        };
        s
    };
    let runs = (cfg.runs * 2).max(2); // the paper uses 10 here
    let strategies = lab_strategies();
    let summaries: Vec<StrategySummary> = sweep_points(strategies.len(), |i| {
        summarize(&repeat_runs(make, strategies[i], runs, cfg.seed))
    });
    let t = energy_time_table("Fig 8: random WiFi bandwidth changes", &summaries);
    FigureOutput::new("fig8", vec![t], summaries)
}

/// Fig 9: throughput traces with background traffic (n=2, λoff=0.025).
pub fn fig9(cfg: &Config) -> FigureOutput {
    let make = || {
        let mut s = Scenario::background_traffic(2, 0.025);
        s.workload = Workload::Download {
            size: cfg.bulk_size,
        };
        s
    };
    let strategies = [Strategy::Mptcp, Strategy::emptcp_default()];
    let mut pair = sweep_points(strategies.len(), |i| run(make(), strategies[i], cfg.seed));
    let emptcp = pair.pop().expect("two runs");
    let mptcp = pair.pop().expect("two runs");
    let mut t = Table::new(
        "Fig 9: background traffic traces (n=2, lambda_off=0.025)",
        &["strategy", "wifi MB", "cell MB", "time (s)"],
    );
    for r in [&mptcp, &emptcp] {
        t.row(vec![
            r.strategy.clone(),
            f(r.wifi_bytes as f64 / MB as f64),
            f(r.cell_bytes as f64 / MB as f64),
            f(r.download_time_s),
        ]);
    }
    let mut out = FigureOutput::new("fig9", vec![t], (&mptcp, &emptcp));
    for r in [&mptcp, &emptcp] {
        let tag = r.strategy.to_lowercase().replace(' ', "_");
        out = out
            .with_csv(&format!("wifi_{tag}"), r.wifi_thpt_trace.to_csv())
            .with_csv(&format!("lte_{tag}"), r.cell_thpt_trace.to_csv());
    }
    out
}

/// Fig 10: background-traffic sweep, energy and time relative to MPTCP.
pub fn fig10(cfg: &Config) -> FigureOutput {
    let combos = [(2usize, 0.025f64), (3, 0.025), (3, 0.05)];
    let mut t = Table::new(
        "Fig 10: relative to MPTCP (100%), background traffic",
        &["setting", "strategy", "energy %", "time %"],
    );
    let mut payload = Vec::new();
    // One sweep point per (n, λoff) combination; each point needs its
    // MPTCP baseline before the relative numbers, so the three strategies
    // stay nested inside the point.
    let cells = sweep_points(combos.len(), |ci| {
        let (n, loff) = combos[ci];
        let make = || {
            let mut s = Scenario::background_traffic(n, loff);
            s.workload = Workload::Download {
                size: cfg.bulk_size,
            };
            s
        };
        let base = summarize(&repeat_runs(make, Strategy::Mptcp, cfg.runs, cfg.seed));
        [Strategy::emptcp_default(), Strategy::TcpWifi]
            .into_iter()
            .map(|st| {
                let s = summarize(&repeat_runs(make, st, cfg.runs, cfg.seed));
                let e_pct = 100.0 * s.energy.mean / base.energy.mean;
                let t_pct = 100.0 * s.time.mean / base.time.mean;
                (n, loff, s.strategy.clone(), e_pct, t_pct)
            })
            .collect::<Vec<_>>()
    });
    for (n, loff, strategy, e_pct, t_pct) in cells.into_iter().flatten() {
        t.row(vec![
            format!("n={n}, loff={loff}"),
            strategy.clone(),
            f(e_pct),
            f(t_pct),
        ]);
        payload.push((n, loff, strategy, e_pct, t_pct));
    }
    FigureOutput::new("fig10", vec![t], payload)
}

/// Fig 12: mobility accumulated-energy traces (single run per strategy).
pub fn fig12(cfg: &Config) -> FigureOutput {
    let make = Scenario::mobility;
    let strategies = lab_strategies();
    let runs: Vec<RunResult> =
        sweep_points(strategies.len(), |i| run(make(), strategies[i], cfg.seed));
    let mut t = Table::new(
        "Fig 12: mobility walk, single-run summary",
        &["strategy", "energy (J)", "downloaded MB", "J/MB"],
    );
    for r in &runs {
        t.row(vec![
            r.strategy.clone(),
            f(r.energy_j),
            f(r.bytes_delivered as f64 / MB as f64),
            f(r.energy_j / (r.bytes_delivered as f64 / MB as f64)),
        ]);
    }
    let mut out = FigureOutput::new("fig12", vec![t], &runs);
    for r in &runs {
        let tag = r.strategy.to_lowercase().replace(' ', "_");
        out = out.with_csv(&format!("energy_{tag}"), r.energy_trace.to_csv());
    }
    out
}

/// Fig 13: mobility, per-byte energy and download amount (mean ± SEM).
pub fn fig13(cfg: &Config) -> FigureOutput {
    let make = Scenario::mobility;
    let mut t = Table::new(
        "Fig 13: mobility walk over 250 s",
        &["strategy", "uJ/byte", "downloaded (MB)"],
    );
    let mut payload = Vec::new();
    let strategies = lab_strategies();
    let per_strategy = sweep_points(strategies.len(), |i| {
        repeat_runs(make, strategies[i], cfg.runs, cfg.seed)
    });
    for (&st, results) in strategies.iter().zip(&per_strategy) {
        let jpb = MeanSem::of(
            &results
                .iter()
                .map(|r| r.joules_per_byte * 1e6)
                .collect::<Vec<_>>(),
        );
        let amount = MeanSem::of(
            &results
                .iter()
                .map(|r| r.bytes_delivered as f64 / MB as f64)
                .collect::<Vec<_>>(),
        );
        t.row(vec![
            st.label().to_string(),
            pm(jpb.mean, jpb.sem),
            pm(amount.mean, amount.sem),
        ]);
        payload.push((st.label().to_string(), jpb, amount));
    }
    FigureOutput::new("fig13", vec![t], payload)
}

/// §4.6: WiFi-First and the MDP scheduler against eMPTCP.
pub fn sec46(cfg: &Config) -> FigureOutput {
    let policy = MdpPolicy::pluntke(&EnergyModel::galaxy_s3_lte());
    let mut policy_table = Table::new(
        "Sec 4.6: Pluntke MDP policy structure",
        &["metric", "value"],
    );
    policy_table.row(vec![
        "WiFi-only fraction of states".into(),
        f(policy.wifi_only_fraction()),
    ]);
    policy_table.row(vec!["demand (Mbps)".into(), f(policy.demand_mbps())]);

    // Compare on the mobility scenario (where WiFi-First's weakness shows:
    // the WiFi association never breaks, so it degenerates to TCP/WiFi).
    let make = Scenario::mobility;
    let strategies = [
        Strategy::emptcp_default(),
        Strategy::WifiFirst,
        Strategy::MdpScheduler,
        Strategy::TcpWifi,
    ];
    let mut t = Table::new(
        "Sec 4.6: existing approaches on the mobility walk",
        &["strategy", "energy (J)", "downloaded MB", "cell MB"],
    );
    let mut payload = Vec::new();
    let per_strategy = sweep_points(strategies.len(), |i| {
        repeat_runs(make, strategies[i], cfg.runs, cfg.seed)
    });
    for (&st, results) in strategies.iter().zip(&per_strategy) {
        let e = MeanSem::of(&results.iter().map(|r| r.energy_j).collect::<Vec<_>>());
        let dl = MeanSem::of(
            &results
                .iter()
                .map(|r| r.bytes_delivered as f64 / MB as f64)
                .collect::<Vec<_>>(),
        );
        let cell = results.iter().map(|r| r.cell_bytes as f64).sum::<f64>()
            / results.len() as f64
            / MB as f64;
        t.row(vec![
            st.label().to_string(),
            pm(e.mean, e.sem),
            pm(dl.mean, dl.sem),
            f(cell),
        ]);
        payload.push((st.label().to_string(), e, dl, cell));
    }
    FigureOutput::new("sec46", vec![policy_table, t], payload)
}

/// Extension: the handover scenario (WiFi association lost for 30 s
/// mid-download) across every strategy — the §4.6 comparison on the case
/// Single-Path mode and WiFi-First were actually built for.
pub fn handover(cfg: &Config) -> FigureOutput {
    let make = Scenario::wifi_outage;
    let strategies = [
        Strategy::Mptcp,
        Strategy::emptcp_default(),
        Strategy::TcpWifi,
        Strategy::WifiFirst,
        Strategy::SinglePath,
    ];
    let mut t = Table::new(
        "Extension: 64 MB download across a 30 s WiFi association outage",
        &[
            "strategy",
            "energy (J)",
            "time (s)",
            "cell MB",
            "promotions",
        ],
    );
    let mut payload = Vec::new();
    let per_strategy = sweep_points(strategies.len(), |i| {
        repeat_runs(make, strategies[i], cfg.runs, cfg.seed)
    });
    for (&st, results) in strategies.iter().zip(&per_strategy) {
        let e = MeanSem::of(&results.iter().map(|r| r.energy_j).collect::<Vec<_>>());
        let time = MeanSem::of(
            &results
                .iter()
                .map(|r| r.download_time_s)
                .collect::<Vec<_>>(),
        );
        let cell = results.iter().map(|r| r.cell_bytes as f64).sum::<f64>()
            / results.len() as f64
            / MB as f64;
        let promos =
            results.iter().map(|r| r.promotions).sum::<u64>() as f64 / results.len() as f64;
        t.row(vec![
            st.label().to_string(),
            pm(e.mean, e.sem),
            pm(time.mean, time.sem),
            f(cell),
            f(promos),
        ]);
        payload.push((st.label().to_string(), e, time, cell, promos));
    }
    FigureOutput::new("handover", vec![t], payload)
}

// ----------------------------------------------------------------------
// §5 in-the-wild
// ----------------------------------------------------------------------

fn whisker_tables(title: &str, traces: &[WildTrace]) -> (Vec<Table>, serde_json::Value) {
    let mut tables = Vec::new();
    let mut payload = serde_json::Map::new();
    for cat in Category::ALL {
        let in_cat: Vec<&WildTrace> = traces.iter().filter(|t| t.category == cat).collect();
        let mut t = Table::new(
            format!("{title} — {} (n={})", cat.label(), in_cat.len()),
            &[
                "strategy",
                "median E (J)",
                "Q1..Q3 E",
                "median T (s)",
                "Q1..Q3 T",
            ],
        );
        let mut cat_payload = serde_json::Map::new();
        for (label, extract) in [("MPTCP", 0usize), ("eMPTCP", 1), ("TCP over WiFi", 2)] {
            fn pick(tr: &WildTrace, which: usize) -> &RunResult {
                match which {
                    0 => &tr.mptcp,
                    1 => &tr.emptcp,
                    _ => &tr.tcp_wifi,
                }
            }
            let energies: Vec<f64> = in_cat.iter().map(|tr| pick(tr, extract).energy_j).collect();
            let times: Vec<f64> = in_cat
                .iter()
                .map(|tr| pick(tr, extract).download_time_s)
                .collect();
            match (WhiskerSummary::of(&energies), WhiskerSummary::of(&times)) {
                (Some(we), Some(wt)) => {
                    t.row(vec![
                        label.to_string(),
                        f(we.median),
                        format!("{}..{}", f(we.q1), f(we.q3)),
                        f(wt.median),
                        format!("{}..{}", f(wt.q1), f(wt.q3)),
                    ]);
                    cat_payload.insert(
                        label.to_string(),
                        serde_json::json!({ "energy": we, "time": wt }),
                    );
                }
                _ => t.row(vec![
                    label.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
        tables.push(t);
        payload.insert(
            cat.label().to_string(),
            serde_json::Value::Object(cat_payload),
        );
    }
    (tables, serde_json::Value::Object(payload))
}

/// Fig 14: the wild-trace scatter and categorization (16 MB downloads).
pub fn fig14(traces: &[WildTrace]) -> FigureOutput {
    let mut t = Table::new(
        "Fig 14: trace categories (16 MB downloads)",
        &["category", "traces", "share %"],
    );
    let total = traces.len().max(1);
    for cat in Category::ALL {
        let n = traces.iter().filter(|tr| tr.category == cat).count();
        t.row(vec![
            cat.label().to_string(),
            format!("{n}"),
            f(100.0 * n as f64 / total as f64),
        ]);
    }
    let scatter: Vec<(f64, f64, String)> = traces
        .iter()
        .map(|tr| {
            (
                tr.mptcp.avg_wifi_mbps,
                tr.mptcp.avg_cell_mbps,
                format!("{:?}", tr.category),
            )
        })
        .collect();
    FigureOutput::new("fig14", vec![t], scatter)
}

/// Fig 15: small (256 KB) transfers in the wild.
pub fn fig15(cfg: &Config) -> FigureOutput {
    let traces = wild::run_study(256 * KB, cfg.wild_iterations, cfg.seed ^ 0x55);
    let (tables, payload) = whisker_tables("Fig 15: 256 KB downloads", &traces);
    FigureOutput::new("fig15", tables, payload)
}

/// Fig 16 (and the Fig 14 scatter): large transfers in the wild.
pub fn fig16(cfg: &Config) -> (FigureOutput, Vec<WildTrace>) {
    let traces = wild::run_study(cfg.large_size, cfg.wild_iterations, cfg.seed ^ 0xAA);
    let (tables, payload) = whisker_tables("Fig 16: 16 MB downloads", &traces);
    (FigureOutput::new("fig16", tables, payload), traces)
}

/// Fig 17: the web-browsing case study.
pub fn fig17(cfg: &Config) -> FigureOutput {
    let make = Scenario::web_browsing;
    let strategies = lab_strategies();
    let summaries: Vec<StrategySummary> = sweep_points(strategies.len(), |i| {
        summarize(&repeat_runs(make, strategies[i], cfg.runs.max(3), cfg.seed))
    });
    let mut t = Table::new(
        "Fig 17: web browsing (107 objects, 6 connections)",
        &["strategy", "energy (J)", "latency (s)", "cell MB"],
    );
    for s in &summaries {
        t.row(vec![
            s.strategy.clone(),
            pm(s.energy.mean, s.energy.sem),
            pm(s.time.mean, s.time.sem),
            f(s.cell_bytes / MB as f64),
        ]);
    }
    FigureOutput::new("fig17", vec![t], summaries)
}

/// Extension: both Table 1 devices and both cellular radios through the
/// same 16 MB bad-WiFi download — the device dimension the paper carries
/// through Figs 1/3 but only evaluates on the Galaxy S3.
pub fn devices(cfg: &Config) -> FigureOutput {
    use emptcp_energy::DeviceProfile;
    use emptcp_phy::IfaceKind;
    let mut t = Table::new(
        "Extension: device/radio grid, 16 MB download on bad WiFi",
        &["device", "radio", "strategy", "energy (J)", "time (s)"],
    );
    let mut payload = Vec::new();
    let grid: Vec<(&str, DeviceProfile, IfaceKind)> = [
        ("Galaxy S3", DeviceProfile::galaxy_s3()),
        ("Nexus 5", DeviceProfile::nexus_5()),
    ]
    .into_iter()
    .flat_map(|(dev_name, profile)| {
        [IfaceKind::CellularLte, IfaceKind::Cellular3g]
            .into_iter()
            .map(move |kind| (dev_name, profile.clone(), kind))
    })
    .collect();
    // One sweep point per (device, radio) cell.
    let cells = sweep_points(grid.len(), |gi| {
        let (dev_name, profile, kind) = &grid[gi];
        let make = || {
            let mut s = Scenario::static_bad_wifi();
            s.workload = Workload::Download { size: 16 * MB };
            s.profile = profile.clone();
            s.cell_kind = *kind;
            // 3G tops out far lower than LTE.
            if *kind == IfaceKind::Cellular3g {
                s.cell_bps = 3_000_000;
            }
            s
        };
        [Strategy::Mptcp, Strategy::emptcp_default()]
            .into_iter()
            .map(|st| {
                let results = repeat_runs(make, st, cfg.runs.min(3), cfg.seed);
                let e = MeanSem::of(&results.iter().map(|r| r.energy_j).collect::<Vec<_>>());
                let time = MeanSem::of(
                    &results
                        .iter()
                        .map(|r| r.download_time_s)
                        .collect::<Vec<_>>(),
                );
                (*dev_name, kind.label(), st.label().to_string(), e, time)
            })
            .collect::<Vec<_>>()
    });
    for (dev_name, kind_label, st_label, e, time) in cells.into_iter().flatten() {
        t.row(vec![
            dev_name.to_string(),
            kind_label.to_string(),
            st_label.clone(),
            pm(e.mean, e.sem),
            pm(time.mean, time.sem),
        ]);
        payload.push((dev_name, kind_label, st_label, e, time));
    }
    FigureOutput::new("devices", vec![t], payload)
}

/// Extension: ablations of eMPTCP's design choices, quantifying what each
/// mechanism buys (DESIGN.md §5/§8 call these out).
pub fn ablations(cfg: &Config) -> FigureOutput {
    use emptcp::EmptcpConfig;
    use emptcp_sim::SimDuration;

    let make = || {
        let mut s = Scenario::bandwidth_changes();
        s.workload = Workload::Download {
            size: cfg.bulk_size,
        };
        s
    };
    let variants: Vec<(&str, EmptcpConfig)> = vec![
        ("default", EmptcpConfig::default()),
        ("no hysteresis", {
            let mut c = EmptcpConfig::default();
            c.controller.safety_factor = 0.0;
            c
        }),
        ("no dwell", {
            let mut c = EmptcpConfig::default();
            c.controller.min_dwell = SimDuration::ZERO;
            c
        }),
        ("no hysteresis, no dwell", {
            let mut c = EmptcpConfig::default();
            c.controller.safety_factor = 0.0;
            c.controller.min_dwell = SimDuration::ZERO;
            c
        }),
        ("adaptive tau", {
            let mut c = EmptcpConfig::default();
            c.delay.adaptive_tau = true;
            c
        }),
        ("cellular-only allowed", {
            let mut c = EmptcpConfig::default();
            c.controller.allow_cellular_only = true;
            c
        }),
        ("kappa = 64 kB", {
            let mut c = EmptcpConfig::default();
            c.delay.kappa_bytes = 64 << 10;
            c
        }),
        // Forecaster ablations (§3.2 argues for Holt-Winters): last-sample
        // is Holt-Winters with alpha=1/beta=0, EWMA is beta=0.
        (
            "last-sample predictor",
            EmptcpConfig {
                predictor_alpha: 1.0,
                predictor_beta: 0.0,
                ..EmptcpConfig::default()
            },
        ),
        (
            "ewma predictor (no trend)",
            EmptcpConfig {
                predictor_beta: 0.0,
                ..EmptcpConfig::default()
            },
        ),
    ];
    let mut t = Table::new(
        "Extension: eMPTCP ablations on random WiFi bandwidth changes",
        &[
            "variant",
            "energy (J)",
            "time (s)",
            "switches",
            "promotions",
        ],
    );
    let mut payload = Vec::new();
    // One sweep point per ablation variant.
    let per_variant = sweep_points(variants.len(), |vi| {
        repeat_runs(make, Strategy::Emptcp(variants[vi].1), cfg.runs, cfg.seed)
    });
    for ((name, _), results) in variants.iter().zip(&per_variant) {
        let e = MeanSem::of(&results.iter().map(|r| r.energy_j).collect::<Vec<_>>());
        let time = MeanSem::of(
            &results
                .iter()
                .map(|r| r.download_time_s)
                .collect::<Vec<_>>(),
        );
        let switches =
            results.iter().map(|r| r.usage_switches).sum::<u64>() as f64 / results.len() as f64;
        let promos =
            results.iter().map(|r| r.promotions).sum::<u64>() as f64 / results.len() as f64;
        t.row(vec![
            name.to_string(),
            pm(e.mean, e.sem),
            pm(time.mean, time.sem),
            f(switches),
            f(promos),
        ]);
        payload.push((name.to_string(), e, time, switches, promos));
    }
    FigureOutput::new("ablations", vec![t], payload)
}

/// Extension (paper §7 future work): a 64 MB upload from the device.
pub fn upload(cfg: &Config) -> FigureOutput {
    let make = || {
        let mut s = Scenario::upload();
        s.workload = Workload::Upload {
            size: cfg.bulk_size.min(64 * MB),
        };
        s
    };
    let strategies = [
        Strategy::Mptcp,
        Strategy::emptcp_default(),
        Strategy::TcpWifi,
    ];
    let summaries: Vec<_> = sweep_points(strategies.len(), |i| {
        summarize(&repeat_runs(make, strategies[i], cfg.runs, cfg.seed))
    });
    let t = energy_time_table("Extension: upload over good WiFi", &summaries);
    FigureOutput::new("upload", vec![t], summaries)
}

/// Extension (paper §7 future work): chunked video streaming over a
/// bandwidth-modulated AP; the metric that matters is rebuffer events.
pub fn streaming(cfg: &Config) -> FigureOutput {
    let make = Scenario::streaming;
    let mut t = Table::new(
        "Extension: 1 MB / 4 s video streaming over modulated WiFi (200 s)",
        &[
            "strategy",
            "energy (J)",
            "rebuffers",
            "delivered MB",
            "cell MB",
        ],
    );
    let mut payload = Vec::new();
    let strategies = [
        Strategy::Mptcp,
        Strategy::emptcp_default(),
        Strategy::TcpWifi,
        Strategy::WifiFirst,
    ];
    let per_strategy = sweep_points(strategies.len(), |i| {
        repeat_runs(make, strategies[i], cfg.runs, cfg.seed)
    });
    for (&st, results) in strategies.iter().zip(&per_strategy) {
        let e = MeanSem::of(&results.iter().map(|r| r.energy_j).collect::<Vec<_>>());
        let rebuffers = MeanSem::of(
            &results
                .iter()
                .map(|r| r.rebuffer_events as f64)
                .collect::<Vec<_>>(),
        );
        let delivered = results
            .iter()
            .map(|r| r.bytes_delivered as f64)
            .sum::<f64>()
            / results.len() as f64
            / MB as f64;
        let cell = results.iter().map(|r| r.cell_bytes as f64).sum::<f64>()
            / results.len() as f64
            / MB as f64;
        t.row(vec![
            st.label().to_string(),
            pm(e.mean, e.sem),
            pm(rebuffers.mean, rebuffers.sem),
            f(delivered),
            f(cell),
        ]);
        payload.push((st.label().to_string(), e, rebuffers, delivered, cell));
    }
    FigureOutput::new("streaming", vec![t], payload)
}

/// Extension: where MPTCP's extra joules go — per-RRC-state cellular
/// energy for a 16 MB good-WiFi download (the fixed-overhead story of
/// §2.3/Fig 1, read off the meter instead of the model).
pub fn breakdown(cfg: &Config) -> FigureOutput {
    let make = || {
        let mut s = Scenario::static_good_wifi();
        s.workload = Workload::Download { size: 16 * MB };
        s
    };
    let mut t = Table::new(
        "Extension: cellular energy by RRC state, 16 MB on good WiFi",
        &[
            "strategy",
            "total (J)",
            "promotion (J)",
            "tail (J)",
            "tail share %",
        ],
    );
    let mut payload = Vec::new();
    let strategies = [
        Strategy::Mptcp,
        Strategy::emptcp_default(),
        Strategy::TcpCellular,
        Strategy::WifiFirst,
    ];
    let per_strategy = sweep_points(strategies.len(), |i| {
        repeat_runs(make, strategies[i], cfg.runs.min(3), cfg.seed)
    });
    for (&st, results) in strategies.iter().zip(&per_strategy) {
        let total = results.iter().map(|r| r.energy_j).sum::<f64>() / results.len() as f64;
        let promo = results.iter().map(|r| r.promo_energy_j).sum::<f64>() / results.len() as f64;
        let tail = results.iter().map(|r| r.tail_energy_j).sum::<f64>() / results.len() as f64;
        t.row(vec![
            st.label().to_string(),
            f(total),
            f(promo),
            f(tail),
            f(100.0 * tail / total.max(1e-9)),
        ]);
        payload.push((st.label().to_string(), total, promo, tail));
    }
    FigureOutput::new("breakdown", vec![t], payload)
}

/// Extension: how fast may the environment change before eMPTCP's
/// switching overhead eats its savings? §4.3 predicts the erosion; this
/// sweeps the modulation holding time.
pub fn sweep_hold(cfg: &Config) -> FigureOutput {
    let mut t = Table::new(
        "Extension: eMPTCP vs MPTCP as WiFi modulation speeds up",
        &[
            "mean hold (s)",
            "eMPTCP energy %",
            "eMPTCP time %",
            "switches",
            "promotions",
        ],
    );
    let mut payload = Vec::new();
    let holds = [10.0f64, 20.0, 40.0, 80.0];
    // One sweep point per holding time.
    let cells = sweep_points(holds.len(), |hi| {
        let hold = holds[hi];
        let make = || {
            let mut s = Scenario::bandwidth_changes();
            s.wifi = crate::scenario::WifiEnvironment::Modulated {
                mean_hold_s: hold,
                start_high: false,
            };
            s.workload = Workload::Download {
                size: cfg.bulk_size,
            };
            s
        };
        let base = summarize(&repeat_runs(make, Strategy::Mptcp, cfg.runs, cfg.seed));
        let results = repeat_runs(make, Strategy::emptcp_default(), cfg.runs, cfg.seed);
        let me = summarize(&results);
        let switches =
            results.iter().map(|r| r.usage_switches).sum::<u64>() as f64 / results.len() as f64;
        let promos =
            results.iter().map(|r| r.promotions).sum::<u64>() as f64 / results.len() as f64;
        let e_pct = 100.0 * me.energy.mean / base.energy.mean;
        let t_pct = 100.0 * me.time.mean / base.time.mean;
        (hold, e_pct, t_pct, switches, promos)
    });
    for (hold, e_pct, t_pct, switches, promos) in cells {
        t.row(vec![f(hold), f(e_pct), f(t_pct), f(switches), f(promos)]);
        payload.push((hold, e_pct, t_pct, switches, promos));
    }
    FigureOutput::new("sweep_hold", vec![t], payload)
}

/// Extension: the kappa design space — delayed-establishment threshold
/// versus transfer size (§4.1 leaves tuning kappa as future work).
pub fn sweep_kappa(cfg: &Config) -> FigureOutput {
    use emptcp::EmptcpConfig;
    let mut t = Table::new(
        "Extension: energy (J) by kappa x transfer size, bad WiFi",
        &["kappa", "256 kB", "1 MB", "16 MB"],
    );
    let mut payload = Vec::new();
    let kappas = [64u64 << 10, 256 << 10, 1 << 20, 4 << 20];
    let sizes = [256u64 << 10, 1 << 20, 16 << 20];
    // Every (kappa, size) cell is an independent sweep point.
    let cells = sweep_points(kappas.len() * sizes.len(), |i| {
        let kappa = kappas[i / sizes.len()];
        let size = sizes[i % sizes.len()];
        let make = || {
            let mut s = Scenario::static_bad_wifi();
            s.workload = Workload::Download { size };
            s
        };
        let mut c = EmptcpConfig::default();
        c.delay.kappa_bytes = kappa;
        let results = repeat_runs(make, Strategy::Emptcp(c), cfg.runs.min(3), cfg.seed);
        results.iter().map(|r| r.energy_j).sum::<f64>() / results.len() as f64
    });
    for (ki, &kappa) in kappas.iter().enumerate() {
        let mut row = vec![format!("{} kB", kappa >> 10)];
        let mut row_data = Vec::new();
        for (si, &size) in sizes.iter().enumerate() {
            let e = cells[ki * sizes.len() + si];
            row.push(f(e));
            row_data.push((size, e));
        }
        t.row(row);
        payload.push((kappa, row_data));
    }
    FigureOutput::new("sweep_kappa", vec![t], payload)
}

// ----------------------------------------------------------------------
// Fleet extensions: many clients behind one bottleneck (emptcp-net)
// ----------------------------------------------------------------------

/// Extension: a `cfg.fleet_clients`-strong fleet (half MPTCP, half TCP)
/// behind one 100 Mbps core bottleneck with bursty cross-traffic, LIA
/// coupling versus uncoupled per-subflow Reno. The LIA row is the "do no
/// harm" story at population scale; the uncoupled row is the ablation
/// showing what coupling buys the single-path clients.
pub fn fleet(cfg: &Config) -> FigureOutput {
    use emptcp_net::{FleetConfig, ShardedFleetSim};
    let variants = [("MPTCP (LIA)", true), ("MPTCP uncoupled", false)];
    let shards = cfg.fleet_shard_count();
    // Variants run sequentially; parallelism lives *inside* each run,
    // where the sharded engine fans every epoch's shards out across the
    // worker pool. The report is byte-identical for every (jobs, shards).
    let reports: Vec<_> = variants
        .iter()
        .map(|&(_, coupled)| {
            let mut fc = FleetConfig::contended(cfg.fleet_clients, cfg.seed);
            fc.duration = SimDuration::from_secs(5);
            fc.coupled = coupled;
            ShardedFleetSim::new_with_telemetry(fc, shards, emptcp_telemetry::current())
                .run_with(&RunnerShardExecutor)
        })
        .collect();
    // The shard count must NOT appear in the table or payload: exports
    // are diffed across `--shards` values to certify the partition is
    // invisible.
    let mut t = Table::new(
        format!(
            "Extension: {} clients share a 100 Mbps core (fleet harness)",
            cfg.fleet_clients
        ),
        &[
            "variant",
            "aggregate (Mbps)",
            "MPTCP mean",
            "TCP mean",
            "MPTCP/TCP",
            "Jain",
            "drops",
            "ECN marks",
            "peak queue kB",
            "pkts forwarded",
        ],
    );
    let mut payload = Vec::new();
    for ((label, _), r) in variants.iter().zip(&reports) {
        t.row(vec![
            label.to_string(),
            f(r.aggregate_mbps),
            f(r.mptcp_mean_mbps),
            f(r.tcp_mean_mbps),
            f(r.mptcp_tcp_ratio),
            f(r.jain_index),
            r.bottleneck_drops.to_string(),
            r.bottleneck_ecn_marks.to_string(),
            (r.bottleneck_peak_queue_bytes >> 10).to_string(),
            r.packets_forwarded.to_string(),
        ]);
        payload.push((label.to_string(), r.clone()));
    }
    FigureOutput::new("fleet", vec![t], payload)
}

/// Bridge from the experiment runner's worker pool to the sharded fleet
/// engine: each epoch's shard closures fan out as indexed points on the
/// [`runner::current`] pool (and, like every other exhibit, fall back to
/// the calling thread while a trace is being recorded).
struct RunnerShardExecutor;

impl emptcp_net::ShardExecutor for RunnerShardExecutor {
    fn run_indexed(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        runner::run_points(n, f);
    }
}

/// Extension: the minimal "do no harm" cell — one MPTCP client (two
/// subflows) against one TCP client on a tight shared bottleneck, LIA
/// versus uncoupled. With LIA the MPTCP aggregate stays near the TCP
/// flow's share; uncoupled it takes roughly two flows' worth.
pub fn fairness(cfg: &Config) -> FigureOutput {
    use emptcp_net::FleetSim;
    let variants = [("MPTCP (LIA)", true), ("MPTCP uncoupled", false)];
    let reports = sweep_points(variants.len(), |i| {
        let mut fc = emptcp_net::FleetConfig::do_no_harm_cell(cfg.seed);
        fc.coupled = variants[i].1;
        FleetSim::new_with_telemetry(fc, emptcp_telemetry::current()).run()
    });
    let mut t = Table::new(
        "Extension: do-no-harm at a shared bottleneck (1 MPTCP vs 1 TCP)",
        &["variant", "MPTCP (Mbps)", "TCP (Mbps)", "MPTCP/TCP", "Jain"],
    );
    let mut payload = Vec::new();
    for ((label, _), r) in variants.iter().zip(&reports) {
        t.row(vec![
            label.to_string(),
            f(r.mptcp_mean_mbps),
            f(r.tcp_mean_mbps),
            f(r.mptcp_tcp_ratio),
            f(r.jain_index),
        ]);
        payload.push((label.to_string(), r.clone()));
    }
    FigureOutput::new("fairness", vec![t], payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_only_figures_render() {
        for out in [table1(), fig1(), table2(), fig3(), fig4(), eq1()] {
            let text = out.render();
            assert!(text.contains("=="), "{}", out.id);
            assert!(!out.tables.is_empty());
        }
    }

    #[test]
    fn fig5_quick_shape() {
        let cfg = Config::quick();
        let out = fig5(&cfg);
        let text = out.render();
        assert!(text.contains("MPTCP"));
        assert!(text.contains("eMPTCP"));
        assert!(text.contains("TCP over WiFi"));
        // The headline claim at small scale: eMPTCP beats MPTCP on energy
        // with good WiFi.
        let payload = out.json.as_array().expect("summaries");
        let energy = |name: &str| -> f64 {
            payload
                .iter()
                .find(|v| v["strategy"] == name)
                .map(|v| v["energy"]["mean"].as_f64().unwrap())
                .expect("strategy present")
        };
        assert!(energy("eMPTCP") < energy("MPTCP"));
    }

    #[test]
    fn fig17_web_quick() {
        let mut cfg = Config::quick();
        cfg.runs = 1;
        let out = fig17(&cfg);
        assert!(out.render().contains("web browsing"));
    }

    #[test]
    fn extension_runners_produce_tables() {
        let mut cfg = Config::quick();
        cfg.runs = 1;
        cfg.bulk_size = 2 << 20;
        for (out, needle) in [
            (handover(&cfg), "association outage"),
            (upload(&cfg), "upload"),
            (breakdown(&cfg), "RRC state"),
        ] {
            let text = out.render();
            assert!(text.contains(needle), "{}: {text}", out.id);
            assert!(!out.tables.is_empty());
        }
    }

    #[test]
    fn fig7_exports_trace_csvs() {
        let mut cfg = Config::quick();
        cfg.bulk_size = 2 << 20;
        let out = fig7(&cfg);
        assert!(out.csvs.len() >= 2, "expected trace CSVs");
        for (suffix, csv) in &out.csvs {
            assert!(csv.starts_with("time_s,value\n"), "{suffix}");
            assert!(csv.lines().count() > 2, "{suffix} CSV empty");
        }
    }

    #[test]
    fn sweeps_are_monotone_in_structure() {
        let mut cfg = Config::quick();
        cfg.runs = 1;
        cfg.bulk_size = 2 << 20;
        let hold = sweep_hold(&cfg);
        assert_eq!(hold.tables[0].len(), 4);
        let kappa = sweep_kappa(&cfg);
        assert_eq!(kappa.tables[0].len(), 4);
    }
}
