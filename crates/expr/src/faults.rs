//! Fault scenarios bound to the full host simulation.
//!
//! The `emptcp-faults` crate defines *what* goes wrong (named, scripted
//! [`FaultPlan`]s); this module defines *how it is measured*: each named
//! scenario is run twice with the same seed — once fault-free as the
//! baseline, once with the plan attached — and the two runs are folded
//! into a [`ResilienceReport`]: goodput retained, recovery latency, bytes
//! reinjected, and the energy cost of surviving the fault. The online
//! invariant observer rides along on the faulted run, so a report also
//! certifies that the byte stream survived intact.
//!
//! [`FaultPlan`]: emptcp_faults::FaultPlan

use crate::host::Simulation;
use crate::scenario::{Scenario, Workload};
use crate::strategy::Strategy;
use emptcp_faults::scenarios;
use emptcp_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

/// Download size every fault run moves: large enough that every scenario's
/// fault window lands mid-transfer, small enough for CI.
pub const TRANSFER_BYTES: u64 = 16 << 20;

/// The strategy a named fault scenario exercises. Cellular-side faults
/// need a strategy that has a cellular subflow up *before* the fault
/// hits; WiFi-side faults are most interesting under eMPTCP, whose
/// controller normally keeps cellular asleep and must wake it to recover.
pub fn strategy_for(name: &str) -> Strategy {
    match name {
        // A congested core hits every path at once, so it also wants both
        // subflows live before the collapse.
        "lte-tunnel" | "congested_core" => Strategy::Mptcp,
        _ => Strategy::emptcp_default(),
    }
}

/// The environment every fault scenario runs in: good static WiFi and LTE,
/// so every slowdown and recovery in the report is attributable to the
/// injected faults rather than to environmental noise.
pub fn base_scenario(name: &str) -> Scenario {
    let mut s = Scenario::static_good_wifi();
    s.name = format!("faults/{name}");
    s.workload = Workload::Download {
        size: TRANSFER_BYTES,
    };
    s
}

/// Everything the `simulate faults` CLI prints about one scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Fault scenario name (see [`emptcp_faults::scenarios::all`]).
    pub scenario: String,
    /// Strategy label the scenario ran under.
    pub strategy: String,
    /// Seed shared by the baseline and the faulted run.
    pub seed: u64,
    /// Bytes the workload was asked to move.
    pub size_bytes: u64,
    /// The faulted run finished before the horizon.
    pub completed: bool,
    /// Bytes actually delivered to the client under faults.
    pub bytes_delivered: u64,
    /// Fault-free completion time (s).
    pub baseline_time_s: f64,
    /// Completion time under faults (s).
    pub faulted_time_s: f64,
    /// Faulted goodput as a fraction of fault-free goodput.
    pub goodput_retained: f64,
    /// Fault-free energy to completion, drain included (J).
    pub baseline_energy_j: f64,
    /// Energy under faults (J).
    pub faulted_energy_j: f64,
    /// Extra energy the faults cost (J; can be negative when a fault
    /// ends a radio tail early).
    pub energy_overhead_j: f64,
    /// Fault events the injector applied.
    pub faults_injected: u64,
    /// Link-down notifications the stack received (both ends).
    pub link_down_events: u64,
    /// Subflows declared dead by the consecutive-RTO detector.
    pub subflow_failures: u64,
    /// Backup subflows promoted into service.
    pub backup_promotions: u64,
    /// Dead subflows that came back.
    pub subflow_revivals: u64,
    /// Data-level bytes queued for reinjection on surviving subflows.
    pub bytes_reinjected: u64,
    /// Worst failure-to-progress latency (s; 0 when nothing failed).
    pub worst_recovery_latency_s: f64,
    /// Online invariant violations observed during the faulted run.
    pub invariant_violations: u64,
}

/// Run one named scenario with a fresh invariant-checking telemetry
/// pipeline. Returns `None` for an unknown scenario name.
pub fn run_scenario(name: &str, seed: u64) -> Option<ResilienceReport> {
    run_scenario_traced(name, seed, Telemetry::builder().invariants(true).build())
}

/// Run one named scenario with a caller-supplied telemetry pipeline on the
/// faulted run (the baseline runs uninstrumented so a trace sink sees only
/// the run the report describes). Invariant violations are read back from
/// the supplied pipeline.
pub fn run_scenario_traced(
    name: &str,
    seed: u64,
    telemetry: Telemetry,
) -> Option<ResilienceReport> {
    let plan = scenarios::plan(name)?;
    let strategy = strategy_for(name);
    let baseline = Simulation::new(base_scenario(name), strategy, seed).run();

    let mut sim =
        Simulation::new_with_telemetry(base_scenario(name), strategy, seed, telemetry.clone());
    sim.attach_faults(plan);
    let faulted = sim.run();
    let invariant_violations = telemetry.violations().len() as u64;

    let goodput = |bytes: u64, secs: f64| bytes as f64 / secs.max(1e-9);
    let base_goodput = goodput(baseline.bytes_delivered, baseline.download_time_s);
    let fault_goodput = goodput(faulted.bytes_delivered, faulted.download_time_s);
    Some(ResilienceReport {
        scenario: name.to_string(),
        strategy: strategy.label().to_string(),
        seed,
        size_bytes: TRANSFER_BYTES,
        completed: faulted.completed,
        bytes_delivered: faulted.bytes_delivered,
        baseline_time_s: baseline.download_time_s,
        faulted_time_s: faulted.download_time_s,
        goodput_retained: if base_goodput > 0.0 {
            fault_goodput / base_goodput
        } else {
            0.0
        },
        baseline_energy_j: baseline.energy_j,
        faulted_energy_j: faulted.energy_j,
        energy_overhead_j: faulted.energy_j - baseline.energy_j,
        faults_injected: faulted.faults_injected,
        link_down_events: faulted.link_down_events,
        subflow_failures: faulted.subflow_failures,
        backup_promotions: faulted.backup_promotions,
        subflow_revivals: faulted.subflow_revivals,
        bytes_reinjected: faulted.bytes_reinjected,
        worst_recovery_latency_s: faulted.worst_recovery_latency_s,
        invariant_violations,
    })
}

/// CI gate: everything a report must satisfy for `--check` to pass.
/// Returns the list of violated expectations (empty = pass). Thresholds
/// are deliberately loose — they assert *recovery happened*, not exact
/// performance numbers, so they hold across seeds.
pub fn check(report: &ResilienceReport) -> Vec<String> {
    let mut fails = Vec::new();
    let mut expect = |ok: bool, what: &str| {
        if !ok {
            fails.push(what.to_string());
        }
    };
    expect(report.completed, "transfer completed under faults");
    expect(
        report.bytes_delivered == report.size_bytes,
        "zero byte-stream gaps (delivered == requested)",
    );
    expect(
        report.invariant_violations == 0,
        "no invariant violations during the faulted run",
    );
    expect(report.faults_injected > 0, "the fault plan actually fired");
    expect(
        report.goodput_retained >= 0.25,
        "goodput retained at least 25% of fault-free",
    );
    match report.scenario.as_str() {
        "ap-vanish" | "flappy-wifi" | "handover-walk" => {
            expect(
                report.link_down_events >= 1,
                "link-down notification reached the stack",
            );
            expect(
                report.worst_recovery_latency_s > 0.0,
                "recovery latency was measured",
            );
        }
        "lte-tunnel" => {
            expect(
                report.link_down_events >= 1,
                "link-down notification reached the stack",
            );
            expect(
                report.bytes_reinjected > 0,
                "stranded cellular data was reinjected",
            );
        }
        "congested_core" => {
            // The collapse is a silent blackhole on every path: no
            // link-down notification exists, so recovery must come from
            // the consecutive-RTO failure detector and ack-progress
            // revival once the core ramps back.
            expect(
                report.subflow_failures >= 1,
                "RTO detector declared a subflow dead during the collapse",
            );
            expect(
                report.subflow_revivals >= 1,
                "a dead subflow revived after the core ramped back",
            );
            expect(
                report.worst_recovery_latency_s > 0.0,
                "recovery latency was measured",
            );
        }
        _ => {}
    }
    fails
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_scenario_is_none() {
        assert!(run_scenario("no-such-scenario", 1).is_none());
    }

    #[test]
    fn every_scenario_has_a_strategy_and_base() {
        for spec in scenarios::all() {
            let s = base_scenario(spec.name);
            assert_eq!(s.name, format!("faults/{}", spec.name));
            let _ = strategy_for(spec.name);
        }
    }
}
