//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro --list            list experiment ids
//! repro fig5 fig6         run specific experiments (full scale)
//! repro all               run everything
//! repro --quick all       shrunk transfers (smoke test)
//! repro --out results all custom output directory
//! repro --seed 7 fig5     override the experiment seed
//! repro --quiet fig9      tables only, no progress or metrics chatter
//! repro --jobs 4 all      run exhibits on a 4-thread pool
//! repro --trace fig5      also write <out>/<id>.trace.jsonl
//! repro --clients 100 fleet   size the fleet exhibit's client count
//! ```
//!
//! Each experiment prints its tables and writes `<out>/<id>.{txt,json}`.
//! Every experiment runs with a fresh telemetry pipeline (metrics +
//! invariant observer, plus a JSONL trace sink under `--trace`), so a
//! short metrics roll-up follows each one and invariant violations
//! surface as warnings.
//!
//! `--jobs N` fans exhibits — and the sweep points and repeated runs
//! inside them — out across `N` threads. Output is byte-identical to
//! `--jobs 1`: seeds derive from indices, never from scheduling. The
//! default is the machine's available parallelism.

use emptcp_expr::figures::Config;
use emptcp_expr::repro::{self, ReproOptions};
use emptcp_expr::runner::Runner;
use emptcp_telemetry::{info, log, warn};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut quiet = false;
    let mut trace = false;
    let mut seed: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut clients: Option<usize> = None;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for id in repro::IDS {
                    println!("{id}");
                }
                return;
            }
            "--quick" => quick = true,
            "--quiet" => quiet = true,
            "--trace" => trace = true,
            "--out" => {
                out_dir = PathBuf::from(it.next().expect("--out needs a directory"));
            }
            "--seed" => {
                seed = Some(
                    it.next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed needs an integer"),
                );
            }
            "--jobs" => {
                jobs = Some(
                    it.next()
                        .expect("--jobs needs a value")
                        .parse()
                        .expect("--jobs needs a positive integer"),
                );
            }
            "--clients" => {
                clients = Some(
                    it.next()
                        .expect("--clients needs a value")
                        .parse()
                        .expect("--clients needs a positive integer"),
                );
            }
            "all" => ids.extend(repro::IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: repro [--quick] [--quiet] [--trace] [--jobs N] [--clients N] [--out DIR] (all | <id>...)"
        );
        eprintln!("ids: {}", repro::IDS.join(" "));
        std::process::exit(2);
    }
    for id in &ids {
        if !repro::is_known(id) {
            eprintln!("unknown experiment id: {id}");
            std::process::exit(2);
        }
    }
    if quiet {
        log::set_level(log::Level::Quiet);
    }
    let mut cfg = if quick {
        Config::quick()
    } else {
        Config::full()
    };
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    if let Some(clients) = clients {
        cfg.fleet_clients = clients;
    }
    ids.dedup();

    let jobs = jobs.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let runner = Runner::new(jobs);
    let opts = ReproOptions {
        cfg,
        out_dir,
        trace,
    };
    let started = Instant::now();
    let reports = runner
        .install(|| repro::run_exhibits(&ids, &opts))
        .unwrap_or_else(|e| panic!("running exhibits: {e}"));
    for report in &reports {
        print!("{}", report.rendered);
        let label = report.ids.join("+");
        for v in &report.violations {
            warn!("[{label}] {v}");
        }
        if !report.violations.is_empty() {
            warn!(
                "[{label}] {} invariant violation(s)",
                report.violations.len()
            );
        }
        if !report.metrics.is_empty() {
            let line = report
                .metrics
                .iter()
                .map(|(name, value)| format!("{name}={value}"))
                .collect::<Vec<_>>()
                .join(" ");
            info!("[{label}] metrics: {line}");
        }
        if !quiet {
            println!();
        }
    }
    if reports.len() > 1 {
        let busy: f64 = reports.iter().map(|r| r.wall_s).sum();
        info!(
            "{} exhibits in {:.1}s wall ({:.1}s of work, {jobs} job(s))",
            reports.len(),
            started.elapsed().as_secs_f64(),
            busy
        );
    }
}
