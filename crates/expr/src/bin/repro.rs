//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro --list            list experiment ids
//! repro fig5 fig6         run specific experiments (full scale)
//! repro all               run everything
//! repro --quick all       shrunk transfers (smoke test)
//! repro --out results all custom output directory
//! repro --seed 7 fig5     override the experiment seed
//! repro --quiet fig9      tables only, no progress or metrics chatter
//! repro --jobs 4 all      run exhibits on a 4-thread pool
//! repro --trace fig5      also write <out>/<id>.trace.jsonl
//! repro fleet --trace fleet.jsonl   record one exhibit to an explicit path
//! repro --clients 100 fleet   size the fleet exhibit's client count
//! repro --clients 1000000 --shards 8 fleet   sharded million-stack run
//! repro monitor --clients 16 --duration-s 4   live fleet dashboard
//! ```
//!
//! Each experiment prints its tables and writes `<out>/<id>.{txt,json}`.
//! Every experiment runs with a fresh telemetry pipeline (metrics +
//! invariant observer, plus a JSONL trace sink under `--trace`), so a
//! short metrics roll-up follows each one and invariant violations
//! surface as warnings.
//!
//! `--jobs N` fans exhibits — and the sweep points and repeated runs
//! inside them — out across `N` threads. Output is byte-identical to
//! `--jobs 1`: seeds derive from indices, never from scheduling. The
//! default is the machine's available parallelism.

use emptcp_expr::figures::Config;
use emptcp_expr::monitor::{self, LiveOptions};
use emptcp_expr::repro::{self, ReproOptions};
use emptcp_expr::runner::Runner;
use emptcp_telemetry::{info, log, warn};
use std::path::PathBuf;
use std::time::Instant;

fn monitor_usage() -> ! {
    eprintln!(
        "usage: repro monitor [options]
  --clients N          fleet size                        (default 16)
  --seed N             simulation seed                   (default 42)
  --duration-s X       simulated seconds                 (default 4)
  --record PATH        also record the trace as JSONL for later replay
  --follow PATH        tail a JSONL trace another process is writing
                       (e.g. simulate serve --trace PATH) instead of
                       running a fleet; dashboards events as they land
  --idle-timeout-s X   with --follow: exit after X s without new data
                       (default 3)
  --export-json PATH   write the deterministic time-series JSON export
  --export-csv PATH    write the per-bin CSV export
  --bin-ms N           aggregation bin width in ms       (default 100)
  --window N           dashboard rolling window, bins    (default 60)
  --top N              rows in the hot-spot tables       (default 5)
  --quiet              no dashboard (exports still written)"
    );
    std::process::exit(2);
}

fn monitor_main(args: Vec<String>) -> ! {
    let mut opts = LiveOptions::default();
    let mut follow: Option<PathBuf> = None;
    let mut idle_timeout_s = 3.0f64;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                monitor_usage()
            })
        };
        match arg.as_str() {
            "--clients" => opts.clients = value("--clients").parse().expect("--clients: integer"),
            "--seed" => opts.seed = value("--seed").parse().expect("--seed: integer"),
            "--duration-s" => {
                opts.duration_s = value("--duration-s").parse().expect("--duration-s: number")
            }
            "--record" => opts.record = Some(PathBuf::from(value("--record"))),
            "--follow" => follow = Some(PathBuf::from(value("--follow"))),
            "--idle-timeout-s" => {
                idle_timeout_s = value("--idle-timeout-s")
                    .parse()
                    .expect("--idle-timeout-s: number")
            }
            "--export-json" => opts.export_json = Some(PathBuf::from(value("--export-json"))),
            "--export-csv" => opts.export_csv = Some(PathBuf::from(value("--export-csv"))),
            "--bin-ms" => opts.knobs.bin_ms = value("--bin-ms").parse().expect("--bin-ms: integer"),
            "--window" => {
                opts.knobs.window_bins = value("--window").parse().expect("--window: integer")
            }
            "--top" => opts.knobs.top_k = value("--top").parse().expect("--top: integer"),
            "--quiet" => opts.quiet = true,
            _ => monitor_usage(),
        }
    }
    if opts.quiet {
        log::set_level(log::Level::Quiet);
    }
    if let Some(trace) = follow {
        let fopts = monitor::FollowOptions {
            trace,
            idle_timeout_s,
            export_json: opts.export_json,
            export_csv: opts.export_csv,
            quiet: opts.quiet,
            knobs: opts.knobs,
        };
        match monitor::run_follow(&fopts) {
            Ok(code) => std::process::exit(code),
            Err(e) => {
                eprintln!("repro monitor: {e}");
                std::process::exit(1);
            }
        }
    }
    match monitor::run_live(&opts) {
        Ok(_) => std::process::exit(0),
        Err(e) => {
            eprintln!("repro monitor: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("monitor") {
        args.remove(0);
        monitor_main(args);
    }
    let mut quick = false;
    let mut quiet = false;
    let mut trace = false;
    let mut trace_path: Option<PathBuf> = None;
    let mut seed: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut clients: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for id in repro::IDS {
                    println!("{id}");
                }
                return;
            }
            "--quick" => quick = true,
            "--quiet" => quiet = true,
            "--trace" => {
                trace = true;
                // Optional path operand (`repro fleet --trace fleet.jsonl`,
                // matching `simulate --trace PATH`). A following token that
                // is a flag, an exhibit id, or `all` keeps the per-exhibit
                // default destination.
                if let Some(next) = it.peek() {
                    if !next.starts_with("--") && next != "all" && !repro::is_known(next) {
                        trace_path = Some(PathBuf::from(it.next().expect("peeked")));
                    }
                }
            }
            "--out" => {
                out_dir = PathBuf::from(it.next().expect("--out needs a directory"));
            }
            "--seed" => {
                seed = Some(
                    it.next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed needs an integer"),
                );
            }
            "--jobs" => {
                jobs = Some(
                    it.next()
                        .expect("--jobs needs a value")
                        .parse()
                        .expect("--jobs needs a positive integer"),
                );
            }
            "--clients" => {
                clients = Some(
                    it.next()
                        .expect("--clients needs a value")
                        .parse()
                        .expect("--clients needs a positive integer"),
                );
            }
            "--shards" => {
                shards = Some(
                    it.next()
                        .expect("--shards needs a value")
                        .parse()
                        .expect("--shards needs a positive integer"),
                );
            }
            "all" => ids.extend(repro::IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: repro [--quick] [--quiet] [--trace [PATH]] [--jobs N] [--clients N] [--shards N] [--out DIR] (all | <id>...)"
        );
        eprintln!(
            "       repro monitor [--clients N] [--seed N] [--duration-s X] [--record PATH] ..."
        );
        eprintln!("ids: {}", repro::IDS.join(" "));
        std::process::exit(2);
    }
    for id in &ids {
        if !repro::is_known(id) {
            eprintln!("unknown experiment id: {id}");
            std::process::exit(2);
        }
    }
    if quiet {
        log::set_level(log::Level::Quiet);
    }
    let mut cfg = if quick {
        Config::quick()
    } else {
        Config::full()
    };
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    if let Some(clients) = clients {
        cfg.fleet_clients = clients;
    }
    cfg.fleet_shards = shards;
    ids.dedup();
    if trace_path.is_some() && ids.len() != 1 {
        eprintln!(
            "--trace PATH records exactly one exhibit; got {}",
            ids.len()
        );
        std::process::exit(2);
    }

    let jobs = jobs.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let runner = Runner::new(jobs);
    let opts = ReproOptions {
        cfg,
        out_dir,
        trace,
        trace_path,
    };
    let started = Instant::now();
    let reports = runner
        .install(|| repro::run_exhibits(&ids, &opts))
        .unwrap_or_else(|e| panic!("running exhibits: {e}"));
    for report in &reports {
        print!("{}", report.rendered);
        let label = report.ids.join("+");
        for v in &report.violations {
            warn!("[{label}] {v}");
        }
        if !report.violations.is_empty() {
            warn!(
                "[{label}] {} invariant violation(s)",
                report.violations.len()
            );
        }
        if !report.metrics.is_empty() {
            let line = report
                .metrics
                .iter()
                .map(|(name, value)| format!("{name}={value}"))
                .collect::<Vec<_>>()
                .join(" ");
            info!("[{label}] metrics: {line}");
        }
        if !quiet {
            println!();
        }
    }
    if reports.len() > 1 {
        let busy: f64 = reports.iter().map(|r| r.wall_s).sum();
        info!(
            "{} exhibits in {:.1}s wall ({:.1}s of work, {jobs} job(s))",
            reports.len(),
            started.elapsed().as_secs_f64(),
            busy
        );
    }
}
