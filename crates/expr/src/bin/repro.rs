//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro --list            list experiment ids
//! repro fig5 fig6         run specific experiments (full scale)
//! repro all               run everything
//! repro --quick all       shrunk transfers (smoke test)
//! repro --out results all custom output directory
//! repro --seed 7 fig5     override the experiment seed
//! ```
//!
//! Each experiment prints its tables and writes `<out>/<id>.{txt,json}`.

use emptcp_expr::figures::{self, Config};
use std::path::PathBuf;
use std::time::Instant;

const IDS: &[&str] = &[
    "table1", "fig1", "table2", "fig3", "fig4", "eq1", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig12", "fig13", "sec46", "fig14", "fig15", "fig16", "fig17", "handover", "devices", "ablations", "upload", "streaming", "breakdown", "sweep_hold", "sweep_kappa",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed: Option<u64> = None;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for id in IDS {
                    println!("{id}");
                }
                return;
            }
            "--quick" => quick = true,
            "--out" => {
                out_dir = PathBuf::from(it.next().expect("--out needs a directory"));
            }
            "--seed" => {
                seed = Some(
                    it.next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed needs an integer"),
                );
            }
            "all" => ids.extend(IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: repro [--quick] [--out DIR] (all | <id>...)");
        eprintln!("ids: {}", IDS.join(" "));
        std::process::exit(2);
    }
    let mut cfg = if quick { Config::quick() } else { Config::full() };
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    ids.dedup();

    // fig14 consumes fig16's traces; run them together when both are asked.
    let mut fig16_traces = None;
    for id in &ids {
        let started = Instant::now();
        let outputs = match id.as_str() {
            "table1" => vec![figures::table1()],
            "fig1" => vec![figures::fig1()],
            "table2" => vec![figures::table2()],
            "fig3" => vec![figures::fig3()],
            "fig4" => vec![figures::fig4()],
            "eq1" => vec![figures::eq1()],
            "fig5" => vec![figures::fig5(&cfg)],
            "fig6" => vec![figures::fig6(&cfg)],
            "fig7" => vec![figures::fig7(&cfg)],
            "fig8" => vec![figures::fig8(&cfg)],
            "fig9" => vec![figures::fig9(&cfg)],
            "fig10" => vec![figures::fig10(&cfg)],
            "fig12" => vec![figures::fig12(&cfg)],
            "fig13" => vec![figures::fig13(&cfg)],
            "sec46" => vec![figures::sec46(&cfg)],
            "fig15" => vec![figures::fig15(&cfg)],
            "fig16" => {
                let (out, traces) = figures::fig16(&cfg);
                fig16_traces = Some(traces);
                vec![out]
            }
            "fig14" => {
                let traces = match fig16_traces.take() {
                    Some(t) => t,
                    None => {
                        let (out, traces) = figures::fig16(&cfg);
                        out.write_to(&out_dir).expect("write fig16");
                        traces
                    }
                };
                vec![figures::fig14(&traces)]
            }
            "fig17" => vec![figures::fig17(&cfg)],
            "handover" => vec![figures::handover(&cfg)],
            "devices" => vec![figures::devices(&cfg)],
            "ablations" => vec![figures::ablations(&cfg)],
            "upload" => vec![figures::upload(&cfg)],
            "streaming" => vec![figures::streaming(&cfg)],
            "breakdown" => vec![figures::breakdown(&cfg)],
            "sweep_hold" => vec![figures::sweep_hold(&cfg)],
            "sweep_kappa" => vec![figures::sweep_kappa(&cfg)],
            other => {
                eprintln!("unknown experiment id: {other}");
                std::process::exit(2);
            }
        };
        for out in outputs {
            print!("{}", out.render());
            out.write_to(&out_dir)
                .unwrap_or_else(|e| panic!("writing {}: {e}", out.id));
        }
        eprintln!("[{id}] done in {:.1}s", started.elapsed().as_secs_f64());
        println!();
    }
}
