//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro --list            list experiment ids
//! repro fig5 fig6         run specific experiments (full scale)
//! repro all               run everything
//! repro --quick all       shrunk transfers (smoke test)
//! repro --out results all custom output directory
//! repro --seed 7 fig5     override the experiment seed
//! repro --quiet fig9      tables only, no progress or metrics chatter
//! ```
//!
//! Each experiment prints its tables and writes `<out>/<id>.{txt,json}`.
//! Every experiment runs with a fresh telemetry pipeline (metrics +
//! invariant observer, no trace sink), so a short metrics roll-up follows
//! each one and invariant violations surface as warnings.

use emptcp_expr::figures::{self, Config};
use emptcp_telemetry::{info, log, warn, Telemetry};
use std::path::PathBuf;
use std::time::Instant;

const IDS: &[&str] = &[
    "table1",
    "fig1",
    "table2",
    "fig3",
    "fig4",
    "eq1",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig12",
    "fig13",
    "sec46",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "handover",
    "devices",
    "ablations",
    "upload",
    "streaming",
    "breakdown",
    "sweep_hold",
    "sweep_kappa",
];

/// `conn3` / `sf1` style path segments name an instance, not a family.
fn is_instance_segment(seg: &str) -> bool {
    ["conn", "sf"].iter().any(|prefix| {
        seg.strip_prefix(prefix)
            .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
    })
}

/// Sum every per-connection/per-subflow counter into its stack-level family
/// (`tcp.conn3.sf1.retransmits` -> `tcp.retransmits`) so the roll-up stays
/// a handful of lines no matter how many flows an experiment spawned.
fn summarize_metrics(telemetry: &Telemetry) -> Vec<(String, u64)> {
    let Some(metrics) = telemetry.metrics() else {
        return Vec::new();
    };
    let mut totals: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for (name, value) in metrics.counters() {
        let family = name
            .split('.')
            .filter(|seg| !is_instance_segment(seg))
            .collect::<Vec<_>>()
            .join(".");
        *totals.entry(family).or_insert(0) += value;
    }
    totals.into_iter().collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut quiet = false;
    let mut seed: Option<u64> = None;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for id in IDS {
                    println!("{id}");
                }
                return;
            }
            "--quick" => quick = true,
            "--quiet" => quiet = true,
            "--out" => {
                out_dir = PathBuf::from(it.next().expect("--out needs a directory"));
            }
            "--seed" => {
                seed = Some(
                    it.next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed needs an integer"),
                );
            }
            "all" => ids.extend(IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: repro [--quick] [--quiet] [--out DIR] (all | <id>...)");
        eprintln!("ids: {}", IDS.join(" "));
        std::process::exit(2);
    }
    if quiet {
        log::set_level(log::Level::Quiet);
    }
    let mut cfg = if quick {
        Config::quick()
    } else {
        Config::full()
    };
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    ids.dedup();

    // fig14 consumes fig16's traces; run them together when both are asked.
    let mut fig16_traces = None;
    for id in &ids {
        let started = Instant::now();
        // A fresh pipeline per experiment: simulations pick it up through
        // the process-global handle, so counters never bleed across ids.
        let telemetry = Telemetry::builder().invariants(true).build();
        emptcp_telemetry::set_global(telemetry.clone());
        let outputs = match id.as_str() {
            "table1" => vec![figures::table1()],
            "fig1" => vec![figures::fig1()],
            "table2" => vec![figures::table2()],
            "fig3" => vec![figures::fig3()],
            "fig4" => vec![figures::fig4()],
            "eq1" => vec![figures::eq1()],
            "fig5" => vec![figures::fig5(&cfg)],
            "fig6" => vec![figures::fig6(&cfg)],
            "fig7" => vec![figures::fig7(&cfg)],
            "fig8" => vec![figures::fig8(&cfg)],
            "fig9" => vec![figures::fig9(&cfg)],
            "fig10" => vec![figures::fig10(&cfg)],
            "fig12" => vec![figures::fig12(&cfg)],
            "fig13" => vec![figures::fig13(&cfg)],
            "sec46" => vec![figures::sec46(&cfg)],
            "fig15" => vec![figures::fig15(&cfg)],
            "fig16" => {
                let (out, traces) = figures::fig16(&cfg);
                fig16_traces = Some(traces);
                vec![out]
            }
            "fig14" => {
                let traces = match fig16_traces.take() {
                    Some(t) => t,
                    None => {
                        let (out, traces) = figures::fig16(&cfg);
                        out.write_to(&out_dir).expect("write fig16");
                        traces
                    }
                };
                vec![figures::fig14(&traces)]
            }
            "fig17" => vec![figures::fig17(&cfg)],
            "handover" => vec![figures::handover(&cfg)],
            "devices" => vec![figures::devices(&cfg)],
            "ablations" => vec![figures::ablations(&cfg)],
            "upload" => vec![figures::upload(&cfg)],
            "streaming" => vec![figures::streaming(&cfg)],
            "breakdown" => vec![figures::breakdown(&cfg)],
            "sweep_hold" => vec![figures::sweep_hold(&cfg)],
            "sweep_kappa" => vec![figures::sweep_kappa(&cfg)],
            other => {
                eprintln!("unknown experiment id: {other}");
                std::process::exit(2);
            }
        };
        emptcp_telemetry::set_global(Telemetry::disabled());
        for out in outputs {
            print!("{}", out.render());
            out.write_to(&out_dir)
                .unwrap_or_else(|e| panic!("writing {}: {e}", out.id));
        }
        let violations = telemetry.violations();
        for v in &violations {
            warn!("[{id}] {v}");
        }
        if !violations.is_empty() {
            warn!("[{id}] {} invariant violation(s)", violations.len());
        }
        let totals = summarize_metrics(&telemetry);
        if !totals.is_empty() {
            let line = totals
                .iter()
                .map(|(name, value)| format!("{name}={value}"))
                .collect::<Vec<_>>()
                .join(" ");
            info!("[{id}] metrics: {line}");
        }
        info!("[{id}] done in {:.1}s", started.elapsed().as_secs_f64());
        if !quiet {
            println!();
        }
    }
}
