//! Run one scenario from the command line and print the result.
//!
//! ```text
//! simulate --strategy emptcp --wifi-mbps 3 --cell-mbps 12 --size-mb 16
//! simulate --strategy mptcp --scenario mobility --json
//! simulate --strategy emptcp --trace run.jsonl --metrics run.json
//! simulate --list-strategies
//! simulate faults --scenario ap-vanish
//! simulate faults --all --check
//! simulate monitor --replay fleet.trace.jsonl
//! simulate monitor --replay fleet.trace.jsonl --check --export-json out.json
//! simulate scenario --list
//! simulate scenario --corpus --check --jobs 4
//! simulate scenario --fuzz --cases 100 --seed 7
//! simulate scenario --file results/repros/fuzz-7-12-min.scenario --check
//! simulate serve --port 46100 --size-mb 4 --trace serve.jsonl
//! simulate connect --port 46110 --peer 127.0.0.1:46100 --size-mb 4
//! ```
//!
//! This is the downstream-user entry point: where `repro` regenerates the
//! paper's figures, `simulate` answers "what would strategy X do in my
//! environment?". With `--trace`/`--metrics` the run is instrumented: every
//! stack event goes to a JSONL trace (byte-identical across runs with the
//! same seed), a metrics snapshot is written as JSON, and the online
//! invariant observer checks conservation properties as the run executes.

use emptcp_expr::scenario::{Scenario, Workload};
use emptcp_expr::{faults, host, Strategy};
use emptcp_faults::scenarios;
use emptcp_sim::{SimDuration, SimTime};
use emptcp_telemetry::{info, log, warn, JsonlSink, Telemetry};

type StrategyEntry = (&'static str, fn() -> Strategy);

const STRATEGIES: &[StrategyEntry] = &[
    ("mptcp", || Strategy::Mptcp),
    ("emptcp", Strategy::emptcp_default),
    ("tcp-wifi", || Strategy::TcpWifi),
    ("tcp-cellular", || Strategy::TcpCellular),
    ("wifi-first", || Strategy::WifiFirst),
    ("mdp", || Strategy::MdpScheduler),
    ("single-path", || Strategy::SinglePath),
];

fn usage() -> ! {
    eprintln!(
        "usage: simulate [options]
  --strategy NAME      mptcp | emptcp | tcp-wifi | tcp-cellular |
                       wifi-first | mdp | single-path     (default emptcp)
  --scenario NAME      custom | good | bad | bwchange | background |
                       mobility | web | outage | upload | streaming
                       (default custom)
  --wifi-mbps X        WiFi capacity for 'custom'          (default 10)
  --cell-mbps X        cellular capacity for 'custom'      (default 12)
  --rtt-ms N           WiFi base RTT for 'custom'          (default 25)
  --size-mb X          download size for 'custom'/'good'/'bad' (default 16)
  --seed N             simulation seed                     (default 42)
  --json               print the full RunResult as JSON
  --trace PATH         write a JSONL event trace (enables invariant checks)
  --metrics PATH       write a JSON metrics snapshot (enables invariant checks)
  --quiet              suppress the human-readable summary and progress output
  --list-strategies    list strategy names and exit"
    );
    std::process::exit(2);
}

fn faults_usage() -> ! {
    eprintln!(
        "usage: simulate faults [options]
  --scenario NAME      run one named fault scenario
  --all                run every scenario in the library
  --check              exit non-zero unless every report passes the
                       resilience expectations (CI gate)
  --seed N             simulation seed                     (default 42)
  --json               print each report as JSON
  --trace PATH         write the faulted run's JSONL event trace
                       (single-scenario mode only)
  --quiet              suppress progress output
  --list               list scenario names and exit"
    );
    std::process::exit(2);
}

fn print_report(r: &faults::ResilienceReport) {
    println!("scenario:         {} ({})", r.scenario, r.strategy);
    println!("completed:        {}", r.completed);
    println!(
        "delivered:        {:.2} MB of {:.2} MB",
        r.bytes_delivered as f64 / (1 << 20) as f64,
        r.size_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "time:             {:.2} s faulted vs {:.2} s fault-free",
        r.faulted_time_s, r.baseline_time_s
    );
    println!("goodput retained: {:.0}%", r.goodput_retained * 100.0);
    println!(
        "energy:           {:.2} J faulted vs {:.2} J fault-free ({:+.2} J overhead)",
        r.faulted_energy_j, r.baseline_energy_j, r.energy_overhead_j
    );
    println!(
        "faults:           {} applied, {} link-down, {} RTO failures",
        r.faults_injected, r.link_down_events, r.subflow_failures
    );
    println!(
        "recovery:         {} promotions, {} revivals, {:.1} KB reinjected, worst latency {:.3} s",
        r.backup_promotions,
        r.subflow_revivals,
        r.bytes_reinjected as f64 / 1024.0,
        r.worst_recovery_latency_s
    );
    if r.invariant_violations > 0 {
        println!("INVARIANTS:       {} violation(s)", r.invariant_violations);
    }
}

fn monitor_usage() -> ! {
    eprintln!(
        "usage: simulate monitor --replay <trace.jsonl> [options]
  --replay PATH        recorded JSONL trace to replay (required)
  --check              machine mode: no dashboard, exit 1 on malformed
                       lines (CI replays twice and diffs the exports)
  --export-json PATH   write the deterministic time-series JSON export
  --export-csv PATH    write the per-bin CSV export
  --bin-ms N           aggregation bin width in ms       (default 100)
  --window N           dashboard rolling window, bins    (default 60)
  --top N              rows in the hot-spot tables       (default 5)
  --quiet              suppress the final dashboard frame"
    );
    std::process::exit(2);
}

fn monitor_main(args: Vec<String>) -> ! {
    use emptcp_expr::monitor::{self, PipelineKnobs, ReplayOptions};
    let mut trace: Option<std::path::PathBuf> = None;
    let mut check = false;
    let mut export_json = None;
    let mut export_csv = None;
    let mut quiet = false;
    let mut knobs = PipelineKnobs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                monitor_usage()
            })
        };
        match arg.as_str() {
            "--replay" => trace = Some(std::path::PathBuf::from(value("--replay"))),
            "--check" => check = true,
            "--export-json" => export_json = Some(std::path::PathBuf::from(value("--export-json"))),
            "--export-csv" => export_csv = Some(std::path::PathBuf::from(value("--export-csv"))),
            "--bin-ms" => knobs.bin_ms = value("--bin-ms").parse().expect("--bin-ms: integer"),
            "--window" => knobs.window_bins = value("--window").parse().expect("--window: integer"),
            "--top" => knobs.top_k = value("--top").parse().expect("--top: integer"),
            "--quiet" => quiet = true,
            _ => monitor_usage(),
        }
    }
    let Some(trace) = trace else { monitor_usage() };
    let opts = ReplayOptions {
        trace,
        check,
        export_json,
        export_csv,
        quiet,
        knobs,
    };
    match monitor::run_replay(&opts) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("simulate monitor: {e}");
            std::process::exit(1);
        }
    }
}

fn live_usage(role: &str) -> ! {
    let (extra, what) = if role == "serve" {
        (
            "",
            "host the data sender: bind ports, learn the peer, push bytes",
        )
    } else {
        (
            "\n  --peer ADDR          serving side's first port, e.g. 127.0.0.1:46100 (required)",
            "run the receiver: initiate subflow handshakes, pull bytes",
        )
    };
    eprintln!(
        "usage: simulate {role} [options]
  ({what})
  --port N             first local UDP port; path i binds port+i (default {})
  --size-mb X          transfer size in MiB                  (default 4){extra}
  --seed N             shaping-draw seed                     (default 1)
  --wifi-delay-ms N    one-way delay injected on the WiFi path    (default 0)
  --cell-delay-ms N    one-way delay injected on the cellular path (default 0)
  --wifi-loss X        loss probability on the WiFi path     (default 0)
  --cell-loss X        loss probability on the cellular path (default 0)
  --jitter-ms N        per-frame jitter bound, both paths    (default 0)
  --handover-ms A:G    WiFi blackout at A ms lasting G ms (FaultPlan handover)
  --trace PATH         write the JSONL decision trace (follow with
                       `repro monitor --follow PATH`)
  --limit-s N          give up after N wall seconds          (default 60)
  --json               print the transfer report as JSON",
        if role == "serve" { 46100 } else { 46110 }
    );
    std::process::exit(2);
}

fn live_main(role: &str, args: Vec<String>) -> ! {
    use emptcp_live::{run_connect, run_serve, SessionConfig};

    let mut cfg = SessionConfig::new(if role == "serve" { 46100 } else { 46110 }, 4 << 20);
    let mut wifi_delay = 0u64;
    let mut cell_delay = 0u64;
    let mut wifi_loss = 0.0f64;
    let mut cell_loss = 0.0f64;
    let mut jitter = 0u64;
    let mut json = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                live_usage(role)
            })
        };
        match arg.as_str() {
            "--port" => cfg.port_base = value("--port").parse().expect("--port: u16"),
            "--size-mb" => {
                let mb: f64 = value("--size-mb").parse().expect("--size-mb: number");
                cfg.size = (mb * (1 << 20) as f64) as u64;
            }
            "--peer" => cfg.peer = Some(value("--peer").parse().expect("--peer: host:port")),
            "--seed" => cfg.seed = value("--seed").parse().expect("--seed: integer"),
            "--wifi-delay-ms" => {
                wifi_delay = value("--wifi-delay-ms")
                    .parse()
                    .expect("--wifi-delay-ms: ms")
            }
            "--cell-delay-ms" => {
                cell_delay = value("--cell-delay-ms")
                    .parse()
                    .expect("--cell-delay-ms: ms")
            }
            "--wifi-loss" => wifi_loss = value("--wifi-loss").parse().expect("--wifi-loss: 0..1"),
            "--cell-loss" => cell_loss = value("--cell-loss").parse().expect("--cell-loss: 0..1"),
            "--jitter-ms" => jitter = value("--jitter-ms").parse().expect("--jitter-ms: ms"),
            "--handover-ms" => {
                let spec = value("--handover-ms");
                let (at, gap) = spec.split_once(':').unwrap_or_else(|| {
                    eprintln!("--handover-ms wants AT:GAP in ms");
                    live_usage(role)
                });
                cfg.faults = cfg.faults.clone().handover(
                    SimTime::from_millis(at.parse().expect("--handover-ms AT: ms")),
                    SimDuration::from_millis(gap.parse().expect("--handover-ms GAP: ms")),
                );
            }
            "--trace" => cfg.trace = Some(std::path::PathBuf::from(value("--trace"))),
            "--limit-s" => {
                cfg.wall_limit =
                    SimTime::from_secs(value("--limit-s").parse().expect("--limit-s: seconds"))
            }
            "--json" => json = true,
            "--help" | "-h" => live_usage(role),
            other => {
                eprintln!("unknown option: {other}");
                live_usage(role);
            }
        }
    }
    cfg.paths = vec![
        emptcp_live::ChaosPath::new(wifi_loss, SimDuration::from_millis(wifi_delay), jitter),
        emptcp_live::ChaosPath::new(cell_loss, SimDuration::from_millis(cell_delay), jitter),
    ];

    let report = if role == "serve" {
        run_serve(&cfg)
    } else {
        run_connect(&cfg)
    }
    .unwrap_or_else(|e| {
        eprintln!("simulate {role}: {e}");
        std::process::exit(1);
    });

    if json {
        // Hand-rolled: the report is flat and this keeps serde out of it.
        println!(
            "{{\"role\":\"{role}\",\"complete\":{},\"bytes\":{},\"wifi\":{},\"cellular\":{},\
             \"elapsed_s\":{:.3},\"datagrams_sent\":{},\"datagrams_received\":{}}}",
            report.complete,
            report.bytes,
            report.wifi,
            report.cellular,
            report.elapsed.as_secs_f64(),
            report.datagrams_sent,
            report.datagrams_received
        );
    } else {
        // One greppable line per run; CI parses this.
        println!(
            "live-transfer role={role} complete={} bytes={} wifi={} cellular={} \
             elapsed_s={:.3} datagrams_sent={} datagrams_received={}",
            report.complete,
            report.bytes,
            report.wifi,
            report.cellular,
            report.elapsed.as_secs_f64(),
            report.datagrams_sent,
            report.datagrams_received
        );
    }
    std::process::exit(if report.complete { 0 } else { 1 });
}

fn faults_main(args: Vec<String>) -> ! {
    let mut scenario: Option<String> = None;
    let mut all = false;
    let mut do_check = false;
    let mut seed = 42u64;
    let mut json = false;
    let mut trace_path: Option<String> = None;
    let mut quiet = false;

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scenario" => scenario = Some(value("--scenario")),
            "--all" => all = true,
            "--check" => do_check = true,
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| faults_usage()),
            "--json" => json = true,
            "--trace" => trace_path = Some(value("--trace")),
            "--quiet" => quiet = true,
            "--list" => {
                for spec in scenarios::all() {
                    println!("{:<18} {}", spec.name, spec.summary);
                }
                std::process::exit(0);
            }
            "--help" | "-h" => faults_usage(),
            other => {
                eprintln!("unknown option: {other}");
                faults_usage();
            }
        }
    }
    if quiet {
        log::set_level(log::Level::Quiet);
    }

    let names: Vec<&str> = if all {
        scenarios::NAMES.to_vec()
    } else {
        match &scenario {
            Some(name) => vec![name.as_str()],
            None => faults_usage(),
        }
    };
    if trace_path.is_some() && names.len() != 1 {
        eprintln!("--trace needs a single --scenario");
        std::process::exit(2);
    }

    let mut failures = 0usize;
    for (i, name) in names.iter().enumerate() {
        let telemetry = match &trace_path {
            Some(path) => {
                let file = std::fs::File::create(path).unwrap_or_else(|e| {
                    eprintln!("cannot create trace file {path}: {e}");
                    std::process::exit(2);
                });
                Telemetry::builder()
                    .invariants(true)
                    .sink(Box::new(JsonlSink::new(file)))
                    .build()
            }
            None => Telemetry::builder().invariants(true).build(),
        };
        let report = faults::run_scenario_traced(name, seed, telemetry).unwrap_or_else(|| {
            eprintln!("unknown fault scenario '{name}' (try --list)");
            std::process::exit(2);
        });
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&report).expect("serializable report")
            );
        } else if !quiet {
            if i > 0 {
                println!();
            }
            print_report(&report);
        }
        if do_check {
            for fail in faults::check(&report) {
                eprintln!("{name}: FAILED expectation: {fail}");
                failures += 1;
            }
        }
    }
    if do_check {
        if failures == 0 && !quiet {
            println!(
                "\nall {} scenario(s) passed the resilience checks",
                names.len()
            );
        }
        std::process::exit(if failures == 0 { 0 } else { 1 });
    }
    std::process::exit(0);
}

fn scenario_usage() -> ! {
    eprintln!(
        "usage: simulate scenario [options]
  --list               list the committed corpus (sorted) and exit
  --name NAME          run one corpus scenario through the oracles
  --file PATH          run a .scenario file (e.g. a shrunk repro)
  --corpus             replay the whole corpus deterministically
  --fuzz               generate and certify arbitrary valid scenarios
  --cases N            fuzz cases                          (default 100)
  --seed N             scenario-seed override / fuzz root seed (default 42)
  --check              exit non-zero on any oracle violation (CI gate)
  --json               print each chaos report as JSON
  --jobs N             worker pool size                    (default 1)
  --out DIR            write per-scenario corpus reports here
  --repro-dir DIR      write shrunk fuzz repros here (default results/repros)
  --sabotage-oracle O  deliberately break oracle O ('delivery') to
                       exercise the fuzz -> shrink -> repro pipeline
  --quiet              suppress progress output"
    );
    std::process::exit(2);
}

fn print_chaos_report(r: &emptcp_expr::chaos::ChaosReport) {
    let verdict = if r.ok() { "certified" } else { "VIOLATED" };
    println!(
        "{:<28} {:<5} seed {:<10} faults {:<3} {}",
        r.scenario, r.world, r.seed, r.faults_injected, verdict
    );
    for v in &r.violations {
        println!("  oracle {:<22} {}", v.oracle, v.detail);
    }
}

fn scenario_main(args: Vec<String>) -> ! {
    use emptcp_expr::chaos;
    use emptcp_scenario::corpus;

    let mut list = false;
    let mut name: Option<String> = None;
    let mut file: Option<String> = None;
    let mut run_corpus = false;
    let mut fuzz = false;
    let mut cases = 100u64;
    let mut seed: Option<u64> = None;
    let mut do_check = false;
    let mut json = false;
    let mut jobs = 1usize;
    let mut out_dir: Option<String> = None;
    let mut repro_dir = "results/repros".to_string();
    let mut sabotage: Option<String> = None;
    let mut quiet = false;

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--list" => list = true,
            "--name" => name = Some(value("--name")),
            "--file" => file = Some(value("--file")),
            "--corpus" => run_corpus = true,
            "--fuzz" => fuzz = true,
            "--cases" => {
                cases = value("--cases")
                    .parse()
                    .unwrap_or_else(|_| scenario_usage())
            }
            "--seed" => seed = Some(value("--seed").parse().unwrap_or_else(|_| scenario_usage())),
            "--check" => do_check = true,
            "--json" => json = true,
            "--jobs" => jobs = value("--jobs").parse().unwrap_or_else(|_| scenario_usage()),
            "--out" => out_dir = Some(value("--out")),
            "--repro-dir" => repro_dir = value("--repro-dir"),
            "--sabotage-oracle" => sabotage = Some(value("--sabotage-oracle")),
            "--quiet" => quiet = true,
            "--help" | "-h" => scenario_usage(),
            other => {
                eprintln!("unknown option: {other}");
                scenario_usage();
            }
        }
    }
    if quiet {
        log::set_level(log::Level::Quiet);
    }
    let sabotage = sabotage.as_deref();
    if let Some(s) = sabotage {
        if s != chaos::SABOTAGE_DELIVERY {
            eprintln!("unknown oracle to sabotage: {s} (supported: delivery)");
            std::process::exit(2);
        }
    }

    if list {
        for n in corpus::names() {
            let sc = corpus::load(n).expect("corpus scenario loads");
            println!("{:<28} {:<5} {}", n, sc.world_label(), sc.summary);
        }
        std::process::exit(0);
    }

    let runner = emptcp_expr::Runner::new(jobs);

    if fuzz {
        let root = seed.unwrap_or(42);
        let outcome = runner
            .install(|| chaos::fuzz(root, cases, sabotage, Some(repro_dir.as_ref())))
            .unwrap_or_else(|e| {
                eprintln!("simulate scenario: cannot write repros: {e}");
                std::process::exit(1);
            });
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&outcome).expect("outcome serializes")
            );
        } else {
            info!(
                "fuzz: {} cases from seed {}, {} oracle failure(s)",
                outcome.cases,
                outcome.seed,
                outcome.failures.len()
            );
            for f in &outcome.failures {
                println!(
                    "case {:<4} {:<24} -> {} ({} fault(s), {} client(s)){}",
                    f.case,
                    f.scenario,
                    f.violations[0].oracle,
                    f.shrunk_faults,
                    f.shrunk_clients,
                    f.repro_path
                        .as_deref()
                        .map(|p| format!(" repro: {p}"))
                        .unwrap_or_default()
                );
            }
        }
        std::process::exit(if outcome.failures.is_empty() { 0 } else { 1 });
    }

    if run_corpus {
        let reports = runner
            .install(|| chaos::replay_corpus(out_dir.as_deref().map(std::path::Path::new)))
            .unwrap_or_else(|e| {
                eprintln!("simulate scenario: cannot write reports: {e}");
                std::process::exit(1);
            });
        let mut failures = 0usize;
        for r in &reports {
            if json {
                print!("{}", chaos::report_json(r));
            } else {
                print_chaos_report(r);
            }
            failures += usize::from(!r.ok());
        }
        if !json {
            info!(
                "corpus: {} scenario(s), {} failure(s)",
                reports.len(),
                failures
            );
        }
        std::process::exit(if do_check && failures > 0 { 1 } else { 0 });
    }

    // Single-scenario modes: --name (corpus) or --file (any .scenario).
    let mut sc = match (&name, &file) {
        (Some(n), None) => corpus::load(n).unwrap_or_else(|| {
            eprintln!("unknown corpus scenario '{n}' (try --list)");
            std::process::exit(2);
        }),
        (None, Some(path)) => {
            emptcp_scenario::io::load(std::path::Path::new(path)).unwrap_or_else(|e| {
                eprintln!("simulate scenario: {e}");
                std::process::exit(2);
            })
        }
        _ => scenario_usage(),
    };
    if let Some(s) = seed {
        sc.seed = s;
    }
    let report = runner
        .install(|| chaos::run_scenario(&sc, sabotage))
        .unwrap_or_else(|e| {
            eprintln!("simulate scenario: {e}");
            std::process::exit(2);
        });
    if json {
        print!("{}", chaos::report_json(&report));
    } else {
        print_chaos_report(&report);
    }
    std::process::exit(if do_check && !report.ok() { 1 } else { 0 });
}

fn main() {
    let mut args_vec: Vec<String> = std::env::args().skip(1).collect();
    if args_vec.first().map(String::as_str) == Some("faults") {
        args_vec.remove(0);
        faults_main(args_vec);
    }
    if args_vec.first().map(String::as_str) == Some("monitor") {
        args_vec.remove(0);
        monitor_main(args_vec);
    }
    if args_vec.first().map(String::as_str) == Some("scenario") {
        args_vec.remove(0);
        scenario_main(args_vec);
    }
    if let Some(role @ ("serve" | "connect")) = args_vec.first().map(String::as_str) {
        let role = role.to_string();
        args_vec.remove(0);
        live_main(&role, args_vec);
    }

    let mut strategy_name = "emptcp".to_string();
    let mut scenario_name = "custom".to_string();
    let mut wifi_mbps = 10.0f64;
    let mut cell_mbps = 12.0f64;
    let mut rtt_ms = 25u64;
    let mut size_mb = 16.0f64;
    let mut seed = 42u64;
    let mut json = false;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--strategy" => strategy_name = value("--strategy"),
            "--scenario" => scenario_name = value("--scenario"),
            "--wifi-mbps" => wifi_mbps = value("--wifi-mbps").parse().unwrap_or_else(|_| usage()),
            "--cell-mbps" => cell_mbps = value("--cell-mbps").parse().unwrap_or_else(|_| usage()),
            "--rtt-ms" => rtt_ms = value("--rtt-ms").parse().unwrap_or_else(|_| usage()),
            "--size-mb" => size_mb = value("--size-mb").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--json" => json = true,
            "--trace" => trace_path = Some(value("--trace")),
            "--metrics" => metrics_path = Some(value("--metrics")),
            "--quiet" => quiet = true,
            "--list-strategies" => {
                for (name, _) in STRATEGIES {
                    println!("{name}");
                }
                return;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown option: {other}");
                usage();
            }
        }
    }

    let strategy = STRATEGIES
        .iter()
        .find(|(name, _)| *name == strategy_name)
        .map(|(_, make)| make())
        .unwrap_or_else(|| {
            eprintln!("unknown strategy '{strategy_name}'");
            usage();
        });

    let size = (size_mb * (1 << 20) as f64) as u64;
    let scenario = match scenario_name.as_str() {
        "custom" => Scenario::wild(
            "custom",
            (wifi_mbps * 1e6) as u64,
            (cell_mbps * 1e6) as u64,
            SimDuration::from_millis(rtt_ms),
            SimDuration::from_millis(rtt_ms + 35),
            size,
        ),
        "good" => {
            let mut s = Scenario::static_good_wifi();
            s.workload = Workload::Download { size };
            s
        }
        "bad" => {
            let mut s = Scenario::static_bad_wifi();
            s.workload = Workload::Download { size };
            s
        }
        "bwchange" => {
            let mut s = Scenario::bandwidth_changes();
            s.workload = Workload::Download { size };
            s
        }
        "background" => {
            let mut s = Scenario::background_traffic(2, 0.025);
            s.workload = Workload::Download { size };
            s
        }
        "mobility" => Scenario::mobility(),
        "web" => Scenario::web_browsing(),
        "outage" => Scenario::wifi_outage(),
        "upload" => Scenario::upload(),
        "streaming" => Scenario::streaming(),
        other => {
            eprintln!("unknown scenario '{other}'");
            usage();
        }
    };

    if quiet {
        log::set_level(log::Level::Quiet);
    }

    // Build the telemetry pipeline when instrumentation was requested; the
    // invariant observer rides along for free on instrumented runs.
    let telemetry = if trace_path.is_some() || metrics_path.is_some() {
        let mut builder = Telemetry::builder().invariants(true);
        if let Some(path) = &trace_path {
            let file = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create trace file {path}: {e}");
                std::process::exit(2);
            });
            builder = builder.sink(Box::new(JsonlSink::new(file)));
        }
        builder.build()
    } else {
        Telemetry::disabled()
    };

    let result =
        host::Simulation::new_with_telemetry(scenario, strategy, seed, telemetry.clone()).run();

    // The snapshot timestamp is the workload completion time; gauges inside
    // already reflect the end of the radio drain.
    let snapshot_at = SimTime::from_nanos((result.download_time_s * 1e9).round() as u64);
    if let Some(path) = &metrics_path {
        let snap = telemetry
            .metrics_snapshot(snapshot_at)
            .expect("telemetry enabled when --metrics given");
        let body = serde_json::to_string_pretty(&snap).expect("serializable snapshot");
        std::fs::write(path, body + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write metrics file {path}: {e}");
            std::process::exit(2);
        });
        info!("metrics written to {path}");
    }
    if let Some(path) = &trace_path {
        info!("trace written to {path}");
    }
    let violations = telemetry.violations();
    if !violations.is_empty() {
        for v in &violations {
            warn!("{v}");
        }
        warn!("{} invariant violation(s) detected", violations.len());
    }

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).expect("serializable result")
        );
        return;
    }
    if quiet {
        return;
    }
    println!("strategy:        {}", result.strategy);
    println!("scenario:        {}", result.scenario);
    println!("completed:       {}", result.completed);
    println!("download time:   {:.2} s", result.download_time_s);
    println!(
        "energy:          {:.2} J ({:.2} J at completion)",
        result.energy_j, result.energy_at_completion_j
    );
    println!(
        "delivered:       {:.2} MB  (WiFi {:.2} MB, cellular {:.2} MB)",
        result.bytes_delivered as f64 / (1 << 20) as f64,
        result.wifi_bytes as f64 / (1 << 20) as f64,
        result.cell_bytes as f64 / (1 << 20) as f64
    );
    println!("per byte:        {:.3} uJ/B", result.joules_per_byte * 1e6);
    println!(
        "radio:           {} promotions, {:.2} J promotion energy, {:.2} J tail energy",
        result.promotions, result.promo_energy_j, result.tail_energy_j
    );
    println!(
        "dynamics:        {} usage switches, {} retransmissions",
        result.usage_switches, result.retransmissions
    );
    if result.rebuffer_events > 0 {
        println!("rebuffers:       {}", result.rebuffer_events);
    }
}
