#![warn(missing_docs)]
//! Experiment harness: every table and figure of the eMPTCP paper.
//!
//! * [`host`] — the device/server simulation: radios (WiFi channel +
//!   cellular RRC), paths, MPTCP stacks, the eMPTCP engine and the energy
//!   meter, all driven from one deterministic event loop;
//! * [`scenario`] — environment definitions for §4 (static, bandwidth
//!   changes, background traffic, mobility) and §5 (wild, web);
//! * [`strategy`] — the transport strategies under comparison: standard
//!   MPTCP, eMPTCP, single-path TCP over WiFi or LTE, MPTCP-with-WiFi-First
//!   and Single-Path mode;
//! * [`mdp`] — the Markov-decision-process scheduler of Pluntke et al.,
//!   reproduced for the §4.6 comparison;
//! * [`wild`] — the §5 in-the-wild study: server/venue populations and the
//!   Good/Bad × WiFi/LTE categorization of Fig 14;
//! * [`figures`] — one runner per table/figure, producing printable tables
//!   and machine-readable JSON;
//! * [`report`] — table formatting and file output helpers;
//! * [`runner`] — the deterministic work-stealing pool exhibits, sweep
//!   points and repeated runs fan out on (`repro --jobs N`);
//! * [`repro`] — the exhibit engine behind the `repro` binary: job
//!   planning, per-exhibit telemetry, output files;
//! * [`chaos`] — chaos certification: declarative `.scenario` runs, the
//!   end-of-run oracles, scenario fuzzing and minimal-repro shrinking
//!   (`simulate scenario`).
//!
//! The `repro` binary regenerates everything: `repro --list`, `repro fig5`,
//! `repro all`.
//!
//! ```
//! use emptcp_expr::scenario::{Scenario, Workload};
//! use emptcp_expr::{host, Strategy};
//!
//! let mut scenario = Scenario::static_good_wifi();
//! scenario.workload = Workload::Download { size: 256 << 10 };
//! let result = host::run(scenario, Strategy::emptcp_default(), 42);
//! assert!(result.completed);
//! // Small transfer on good WiFi: the LTE radio never woke up.
//! assert_eq!(result.promotions, 0);
//! ```

pub mod chaos;
pub mod faults;
pub mod figures;
pub mod host;
pub mod mdp;
pub mod monitor;
pub mod report;
pub mod repro;
pub mod runner;
pub mod scenario;
pub mod strategy;
pub mod wild;

pub use host::{RunResult, Simulation};
pub use runner::Runner;
pub use scenario::Scenario;
pub use strategy::Strategy;
