//! The MDP path scheduler of Pluntke et al., reproduced for §4.6.
//!
//! Pluntke et al. (MobiArch'11) schedule MPTCP paths with a Markov decision
//! process solved *offline* (in their system, in the cloud — the paper
//! notes the computation is too expensive for the kernel) and applied at
//! one-second epochs. The paper reproduces their scheduler against its own
//! energy model and observes: "the generated MDP schedulers choose
//! WiFi-only for all scenarios, resulting in same energy performance (and
//! limitations) as TCP over WiFi", because unlike Pluntke's 3G model, LTE
//! power per second never drops below WiFi's.
//!
//! This module is that reproduction: states are (WiFi-throughput bin,
//! LTE-throughput bin, cellular-radio-on), actions are the three path
//! usages, per-epoch cost is **additive** interface power (Pluntke's model
//! has no simultaneous-use discount) plus promotion/tail switching costs
//! plus a penalty for throughput shortfall against a streaming demand.
//! Value iteration with a discount factor solves it exactly.

use emptcp_energy::{EnergyModel, PathUsage};
use serde::{Deserialize, Serialize};

/// Throughput bin width (Mbps).
const BIN_MBPS: f64 = 1.0;
/// Number of throughput bins per interface (0..25 Mbps).
const BINS: usize = 26;
/// Value-iteration discount.
const DISCOUNT: f64 = 0.95;
/// Iterations (plenty for convergence at this size).
const SWEEPS: usize = 300;

/// A solved policy: the usage to apply in each state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MdpPolicy {
    /// `policy[radio_on][wifi_bin][cell_bin]`.
    policy: Vec<PathUsage>,
    demand_mbps: f64,
}

fn sidx(radio_on: usize, w: usize, c: usize) -> usize {
    (radio_on * BINS + w) * BINS + c
}

impl MdpPolicy {
    /// The §4.6 configuration: a 4 Mbps streaming demand with a mild
    /// shortfall penalty — Pluntke's setting transplanted onto the paper's
    /// energy model.
    pub fn pluntke(model: &EnergyModel) -> MdpPolicy {
        MdpPolicy::solve(model, 4.0, 0.4)
    }

    /// Solve the MDP for a demand (Mbps) and a shortfall penalty
    /// (J per Mbps-second of unmet demand).
    pub fn solve(model: &EnergyModel, demand_mbps: f64, shortfall_penalty: f64) -> MdpPolicy {
        let wifi_power: Vec<f64> = (0..BINS)
            .map(|b| model.profile().wifi_curve.power_w(Self::bin_mid(b)))
            .collect();
        let cell_power: Vec<f64> = (0..BINS)
            .map(|b| model.cellular().curve.power_w(Self::bin_mid(b)))
            .collect();
        let promo_j = model.cellular().promo_w * model.cellular().rrc.promotion_delay.as_secs_f64();
        let tail_j = model.cellular().tail_w * model.cellular().rrc.tail_duration.as_secs_f64();

        // Per-epoch (1 s) cost of an action in a state.
        let cost = |radio_on: usize, w: usize, c: usize, a: PathUsage| -> f64 {
            let (power, rate, needs_radio) = match a {
                PathUsage::WifiOnly => (wifi_power[w], Self::bin_mid(w), false),
                PathUsage::CellularOnly => (cell_power[c], Self::bin_mid(c), true),
                // Pluntke's model: powers are strictly additive.
                PathUsage::Both => (
                    wifi_power[w] + cell_power[c],
                    Self::bin_mid(w) + Self::bin_mid(c),
                    true,
                ),
            };
            let mut j = power; // watts over a one-second epoch
            j += shortfall_penalty * (demand_mbps - rate).max(0.0);
            if needs_radio && radio_on == 0 {
                j += promo_j;
            }
            if !needs_radio && radio_on == 1 {
                j += tail_j;
            }
            j
        };

        // Throughput bins random-walk: stay 0.5, +/-1 with 0.25 each.
        let neighbors = |b: usize| -> [(usize, f64); 3] {
            let down = b.saturating_sub(1);
            let up = (b + 1).min(BINS - 1);
            [(down, 0.25), (b, 0.5), (up, 0.25)]
        };

        let nstates = 2 * BINS * BINS;
        let mut value = vec![0.0f64; nstates];
        let mut policy = vec![PathUsage::WifiOnly; nstates];
        for _ in 0..SWEEPS {
            let mut next = vec![0.0f64; nstates];
            for radio_on in 0..2 {
                for w in 0..BINS {
                    for c in 0..BINS {
                        let mut best = f64::INFINITY;
                        let mut best_a = PathUsage::WifiOnly;
                        for &a in &PathUsage::ALL {
                            let radio_next = a.uses_cellular() as usize;
                            let mut future = 0.0;
                            for (wn, pw) in neighbors(w) {
                                for (cn, pc) in neighbors(c) {
                                    future += pw * pc * value[sidx(radio_next, wn, cn)];
                                }
                            }
                            let q = cost(radio_on, w, c, a) + DISCOUNT * future;
                            if q < best {
                                best = q;
                                best_a = a;
                            }
                        }
                        next[sidx(radio_on, w, c)] = best;
                        policy[sidx(radio_on, w, c)] = best_a;
                    }
                }
            }
            value = next;
        }
        MdpPolicy {
            policy,
            demand_mbps,
        }
    }

    fn bin_mid(b: usize) -> f64 {
        b as f64 * BIN_MBPS
    }

    fn bin_of(mbps: f64) -> usize {
        (mbps / BIN_MBPS).round().clamp(0.0, (BINS - 1) as f64) as usize
    }

    /// The action for observed throughputs (cellular radio assumed off —
    /// the conservative slice; with the paper's model the policy never
    /// turns it on in the first place).
    pub fn action(&self, wifi_mbps: f64, cell_mbps: f64) -> PathUsage {
        self.policy[sidx(0, Self::bin_of(wifi_mbps), Self::bin_of(cell_mbps))]
    }

    /// The action in a specific radio state (for tests / analysis).
    pub fn action_with_radio(&self, radio_on: bool, wifi_mbps: f64, cell_mbps: f64) -> PathUsage {
        self.policy[sidx(
            radio_on as usize,
            Self::bin_of(wifi_mbps),
            Self::bin_of(cell_mbps),
        )]
    }

    /// Fraction of (radio-off) states whose action is WiFi-only — the
    /// §4.6 observation quantified.
    pub fn wifi_only_fraction(&self) -> f64 {
        let total = BINS * BINS;
        let wifi_only = (0..BINS)
            .flat_map(|w| (0..BINS).map(move |c| (w, c)))
            .filter(|&(w, c)| self.policy[sidx(0, w, c)] == PathUsage::WifiOnly)
            .count();
        wifi_only as f64 / total as f64
    }

    /// The streaming demand the policy was solved for.
    pub fn demand_mbps(&self) -> f64 {
        self.demand_mbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_is_wifi_only_everywhere() {
        // §4.6: with the paper's energy model (LTE per-second power never
        // below WiFi's), the Pluntke MDP degenerates to WiFi-only.
        let policy = MdpPolicy::pluntke(&EnergyModel::galaxy_s3_lte());
        assert!(
            policy.wifi_only_fraction() > 0.99,
            "wifi-only fraction {}",
            policy.wifi_only_fraction()
        );
        for (w, c) in [(0.5, 10.0), (2.0, 20.0), (10.0, 10.0), (0.0, 5.0)] {
            assert_eq!(policy.action(w, c), PathUsage::WifiOnly, "at ({w},{c})");
        }
    }

    #[test]
    fn mdp_scheduled_run_never_wakes_cellular() {
        // §4.6's observable consequence: the MDP scheduler behaves like
        // TCP over WiFi — the cellular radio is never activated.
        let mut sc = crate::scenario::Scenario::static_good_wifi();
        sc.workload = crate::scenario::Workload::Download { size: 2 << 20 };
        let r = crate::host::run(sc, crate::strategy::Strategy::MdpScheduler, 3);
        assert!(r.completed);
        assert_eq!(r.cell_bytes, 0);
        assert_eq!(r.promotions, 0);
    }

    #[test]
    fn huge_penalty_would_change_the_policy() {
        // Sanity check that the solver actually trades off: with an extreme
        // shortfall penalty, slow WiFi must recruit the cellular path.
        let policy = MdpPolicy::solve(&EnergyModel::galaxy_s3_lte(), 8.0, 100.0);
        let a = policy.action(1.0, 20.0);
        assert_ne!(a, PathUsage::WifiOnly, "penalty ignored");
    }

    #[test]
    fn demand_recorded() {
        let policy = MdpPolicy::pluntke(&EnergyModel::galaxy_s3_lte());
        assert_eq!(policy.demand_mbps(), 4.0);
    }
}
