//! End-to-end properties of fault injection through the full host.
//!
//! The acceptance bar for the fault subsystem: a scripted disaster may
//! slow a transfer down but can never corrupt it (zero byte-stream gaps,
//! silent invariant observer), recovery must be *visible* in the report
//! (link-down events, recovery latency), and the whole faulted run must
//! stay a pure function of the seed — byte-identical telemetry included.

use emptcp_expr::faults::{self, ResilienceReport};
use emptcp_expr::host::Simulation;
use emptcp_faults::scenarios;
use emptcp_telemetry::{MemorySink, Telemetry};
use std::sync::{Arc, Mutex};

/// Run one named scenario with a memory trace sink; return the report and
/// the faulted run's JSONL trace.
fn traced_run(name: &str, seed: u64) -> (ResilienceReport, String) {
    let sink = Arc::new(Mutex::new(MemorySink::new()));
    let telemetry = Telemetry::builder()
        .sink(Box::new(Arc::clone(&sink)))
        .invariants(true)
        .build();
    let report = faults::run_scenario_traced(name, seed, telemetry).expect("known scenario");
    let trace = sink.lock().unwrap().to_jsonl();
    (report, trace)
}

#[test]
fn ap_vanish_completes_with_zero_gaps() {
    let report = faults::run_scenario("ap-vanish", 42).expect("known scenario");
    assert!(report.completed, "{report:?}");
    assert_eq!(
        report.bytes_delivered, report.size_bytes,
        "byte-stream gap: {report:?}"
    );
    assert_eq!(report.invariant_violations, 0, "{report:?}");
    // The blackout was noticed and recovery was measured.
    assert!(report.link_down_events >= 1, "{report:?}");
    assert!(report.worst_recovery_latency_s > 0.0, "{report:?}");
    assert!(report.faults_injected >= 2, "{report:?}");
}

#[test]
fn lte_tunnel_reinjects_stranded_data() {
    let report = faults::run_scenario("lte-tunnel", 42).expect("known scenario");
    assert!(report.completed, "{report:?}");
    assert_eq!(report.bytes_delivered, report.size_bytes);
    assert!(
        report.bytes_reinjected > 0,
        "cellular blackout stranded nothing? {report:?}"
    );
    assert!(report.subflow_revivals >= 1, "{report:?}");
}

#[test]
fn every_scenario_passes_the_resilience_checks() {
    for spec in scenarios::all() {
        let report = faults::run_scenario(spec.name, 42).expect("listed scenario must run");
        let fails = faults::check(&report);
        assert!(
            fails.is_empty(),
            "{name} failed: {fails:?}\n{report:?}",
            name = spec.name
        );
    }
}

#[test]
fn fault_runs_produce_byte_identical_traces() {
    let (report_a, trace_a) = traced_run("ap-vanish", 7);
    let (report_b, trace_b) = traced_run("ap-vanish", 7);
    assert!(!trace_a.is_empty(), "instrumented run must emit events");
    assert!(
        trace_a.contains("FaultInjected"),
        "fault applications must appear in the trace"
    );
    assert_eq!(
        trace_a, trace_b,
        "fault run trace must be a pure function of the seed"
    );
    assert_eq!(report_a.faulted_time_s, report_b.faulted_time_s);
    assert_eq!(report_a.faulted_energy_j, report_b.faulted_energy_j);
}

#[test]
fn attach_faults_with_empty_plan_changes_nothing() {
    let strategy = faults::strategy_for("ap-vanish");
    let plain = Simulation::new(faults::base_scenario("noop"), strategy, 5).run();
    let mut sim = Simulation::new(faults::base_scenario("noop"), strategy, 5);
    sim.attach_faults(emptcp_faults::FaultPlan::new());
    let armed = sim.run();
    assert_eq!(plain.download_time_s, armed.download_time_s);
    assert_eq!(plain.energy_j, armed.energy_j);
    assert_eq!(armed.faults_injected, 0);
}
