//! End-to-end telemetry properties of the simulation host.
//!
//! The pipeline is only trustworthy if (a) it never perturbs the simulation
//! it observes, (b) the trace is a pure function of the seed, and (c) the
//! online invariant observer stays silent on healthy runs. Each property is
//! a test here.

use emptcp_expr::host::Simulation;
use emptcp_expr::scenario::{Scenario, Workload};
use emptcp_expr::Strategy;
use emptcp_sim::SimTime;
use emptcp_telemetry::{MemorySink, Telemetry};
use std::sync::{Arc, Mutex};

fn scenario() -> Scenario {
    // Bad WiFi forces eMPTCP to bring the cellular subflow up, exercising
    // the scheduler, the RRC machine, and the path-usage controller.
    let mut s = Scenario::static_bad_wifi();
    s.workload = Workload::Download { size: 2 << 20 };
    s
}

/// Run one instrumented simulation; return (trace JSONL, metrics JSON,
/// violation count).
fn instrumented_run(seed: u64) -> (String, String, usize) {
    let sink = Arc::new(Mutex::new(MemorySink::new()));
    let telemetry = Telemetry::builder()
        .sink(Box::new(Arc::clone(&sink)))
        .invariants(true)
        .build();
    let result = Simulation::new_with_telemetry(
        scenario(),
        Strategy::emptcp_default(),
        seed,
        telemetry.clone(),
    )
    .run();
    assert!(result.completed, "download should finish");
    let trace = sink.lock().unwrap().to_jsonl();
    let metrics = serde_json::to_string_pretty(
        &telemetry
            .metrics_snapshot(SimTime::from_secs(600))
            .expect("pipeline enabled"),
    )
    .unwrap();
    (trace, metrics, telemetry.violations().len())
}

#[test]
fn same_seed_produces_byte_identical_traces() {
    let (trace_a, metrics_a, _) = instrumented_run(42);
    let (trace_b, metrics_b, _) = instrumented_run(42);
    assert!(!trace_a.is_empty(), "instrumented run must emit events");
    assert_eq!(
        trace_a, trace_b,
        "trace must be a pure function of the seed"
    );
    assert_eq!(
        metrics_a, metrics_b,
        "metrics snapshot must be deterministic"
    );
}

#[test]
fn different_seeds_diverge() {
    let (trace_a, _, _) = instrumented_run(1);
    let (trace_b, _, _) = instrumented_run(2);
    assert_ne!(trace_a, trace_b, "seeds must actually feed the simulation");
}

#[test]
fn no_invariant_violations_on_healthy_runs() {
    for (name, s) in [
        ("bad_wifi", scenario()),
        ("mobility", Scenario::mobility()),
        ("outage", Scenario::wifi_outage()),
    ] {
        let telemetry = Telemetry::builder().invariants(true).build();
        Simulation::new_with_telemetry(s, Strategy::emptcp_default(), 42, telemetry.clone()).run();
        let violations = telemetry.violations();
        assert!(
            violations.is_empty(),
            "{name}: unexpected invariant violations: {violations:?}"
        );
    }
}

#[test]
fn instrumentation_does_not_perturb_results() {
    let plain = Simulation::new(scenario(), Strategy::emptcp_default(), 42).run();
    let telemetry = Telemetry::builder().invariants(true).build();
    let traced =
        Simulation::new_with_telemetry(scenario(), Strategy::emptcp_default(), 42, telemetry).run();
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&traced).unwrap(),
        "enabling telemetry must not change simulation outcomes"
    );
}
