//! The runner's determinism contract, end to end: running exhibits on a
//! 1-job pool and a multi-job pool must write byte-identical files —
//! results, and trace JSONL under tracing. This is the in-process version
//! of `repro --jobs 1` vs `repro --jobs N`; CI smoke-tests the binary the
//! same way.

use emptcp_expr::figures::Config;
use emptcp_expr::repro::{self, ReproOptions};
use emptcp_expr::runner::Runner;
use std::collections::BTreeMap;
use std::path::Path;

/// A fast, representative exhibit subset: model-only (table2), repeated
/// runs (fig5), single-run traces (fig9), the §5 study plus the merged
/// fig16+fig14 job, and a whisker exhibit (fig15).
const SUBSET: &[&str] = &["table2", "fig5", "fig9", "fig15", "fig16", "fig14"];

fn run_with(jobs: usize, dir: &Path, trace: bool) -> BTreeMap<String, Vec<u8>> {
    let ids: Vec<String> = SUBSET.iter().map(|s| s.to_string()).collect();
    let opts = ReproOptions {
        cfg: Config::quick(),
        out_dir: dir.to_path_buf(),
        trace,
        trace_path: None,
    };
    let runner = Runner::new(jobs);
    runner
        .install(|| repro::run_exhibits(&ids, &opts))
        .expect("exhibits run");
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("out dir") {
        let path = entry.expect("entry").path();
        files.insert(
            path.file_name().unwrap().to_string_lossy().into_owned(),
            std::fs::read(&path).expect("read output"),
        );
    }
    assert!(!files.is_empty(), "no output files written");
    files
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("emptcp-determinism-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_identical(a: &BTreeMap<String, Vec<u8>>, b: &BTreeMap<String, Vec<u8>>) {
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "file sets differ"
    );
    for (name, bytes) in a {
        assert_eq!(bytes, &b[name], "{name} differs between pool sizes");
    }
}

#[test]
fn results_are_byte_identical_across_pool_sizes() {
    let d1 = tmp("j1");
    let d4 = tmp("j4");
    let serial = run_with(1, &d1, false);
    let parallel = run_with(4, &d4, false);
    // Sanity: the subset actually produced the expected artifacts.
    assert!(serial.contains_key("fig5.json") && serial.contains_key("fig14.json"));
    assert_identical(&serial, &parallel);
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d4);
}

#[test]
fn traces_are_byte_identical_across_pool_sizes() {
    let d1 = tmp("t1");
    let d4 = tmp("t4");
    let serial = run_with(1, &d1, true);
    let parallel = run_with(4, &d4, true);
    let traced: Vec<&String> = serial
        .keys()
        .filter(|name| name.ends_with(".trace.jsonl"))
        .collect();
    assert!(!traced.is_empty(), "tracing produced no JSONL");
    assert!(!serial[traced[0]].is_empty(), "empty trace");
    assert_identical(&serial, &parallel);
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d4);
}

#[test]
fn repeated_serial_runs_are_stable() {
    // Guards against hidden global state leaking between runs in the same
    // process (telemetry override, runner fallback, thread-locals).
    let da = tmp("a");
    let db = tmp("b");
    let first = run_with(1, &da, false);
    let second = run_with(1, &db, false);
    assert_identical(&first, &second);
    let _ = std::fs::remove_dir_all(&da);
    let _ = std::fs::remove_dir_all(&db);
}
