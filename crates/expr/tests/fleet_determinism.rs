//! The fleet harness under the exhibit engine's determinism contract:
//! `fleet` and `fairness` — many independent client stacks fanned out
//! across worker threads — must write byte-identical result files on a
//! 1-job pool and a multi-job pool. This is the in-process version of
//! `repro fleet --jobs 1` vs `repro fleet --jobs 4`.

use emptcp_expr::figures::Config;
use emptcp_expr::repro::{self, ReproOptions};
use emptcp_expr::runner::Runner;
use std::collections::BTreeMap;
use std::path::Path;

fn run_with(jobs: usize, dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let ids = vec!["fleet".to_string(), "fairness".to_string()];
    let mut cfg = Config::quick();
    // Small fleet: the determinism argument is scale-free (seeds derive
    // from indices, never from scheduling) and CI time is not.
    cfg.fleet_clients = 8;
    let opts = ReproOptions {
        cfg,
        out_dir: dir.to_path_buf(),
        trace: false,
        trace_path: None,
    };
    let runner = Runner::new(jobs);
    runner
        .install(|| repro::run_exhibits(&ids, &opts))
        .expect("exhibits run");
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("out dir") {
        let path = entry.expect("entry").path();
        files.insert(
            path.file_name().unwrap().to_string_lossy().into_owned(),
            std::fs::read(&path).expect("read output"),
        );
    }
    assert!(files.contains_key("fleet.json"), "fleet output missing");
    assert!(
        files.contains_key("fairness.json"),
        "fairness output missing"
    );
    files
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("emptcp-fleet-det-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fleet_results_are_byte_identical_across_pool_sizes() {
    let d1 = tmp("j1");
    let d4 = tmp("j4");
    let serial = run_with(1, &d1);
    let parallel = run_with(4, &d4);
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "file sets differ"
    );
    for (name, bytes) in &serial {
        assert_eq!(bytes, &parallel[name], "{name} differs between pool sizes");
    }
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d4);
}
