//! Chaos-certification pipeline tests: the fuzzer finds nothing on the
//! real oracles, a sabotaged oracle yields a small shrunk repro that
//! replays from its `.scenario` file, and corpus replay is byte-identical
//! across pool sizes.

use emptcp_expr::chaos::{self, SABOTAGE_DELIVERY};
use emptcp_expr::Runner;

/// The acceptance gate: a fixed-seed fuzz run over the real oracles must
/// certify every generated scenario.
#[test]
fn fuzz_certifies_one_hundred_cases() {
    let outcome = Runner::new(4)
        .install(|| chaos::fuzz(7, 100, None, None))
        .unwrap();
    assert_eq!(outcome.cases, 100);
    assert!(
        outcome.failures.is_empty(),
        "oracle violations on valid scenarios: {:#?}",
        outcome.failures
    );
}

/// A deliberately mis-wired delivery oracle must be caught, shrunk to a
/// minimal repro (≤2 fault primitives, ≤4 clients), and the written
/// `.scenario` file must replay the failure — and pass once the sabotage
/// is removed.
#[test]
fn sabotaged_oracle_shrinks_to_a_replayable_minimal_repro() {
    let dir = std::env::temp_dir().join(format!("emptcp-chaos-repros-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let outcome = Runner::new(4)
        .install(|| chaos::fuzz(7, 40, Some(SABOTAGE_DELIVERY), Some(&dir)))
        .unwrap();
    assert!(
        !outcome.failures.is_empty(),
        "the sabotaged oracle must trip on at least one faulted case"
    );
    for failure in &outcome.failures {
        assert!(
            failure.shrunk_faults <= 2,
            "repro not minimal: {} fault primitives ({})",
            failure.shrunk_faults,
            failure.scenario
        );
        assert!(
            failure.shrunk_clients <= 4,
            "repro not minimal: {} clients ({})",
            failure.shrunk_clients,
            failure.scenario
        );
        assert_eq!(
            failure.violations[0].oracle, "exact_delivery",
            "{failure:?}"
        );

        // The shrunk file replays the failure under the same sabotage...
        let path = std::path::Path::new(failure.repro_path.as_deref().unwrap());
        let replayed = chaos::run_file(path, Some(SABOTAGE_DELIVERY)).unwrap();
        assert!(!replayed.ok(), "repro did not reproduce: {path:?}");
        // ...and certifies once the oracle is fixed.
        let fixed = chaos::run_file(path, None).unwrap();
        assert!(fixed.ok(), "{:?}", fixed.violations);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Corpus replay must produce byte-identical reports for any pool size.
#[test]
fn corpus_replay_is_identical_across_pool_sizes() {
    let serial = Runner::new(1)
        .install(|| chaos::replay_corpus(None))
        .unwrap();
    let parallel = Runner::new(4)
        .install(|| chaos::replay_corpus(None))
        .unwrap();
    assert_eq!(serial.len(), parallel.len());
    let mut certified = 0;
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            chaos::report_json(a),
            chaos::report_json(b),
            "{} diverges across pool sizes",
            a.scenario
        );
        assert!(a.ok(), "{}: {:?}", a.scenario, a.violations);
        certified += 1;
    }
    assert!(certified >= 20, "corpus shrank below 20 scenarios");
}
