//! Golden-shape regression tests: the ✅ claims of EXPERIMENTS.md, encoded
//! as assertions at quick scale so `cargo test` catches a change that
//! breaks a reproduced *shape* — who wins, by roughly what factor, where
//! the crossovers sit. Absolute joules are free to drift inside the
//! stated tolerances (the model is calibrated, not measured); orderings
//! and identities are not.
//!
//! Everything here is deterministic: fixed scenarios, the committed
//! default seed, single runs where one run demonstrates the claim.

use emptcp_energy::{Eib, EnergyModel};
use emptcp_expr::figures;
use emptcp_expr::scenario::{Scenario, Workload};
use emptcp_expr::{host, Strategy};
use emptcp_sim::SimDuration;

/// The committed default seed (EXPERIMENTS.md records values at this seed).
const SEED: u64 = 0xE0_07C9;

/// Quick-scale §4 bulk transfer.
const BULK: u64 = 8 << 20;

fn bulk(make: fn() -> Scenario, strategy: Strategy) -> host::RunResult {
    let mut s = make();
    s.workload = Workload::Download { size: BULK };
    host::run(s, strategy, SEED)
}

// ---------------------------------------------------------------- Table 2

/// Table 2 ✅: the 1.0 Mbps LTE row is the paper's §3.4 worked example and
/// the calibration anchor — it must match the paper tightly. The other
/// rows follow the fitted curves within a factor, and the thresholds must
/// be ordered and monotone in the LTE rate.
#[test]
fn table2_thresholds_anchor_and_shape() {
    let eib = Eib::generate_default(&EnergyModel::galaxy_s3_lte());

    let (t1, t2) = eib.thresholds(1.0);
    assert!(
        (t1 - 0.134).abs() / 0.134 < 0.10,
        "LTE-only anchor drifted: {t1}"
    );
    assert!(
        (t2 - 0.502).abs() / 0.502 < 0.10,
        "WiFi-only anchor drifted: {t2}"
    );

    // Paper rows (LTE Mbps, LTE-only below, WiFi-only at/above); EXPERIMENTS
    // records the repro within ~50% at worst (the 0.5 row's T1).
    for (cell, p1, p2) in [
        (0.5, 0.043, 0.234),
        (1.5, 0.209, 0.803),
        (2.0, 0.304, 1.070),
    ] {
        let (t1, t2) = eib.thresholds(cell);
        assert!(
            t1 / p1 > 0.6 && t1 / p1 < 1.6,
            "T1({cell}) = {t1} vs paper {p1}"
        );
        assert!(
            t2 / p2 > 0.6 && t2 / p2 < 1.6,
            "T2({cell}) = {t2} vs paper {p2}"
        );
    }

    // Shape: T1 < T2 everywhere, both monotone in the LTE rate.
    let mut prev = (0.0, 0.0);
    for i in 1..=8 {
        let cell = i as f64 * 0.5;
        let (t1, t2) = eib.thresholds(cell);
        assert!(t1 < t2, "thresholds crossed at {cell} Mbps: {t1} vs {t2}");
        assert!(t1 >= prev.0 && t2 >= prev.1, "non-monotone at {cell} Mbps");
        prev = (t1, t2);
    }
}

// ------------------------------------------------------------------ Fig 3

/// Fig 3 ✅: the V-shaped region where using both interfaces beats the
/// best single interface exists (ratios dip below 0.95) and is a minority
/// of the plane.
#[test]
fn fig3_v_region_exists_and_is_minority() {
    let out = figures::fig3();
    let map = out
        .json
        .get("galaxy_s3")
        .and_then(|v| v.as_array())
        .expect("s3 map");
    let mut below = 0usize;
    let mut total = 0usize;
    let mut min_ratio = f64::INFINITY;
    for row in map {
        for v in row.as_array().expect("row") {
            let r = v.as_f64().expect("ratio");
            total += 1;
            if r < 0.95 {
                below += 1;
            }
            min_ratio = min_ratio.min(r);
        }
    }
    assert!(below > 0, "no V-region: no cell below 0.95");
    assert!(min_ratio < 0.92, "V too shallow: min ratio {min_ratio}");
    assert!(
        below * 2 < total,
        "V-region is not a minority: {below}/{total} cells below 0.95"
    );
}

// ------------------------------------------------------------------ Fig 4

/// Fig 4 ✅: the whole-transfer MPTCP-wins region grows strictly with
/// transfer size, and the 1 MB region is (near-)empty — the paper's
/// justification for κ = 1 MB.
#[test]
fn fig4_regions_nest_with_size() {
    let out = figures::fig4();
    let width_sum = |region: &serde_json::Value| -> f64 {
        region
            .as_array()
            .expect("region rows")
            .iter()
            .filter_map(|row| row.get("wifi_range"))
            .filter_map(|r| r.as_array())
            .map(|r| r[1].as_f64().unwrap() - r[0].as_f64().unwrap())
            .sum()
    };
    let (w1, w4, w16) = (
        width_sum(&out.json[0]),
        width_sum(&out.json[1]),
        width_sum(&out.json[2]),
    );
    assert!(
        w1 < 0.2,
        "1 MB region should be near-empty, total width {w1}"
    );
    assert!(w4 > w1, "4 MB region ({w4}) not larger than 1 MB ({w1})");
    assert!(
        w16 > 2.0 * w4,
        "16 MB region ({w16}) not much larger than 4 MB ({w4})"
    );
}

// ------------------------------------------------------------------- Eq 1

/// Eq 1 ✅: the worked example — τ ≥ 2.67 s at 10 Mbps WiFi, 190 ms RTT,
/// IW10, φ = 10 — lands at 2.69 s.
#[test]
fn eq1_matches_the_papers_worked_example() {
    let tau = emptcp::delay::min_tau(10.0, SimDuration::from_millis(190), 14_280, 10);
    let s = tau.as_secs_f64();
    assert!(s >= 2.67, "below the paper's bound: {s}");
    assert!(
        (s - 2.69).abs() < 0.05,
        "drifted from the recorded 2.69 s: {s}"
    );
}

// ------------------------------------------------------------------ Fig 5

/// Fig 5 ✅: on static good WiFi, eMPTCP chooses WiFi-only — zero LTE
/// bytes, zero promotions, energy equal to TCP over WiFi — and uses
/// substantially less energy than MPTCP.
#[test]
fn fig5_good_wifi_emptcp_is_tcp_wifi_and_beats_mptcp() {
    let e = bulk(Scenario::static_good_wifi, Strategy::emptcp_default());
    let m = bulk(Scenario::static_good_wifi, Strategy::Mptcp);
    let t = bulk(Scenario::static_good_wifi, Strategy::TcpWifi);
    assert!(e.completed && m.completed && t.completed);
    assert_eq!(e.cell_bytes, 0, "eMPTCP sent bytes over LTE on good WiFi");
    assert_eq!(e.promotions, 0, "eMPTCP woke the LTE radio on good WiFi");
    // Same seed, same decisions: equal to well under a percent.
    assert!(
        (e.energy_j - t.energy_j).abs() / t.energy_j < 0.005,
        "eMPTCP ({:.2} J) != TCP/WiFi ({:.2} J)",
        e.energy_j,
        t.energy_j
    );
    assert!(
        m.energy_j > 1.5 * e.energy_j,
        "MPTCP ({:.2} J) should cost well above eMPTCP ({:.2} J)",
        m.energy_j,
        e.energy_j
    );
}

// ------------------------------------------------------------------ Fig 6

/// Fig 6 ✅: on static bad WiFi, eMPTCP recruits LTE and lands near MPTCP
/// on energy and time, while TCP over WiFi is many times slower.
#[test]
fn fig6_bad_wifi_emptcp_tracks_mptcp_and_tcp_wifi_crawls() {
    let e = bulk(Scenario::static_bad_wifi, Strategy::emptcp_default());
    let m = bulk(Scenario::static_bad_wifi, Strategy::Mptcp);
    let t = bulk(Scenario::static_bad_wifi, Strategy::TcpWifi);
    assert!(e.completed && m.completed && t.completed);
    assert!(e.cell_bytes > 0, "eMPTCP never recruited LTE on bad WiFi");
    // Near-MPTCP: the gap is the delayed establishment (κ/τ). At quick
    // scale (8 MB) the startup amortizes less than the paper's 256 MB —
    // allow 50% where the full-scale table shows 1.3%.
    assert!(
        e.energy_j < 1.5 * m.energy_j && e.download_time_s < 1.6 * m.download_time_s,
        "eMPTCP ({:.1} J, {:.1} s) strayed from MPTCP ({:.1} J, {:.1} s)",
        e.energy_j,
        e.download_time_s,
        m.energy_j,
        m.download_time_s
    );
    assert!(
        t.download_time_s > 3.0 * e.download_time_s,
        "TCP/WiFi ({:.0} s) should crawl vs eMPTCP ({:.0} s)",
        t.download_time_s,
        e.download_time_s
    );
}

// ----------------------------------------------------------------- Fig 13

/// Fig 13 ✅: over the mobility walk, both orderings hold — MPTCP >
/// eMPTCP > TCP/WiFi on J/byte *and* on bytes downloaded.
#[test]
fn fig13_mobility_double_ordering() {
    let run = |s| host::run(Scenario::mobility(), s, SEED);
    let m = run(Strategy::Mptcp);
    let e = run(Strategy::emptcp_default());
    let t = run(Strategy::TcpWifi);
    assert!(
        m.joules_per_byte > e.joules_per_byte && e.joules_per_byte > t.joules_per_byte,
        "J/byte ordering broken: MPTCP {:.3e}, eMPTCP {:.3e}, TCP/WiFi {:.3e}",
        m.joules_per_byte,
        e.joules_per_byte,
        t.joules_per_byte
    );
    assert!(
        m.bytes_delivered > e.bytes_delivered && e.bytes_delivered > t.bytes_delivered,
        "bytes ordering broken: MPTCP {}, eMPTCP {}, TCP/WiFi {}",
        m.bytes_delivered,
        e.bytes_delivered,
        t.bytes_delivered
    );
}

// ----------------------------------------------------------------- Fig 17

/// Fig 17 ✅: web browsing — every object is below κ, so eMPTCP never
/// opens LTE and is identical to TCP over WiFi, while MPTCP pays the
/// promotions.
#[test]
fn fig17_web_emptcp_never_opens_lte() {
    let run = |s| host::run(Scenario::web_browsing(), s, SEED);
    let e = run(Strategy::emptcp_default());
    let m = run(Strategy::Mptcp);
    let t = run(Strategy::TcpWifi);
    assert_eq!(e.cell_bytes, 0);
    assert_eq!(e.promotions, 0);
    assert!(
        (e.energy_j - t.energy_j).abs() / t.energy_j < 0.005,
        "eMPTCP ({:.2} J) != TCP/WiFi ({:.2} J)",
        e.energy_j,
        t.energy_j
    );
    assert!(m.promotions > 0, "MPTCP paid no promotions on web browsing");
    assert!(
        m.energy_j > 2.0 * e.energy_j,
        "MPTCP ({:.1} J) vs eMPTCP ({:.1} J): gap collapsed",
        m.energy_j,
        e.energy_j
    );
}

// --------------------------------------------------------------- handover

/// Extension handover ✅: across a 30 s association outage, multi-path
/// strategies ride LTE through it while single-path TCP stalls; WiFi-First
/// structurally pays *two* activations (the needless setup one plus the
/// failover) where MPTCP pays one.
#[test]
fn handover_multipath_rides_through_the_outage() {
    let run = |s| host::run(Scenario::wifi_outage(), s, SEED);
    let m = run(Strategy::Mptcp);
    let e = run(Strategy::emptcp_default());
    let t = run(Strategy::TcpWifi);
    let w = run(Strategy::WifiFirst);
    assert!(m.completed && e.completed && t.completed && w.completed);
    assert!(
        t.download_time_s
            > 1.4
                * m.download_time_s
                    .max(e.download_time_s.max(w.download_time_s)),
        "single-path TCP ({:.0} s) did not stall vs multipath",
        t.download_time_s
    );
    assert_eq!(m.promotions, 1);
    assert_eq!(
        w.promotions, 2,
        "WiFi-First's needless setup activation vanished"
    );
}
