//! The observability pipeline's determinism contract, end to end:
//!
//! 1. a live fleet run with the streaming tap + a JSONL recording,
//! 2. a replay of that recording through a fresh pipeline,
//! 3. a second replay,
//!
//! must all export byte-identical time-series JSON and CSV. This is the
//! in-process version of the CI gate (`repro monitor --record` followed by
//! `simulate monitor --replay --check` twice, diffing the exports).

use emptcp_expr::monitor::{run_live, run_replay, LiveOptions, ReplayOptions};
use emptcp_net::{FleetConfig, FleetSim};
use emptcp_obsv::{export_csv, export_json, replay, Pipeline, PipelineConfig, PipelineSink};
use emptcp_sim::SimDuration;
use emptcp_telemetry::{MemorySink, TeeSink, Telemetry, TraceSink};
use std::io::BufReader;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn fleet_cfg(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::contended(6, seed);
    cfg.duration = SimDuration::from_secs(2);
    cfg
}

/// Run a small fleet with both a memory recording and the live pipeline
/// attached, exactly as `repro monitor --record` wires them.
fn live_run(seed: u64) -> (String, Pipeline) {
    let record = Arc::new(Mutex::new(MemorySink::new()));
    let pipeline = Arc::new(Mutex::new(Pipeline::new(PipelineConfig::default())));
    let tap: Box<dyn TraceSink> = Box::new(TeeSink::new(vec![
        Box::new(Arc::clone(&record)),
        Box::new(PipelineSink::new(Arc::clone(&pipeline))),
    ]));
    let telemetry = Telemetry::builder().invariants(true).sink(tap).build();
    FleetSim::new_with_telemetry(fleet_cfg(seed), telemetry.clone()).run();
    telemetry.flush().expect("flush");
    let jsonl = record.lock().unwrap().to_jsonl();
    let state = pipeline.lock().unwrap().clone();
    (jsonl, state)
}

#[test]
fn live_and_replay_exports_are_byte_identical() {
    let (jsonl, live) = live_run(7);
    assert!(live.events > 0, "fleet run must emit trace events");
    assert!(live.delivered_total > 0, "Delivered events must flow");

    let mut replayed = Pipeline::new(PipelineConfig::default());
    let stats = replay(BufReader::new(jsonl.as_bytes()), &mut replayed).expect("replay");
    assert!(
        stats.is_clean(),
        "recorded trace must parse: {:?}",
        stats.errors
    );
    assert_eq!(stats.events, live.events);

    assert_eq!(export_json(&live), export_json(&replayed));
    assert_eq!(export_csv(&live), export_csv(&replayed));

    // Replaying the same bytes twice is also identical (the CI gate).
    let mut again = Pipeline::new(PipelineConfig::default());
    replay(BufReader::new(jsonl.as_bytes()), &mut again).expect("replay");
    assert_eq!(export_json(&replayed), export_json(&again));
}

#[test]
fn same_seed_same_trace_different_seed_different_trace() {
    let (a, _) = live_run(7);
    let (b, _) = live_run(7);
    assert_eq!(a, b, "same seed must record byte-identical traces");
    let (c, _) = live_run(8);
    assert_ne!(a, c, "different seed should perturb the trace");
}

#[test]
fn monitor_cli_paths_round_trip_through_files() {
    let dir = std::env::temp_dir().join(format!("emptcp-monitor-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("fleet.trace.jsonl");
    let json_live = dir.join("live.json");
    let csv_live = dir.join("live.csv");
    let json_replay = dir.join("replay.json");
    let csv_replay = dir.join("replay.csv");

    let live = LiveOptions {
        clients: 6,
        seed: 11,
        duration_s: 1.5,
        record: Some(trace.clone()),
        export_json: Some(json_live.clone()),
        export_csv: Some(csv_live.clone()),
        quiet: true,
        ..LiveOptions::default()
    };
    run_live(&live).expect("live run");

    let replay_opts = ReplayOptions {
        trace: trace.clone(),
        check: true,
        export_json: Some(json_replay.clone()),
        export_csv: Some(csv_replay.clone()),
        quiet: true,
        knobs: live.knobs,
    };
    let code = run_replay(&replay_opts).expect("replay run");
    assert_eq!(code, 0, "recorded trace must replay cleanly");

    let read = |p: &PathBuf| std::fs::read(p).expect("export file");
    assert_eq!(read(&json_live), read(&json_replay));
    assert_eq!(read(&csv_live), read(&csv_replay));
    assert!(!read(&json_live).is_empty());

    std::fs::remove_dir_all(&dir).ok();
}
