#![warn(missing_docs)]
//! Deterministic discrete-event simulation kernel.
//!
//! This crate provides the substrate every other crate in the workspace is
//! built on: an integer-nanosecond clock ([`SimTime`], [`SimDuration`]), a
//! deterministic event queue ([`EventQueue`], [`Scheduler`]), a portable
//! pseudo-random number generator with the distributions the paper's
//! evaluation needs ([`rng::SimRng`]), time-series recording ([`trace`]) and
//! the summary statistics used throughout the paper's figures ([`stats`]).
//!
//! Everything here is deterministic: the same seed and the same sequence of
//! calls produce bit-identical results on every platform. Wall-clock time is
//! never consulted.
//!
//! ```
//! use emptcp_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.schedule(SimTime::from_millis(30), "rto");
//! let ack = queue.schedule(SimTime::from_millis(10), "delack");
//! queue.cancel(ack);
//! let (at, event) = queue.pop().unwrap();
//! assert_eq!((at, event), (SimTime::from_millis(30), "rto"));
//! ```

pub mod clocked;
pub mod epoch;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use clocked::Clocked;
pub use epoch::EpochClock;
pub use event::{EventQueue, KeyHeapQueue, Scheduler, TimerId};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
