//! Deterministic pseudo-random number generation.
//!
//! The simulator carries its own PCG-XSH-RR 64/32 generator instead of
//! depending on `rand`'s `SmallRng`, whose stream is allowed to change
//! between `rand` releases. Every experiment in the paper's evaluation is
//! reproducible from a single `u64` seed.
//!
//! The distributions implemented here are exactly the ones the evaluation
//! needs: uniform draws, exponential holding times for the two-state on-off
//! processes (§4.3, §4.4), Gaussian noise for channel variation, Pareto and
//! log-normal draws for the synthetic web-object sizes (§5.4).

use crate::time::SimDuration;

const PCG_MULT: u64 = 6364136223846793005;
const PCG_INC_DEFAULT: u64 = 1442695040888963407;

/// A deterministic PCG-XSH-RR 64/32 pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
    inc: u64,
}

impl SimRng {
    /// Create a generator from a seed. Distinct seeds yield uncorrelated
    /// streams for all practical purposes.
    pub fn new(seed: u64) -> Self {
        let mut rng = SimRng {
            state: 0,
            inc: PCG_INC_DEFAULT | 1,
        };
        rng.state = seed.wrapping_add(rng.inc);
        rng.next_u32();
        rng
    }

    /// Create a generator with an explicit stream selector, so independent
    /// model components can draw from provably disjoint streams.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = SimRng {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.state = seed.wrapping_add(rng.inc);
        rng.next_u32();
        rng
    }

    /// Derive a child generator; used to give each subsystem (channel,
    /// workload, interferer) its own stream from one experiment seed.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let seed = self.next_u64() ^ label.wrapping_mul(0x9E3779B97F4A7C15);
        SimRng::with_stream(seed, label.wrapping_add(0xda3e39cb94b95bdb))
    }

    /// Derive a child generator from a string label *without* advancing this
    /// generator. Two subsystems forked from the same parent with different
    /// labels draw from disjoint streams, and — because the parent is not
    /// consumed — adding a new forked consumer (e.g. a fault plan) can never
    /// shift the streams existing consumers (e.g. traffic) already use under
    /// the same seed.
    pub fn fork_labeled(&self, label: &str) -> SimRng {
        // FNV-1a over the label, then splitmix64-style finalization mixing
        // in the parent's position so distinct parents stay distinct.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mix = |mut z: u64| {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let seed = mix(h ^ self.state.wrapping_mul(0x9E3779B97F4A7C15));
        let stream = mix(h.wrapping_add(self.inc));
        SimRng::with_stream(seed, stream)
    }

    /// Next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next raw 64-bit output (two 32-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's method (unbiased).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential draw with the given rate (events per second).
    /// Used for the on-off holding times in §4.3/§4.4.
    pub fn exponential(&mut self, rate_per_sec: f64) -> f64 {
        debug_assert!(rate_per_sec > 0.0);
        // 1 - f64() is in (0, 1], so ln() is finite.
        -(1.0 - self.f64()).ln() / rate_per_sec
    }

    /// Exponential holding time as a `SimDuration`.
    pub fn exponential_duration(&mut self, rate_per_sec: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(rate_per_sec))
    }

    /// Standard normal draw (Box-Muller; one value per call, the pair's
    /// second half is deliberately discarded to keep the stream position
    /// independent of caller history).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.f64(); // (0, 1]
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal draw with mean `mu` and standard deviation `sigma`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.standard_normal()
    }

    /// Log-normal draw parameterized by the underlying normal's `mu`/`sigma`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Bounded Pareto draw (shape `alpha`, support `[lo, hi]`); used for
    /// heavy-tailed web-object sizes in the §5.4 workload.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        debug_assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
        let u = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_clones() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_answer_stability() {
        // Guards against accidental changes to the generator: these values
        // are part of the reproducibility contract.
        let mut rng = SimRng::new(0xDEADBEEF);
        let first: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        assert_eq!(first, vec![3283094731, 3888927911, 550695258, 2525947613]);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut rng = SimRng::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::new(11);
        let rate = 0.05; // mean 20 s, the paper's lambda_on
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 20.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = SimRng::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn bounded_pareto_support() {
        let mut rng = SimRng::new(17);
        for _ in 0..10_000 {
            let x = rng.bounded_pareto(1.2, 100.0, 1_000_000.0);
            assert!((100.0..=1_000_000.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(99);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_labeled_does_not_perturb_parent() {
        let mut with_fork = SimRng::new(99);
        let mut without = SimRng::new(99);
        let _faults = with_fork.fork_labeled("faults");
        for _ in 0..1000 {
            assert_eq!(with_fork.next_u64(), without.next_u64());
        }
    }

    #[test]
    fn fork_labeled_streams_are_distinct_and_deterministic() {
        let root = SimRng::new(7);
        let mut a = root.fork_labeled("traffic");
        let mut b = root.fork_labeled("faults");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
        let mut a2 = SimRng::new(7).fork_labeled("traffic");
        let mut a3 = SimRng::new(7).fork_labeled("traffic");
        for _ in 0..64 {
            assert_eq!(a2.next_u64(), a3.next_u64());
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(21);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_probability_estimate() {
        let mut rng = SimRng::new(23);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "{p}");
    }
}
