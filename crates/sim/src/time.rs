//! Simulated time: integer nanoseconds since the start of a run.
//!
//! Floating-point time accumulates rounding that breaks determinism and makes
//! event ordering platform-dependent; all simulation time is therefore kept
//! as `u64` nanoseconds and converted to seconds only at the measurement
//! boundary (energy integration, reporting).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since the run started.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time since the start of the run, as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed time since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from floating-point seconds, rounding to the nearest
    /// nanosecond and saturating at the representable range.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration as floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a floating-point factor (used for RTO backoff and sampling
    /// intervals derived from RTT estimates).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }

    /// The time needed to serialize `bytes` onto a link of `bits_per_sec`.
    pub fn transmission(bytes: u64, bits_per_sec: u64) -> SimDuration {
        if bits_per_sec == 0 {
            return SimDuration::MAX;
        }
        let bits = (bytes as u128) * 8 * 1_000_000_000;
        let ns = bits / bits_per_sec as u128;
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration(self.0.clamp(lo.0, hi.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        debug_assert!(self.0 >= other.0, "SimTime subtraction went negative");
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= other.0, "SimDuration subtraction went negative");
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            return write!(f, "inf");
        }
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            return write!(f, "inf");
        }
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(250).as_nanos(), 250_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert!((SimTime::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(SimTime::from_secs(14) - t, d);
        assert_eq!(d + d, SimDuration::from_secs(8));
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(0.001),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn transmission_delay() {
        // 1500 bytes at 12 Mbps = 1 ms.
        let d = SimDuration::transmission(1500, 12_000_000);
        assert_eq!(d, SimDuration::from_millis(1));
        assert_eq!(SimDuration::transmission(100, 0), SimDuration::MAX);
        assert_eq!(SimDuration::transmission(0, 1), SimDuration::ZERO);
    }

    #[test]
    fn checked_sub_time() {
        let t = SimTime::from_secs(2);
        assert_eq!(
            t.checked_sub(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
        assert_eq!(t.checked_sub(SimDuration::from_secs(3)), None);
    }

    #[test]
    fn mul_f64_scaling() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_secs(3));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::MAX), "inf");
    }
}
