//! Conservative-lookahead epoch clock for sharded simulation.
//!
//! When a simulation is partitioned into shards that exchange messages only
//! at synchronization barriers, each shard may safely advance to the end of
//! the current *epoch* without seeing a message from its past, provided every
//! cross-shard message incurs at least one epoch of latency (the *lookahead
//! bound*): a message generated at time `t` inside epoch `k` arrives no
//! earlier than `t + Δ ≥ (k+1)·Δ`, i.e. strictly after the epoch boundary
//! every shard synchronizes on.
//!
//! [`EpochClock`] owns the arithmetic: mapping instants to epoch indices and
//! epoch indices to execution bounds clamped to the simulation horizon. It is
//! deliberately tiny — correctness of the sharded engine hinges on this
//! arithmetic being obviously right.

use crate::time::{SimDuration, SimTime};

/// Epoch arithmetic for conservative-lookahead execution.
///
/// `delta` is the lookahead bound: the minimum latency of any cross-shard
/// link. Shards run events strictly *before* the epoch bound returned by
/// [`EpochClock::bound_for`], then exchange messages at the barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochClock {
    delta: SimDuration,
    horizon: SimTime,
}

impl EpochClock {
    /// Build a clock with lookahead `delta` over a run ending at `horizon`.
    ///
    /// `delta` must be non-zero: a zero lookahead admits same-instant
    /// cross-shard causality and the conservative bound degenerates. Callers
    /// with a zero minimum link latency must fall back to single-shard
    /// execution instead.
    pub fn new(delta: SimDuration, horizon: SimTime) -> EpochClock {
        assert!(
            delta > SimDuration::ZERO,
            "EpochClock requires a non-zero lookahead"
        );
        EpochClock { delta, horizon }
    }

    /// The lookahead bound Δ.
    pub fn delta(self) -> SimDuration {
        self.delta
    }

    /// The simulation horizon events must not outlive.
    pub fn horizon(self) -> SimTime {
        self.horizon
    }

    /// The epoch index containing instant `t` (epoch `k` spans
    /// `[k·Δ, (k+1)·Δ)`).
    pub fn epoch_of(self, t: SimTime) -> u64 {
        t.as_nanos() / self.delta.as_nanos()
    }

    /// The exclusive execution bound for the epoch containing `t`: shards
    /// process every event with `time < bound`. The bound is clamped to one
    /// nanosecond past the horizon so events *at* the horizon still run in
    /// the final epoch while the loop terminates immediately after.
    pub fn bound_for(self, t: SimTime) -> SimTime {
        let end = SimTime::ZERO + self.delta.saturating_mul(self.epoch_of(t) + 1);
        end.min(self.horizon + SimDuration::from_nanos(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_indexing() {
        let c = EpochClock::new(SimDuration::from_millis(1), SimTime::from_secs(1));
        assert_eq!(c.epoch_of(SimTime::ZERO), 0);
        assert_eq!(c.epoch_of(SimTime::from_nanos(999_999)), 0);
        assert_eq!(c.epoch_of(SimTime::from_millis(1)), 1);
        assert_eq!(
            c.epoch_of(SimTime::from_millis(7) + SimDuration::from_nanos(3)),
            7
        );
    }

    #[test]
    fn bounds_advance_by_delta() {
        let c = EpochClock::new(SimDuration::from_millis(1), SimTime::from_secs(1));
        assert_eq!(c.bound_for(SimTime::ZERO), SimTime::from_millis(1));
        assert_eq!(
            c.bound_for(SimTime::from_nanos(17)),
            SimTime::from_millis(1)
        );
        assert_eq!(
            c.bound_for(SimTime::from_millis(1)),
            SimTime::from_millis(2)
        );
    }

    #[test]
    fn bound_clamped_past_horizon() {
        let horizon = SimTime::from_millis(10) + SimDuration::from_nanos(500);
        let c = EpochClock::new(SimDuration::from_millis(3), horizon);
        // Epoch containing the horizon ends at 12 ms, but the bound clamps to
        // horizon + 1 ns so horizon-time events still run.
        assert_eq!(c.bound_for(horizon), horizon + SimDuration::from_nanos(1));
    }

    #[test]
    fn events_at_bound_belong_to_next_epoch() {
        let c = EpochClock::new(SimDuration::from_millis(2), SimTime::from_secs(1));
        let bound = c.bound_for(SimTime::ZERO);
        // An event exactly at the bound is epoch 1, not epoch 0.
        assert_eq!(c.epoch_of(bound), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero lookahead")]
    fn zero_delta_rejected() {
        let _ = EpochClock::new(SimDuration::ZERO, SimTime::from_secs(1));
    }

    #[test]
    fn message_latency_clears_barrier() {
        // The conservative-lookahead argument: any message sent at time t in
        // epoch k with latency >= delta arrives at >= (k+1) * delta = the
        // barrier every shard synchronizes on, so no shard sees its past.
        let delta = SimDuration::from_millis(1);
        let c = EpochClock::new(delta, SimTime::from_secs(1));
        for ns in [0u64, 1, 999_999, 1_000_000, 1_500_000, 123_456_789] {
            let t = SimTime::from_nanos(ns);
            let arrival = t + delta;
            let barrier = SimTime::ZERO + delta.saturating_mul(c.epoch_of(t) + 1);
            assert!(arrival >= barrier, "send at {ns} ns violates lookahead");
        }
    }
}
