//! The deterministic event queue at the heart of the simulator.
//!
//! Events are ordered by `(time, sequence-number)`: events scheduled for the
//! same instant fire in the order they were scheduled, which makes runs
//! reproducible regardless of heap internals or platform.
//!
//! Protocol crates in this workspace are written as poll-style state machines
//! (in the spirit of smoltcp): they never touch the queue directly, they
//! return deadlines and emissions, and a host drives them from the queue via
//! a single-threaded loop.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// Handle to a scheduled event, used for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(u64);

/// Hasher for event sequence numbers: a single Fibonacci multiply plus a
/// xor-fold. Sequence numbers are dense, monotonically assigned integers,
/// so a strong (SipHash) hasher buys nothing — this keeps the per-event
/// slab lookup to a couple of cycles on the simulator's hottest path.
#[derive(Default)]
pub struct SeqHasher(u64);

impl Hasher for SeqHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only reached for non-u64 keys; FNV-1a keeps it correct.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let h = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 29);
    }
}

/// Compact when at least this many tombstones accumulated …
const COMPACT_MIN_TOMBSTONES: usize = 64;
/// … and they make up more than half the heap.
const COMPACT_RATIO: usize = 2;

/// A priority queue of timestamped events with stable same-time ordering
/// and O(log n) cancellation.
///
/// The heap holds only 16-byte `(time, seq)` keys; event payloads (which
/// for a simulated network include whole segments) live in a sequence-
/// indexed slab, so sift operations move two words instead of the full
/// event. Cancellation removes the payload immediately and leaves a key
/// tombstone that is dropped lazily at pop/peek; when tombstones dominate
/// the heap it is compacted in one O(n) pass, so a cancel-heavy workload
/// (e.g. a retransmit timer re-armed on every ack) stays bounded.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    events: HashMap<u64, E, BuildHasherDefault<SeqHasher>>,
    tombstones: usize,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            events: HashMap::default(),
            tombstones: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error; the event is clamped to `now` in release builds.
    pub fn schedule(&mut self, at: SimTime, event: E) -> TimerId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past ({at:?} < {:?})",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.events.insert(seq, event);
        TimerId(seq)
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> TimerId {
        self.schedule(self.now + delay, event)
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op. The payload is dropped
    /// immediately; its heap key becomes a tombstone.
    pub fn cancel(&mut self, id: TimerId) {
        if self.events.remove(&id.0).is_some() {
            self.tombstones += 1;
            if self.tombstones >= COMPACT_MIN_TOMBSTONES
                && self.tombstones * COMPACT_RATIO > self.heap.len()
            {
                self.compact();
            }
        }
    }

    /// Rebuild the heap without tombstoned keys: one O(n) pass.
    fn compact(&mut self) {
        let heap = std::mem::take(&mut self.heap);
        self.heap = heap
            .into_iter()
            .filter(|&Reverse((_, seq))| self.events.contains_key(&seq))
            .collect();
        self.tombstones = 0;
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if let Some(event) = self.events.remove(&seq) {
                self.now = at;
                return Some((at, event));
            }
            self.tombstones -= 1;
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((at, seq))) = self.heap.peek() {
            if self.events.contains_key(&seq) {
                return Some(at);
            }
            self.heap.pop();
            self.tombstones -= 1;
        }
        None
    }

    /// Number of live events still queued.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A thin driver over [`EventQueue`] that runs a handler until the queue
/// drains or a horizon is reached. Most experiments bound their runs with
/// [`Scheduler::run_until`].
pub struct Scheduler<E> {
    queue: EventQueue<E>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// A scheduler with an empty queue.
    pub fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
        }
    }

    /// Access the underlying queue (for scheduling from the handler's
    /// environment between steps).
    pub fn queue(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedule an event at an absolute time.
    pub fn at(&mut self, t: SimTime, event: E) -> TimerId {
        self.queue.schedule(t, event)
    }

    /// Schedule an event after a delay.
    pub fn after(&mut self, d: SimDuration, event: E) -> TimerId {
        self.queue.schedule_after(d, event)
    }

    /// Run events in order until the queue empties or the next event would
    /// fire after `horizon`; events exactly at the horizon still fire.
    /// The handler may schedule further events through the supplied queue.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F)
    where
        F: FnMut(&mut EventQueue<E>, SimTime, E),
    {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (at, ev) = self.queue.pop().expect("peeked event vanished");
            handler(&mut self.queue, at, ev);
        }
    }

    /// Run until the queue is fully drained.
    pub fn run_to_completion<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut EventQueue<E>, SimTime, E),
    {
        while let Some((at, ev)) = self.queue.pop() {
            handler(&mut self.queue, at, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn same_time_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        let b = q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(3), "c");
        q.cancel(b);
        q.cancel(b); // double-cancel is a no-op
        assert_eq!(q.len(), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "c"]);
        q.cancel(a); // cancelling a fired event is a no-op
    }

    #[test]
    fn cancelling_a_fired_event_keeps_len_exact() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        q.cancel(a); // no-op: already fired
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn heavy_cancellation_compacts_the_heap() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        // Re-arm a timer thousands of times: schedule, cancel, repeat —
        // the pattern of a retransmit timer reset on every ack.
        let mut id = q.schedule(t, 0u32);
        for i in 1..5_000u32 {
            q.cancel(id);
            id = q.schedule(t, i);
        }
        assert_eq!(q.len(), 1);
        // Compaction must have kept the heap near the live size rather
        // than letting all 4 999 tombstones accumulate.
        assert!(
            q.heap.len() < COMPACT_MIN_TOMBSTONES * 2 + 1,
            "heap holds {} entries for 1 live event",
            q.heap.len()
        );
        assert_eq!(q.pop().map(|(_, e)| e), Some(4_999));
        assert!(q.pop().is_none());
    }

    #[test]
    fn compaction_preserves_order_and_clock() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        for i in 0..500u64 {
            let id = q.schedule(SimTime::from_millis(1000 - i), i);
            if i % 5 == 0 {
                keep.push(i);
            } else {
                q.cancel(id);
            }
        }
        assert_eq!(q.len(), keep.len());
        let mut popped = Vec::new();
        while let Some((_, e)) = q.pop() {
            popped.push(e);
        }
        // Live events come out in time order (descending i ⇒ ascending
        // time), untouched by the compactions the cancels triggered.
        keep.reverse();
        assert_eq!(popped, keep);
        assert_eq!(q.now(), SimTime::from_millis(1000));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "x");
        q.pop();
        q.schedule_after(SimDuration::from_secs(5), "y");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(15)));
    }

    #[test]
    fn scheduler_run_until_horizon() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 1..=10u32 {
            s.at(SimTime::from_secs(i as u64), i);
        }
        let mut fired = Vec::new();
        s.run_until(SimTime::from_secs(5), |_, _, e| fired.push(e));
        assert_eq!(fired, vec![1, 2, 3, 4, 5]);
        assert_eq!(s.queue().len(), 5);
    }

    #[test]
    fn scheduler_handler_can_reschedule() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.at(SimTime::from_secs(0), 0);
        let mut count = 0;
        s.run_until(SimTime::from_secs(10), |q, t, _| {
            count += 1;
            q.schedule(t + SimDuration::from_secs(1), 0);
        });
        // Fires at t = 0..=10 inclusive.
        assert_eq!(count, 11);
    }

    #[test]
    fn run_to_completion_drains() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.at(SimTime::from_secs(1), "a");
        s.at(SimTime::from_secs(2), "b");
        let mut n = 0;
        s.run_to_completion(|_, _, _| n += 1);
        assert_eq!(n, 2);
        assert!(s.queue().is_empty());
    }
}
