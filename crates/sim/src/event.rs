//! The deterministic event queue at the heart of the simulator.
//!
//! Events are ordered by `(time, sequence-number)`: events scheduled for the
//! same instant fire in the order they were scheduled, which makes runs
//! reproducible regardless of heap internals or platform.
//!
//! Protocol crates in this workspace are written as poll-style state machines
//! (in the spirit of smoltcp): they never touch the queue directly, they
//! return deadlines and emissions, and a host drives them from the queue via
//! a single-threaded loop.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, used for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(u64);

#[derive(Clone, Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A priority queue of timestamped events with stable same-time ordering and
/// O(log n) cancellation (tombstones resolved lazily at pop time).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error; the event is clamped to `now` in release builds.
    pub fn schedule(&mut self, at: SimTime, event: E) -> TimerId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past ({at:?} < {:?})",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
        TimerId(seq)
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> TimerId {
        self.schedule(self.now + delay, event)
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op.
    pub fn cancel(&mut self, id: TimerId) {
        if id.0 < self.next_seq {
            self.cancelled.insert(id.0);
        }
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now = entry.at;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of live events still queued.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A thin driver over [`EventQueue`] that runs a handler until the queue
/// drains or a horizon is reached. Most experiments bound their runs with
/// [`Scheduler::run_until`].
pub struct Scheduler<E> {
    queue: EventQueue<E>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// A scheduler with an empty queue.
    pub fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
        }
    }

    /// Access the underlying queue (for scheduling from the handler's
    /// environment between steps).
    pub fn queue(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedule an event at an absolute time.
    pub fn at(&mut self, t: SimTime, event: E) -> TimerId {
        self.queue.schedule(t, event)
    }

    /// Schedule an event after a delay.
    pub fn after(&mut self, d: SimDuration, event: E) -> TimerId {
        self.queue.schedule_after(d, event)
    }

    /// Run events in order until the queue empties or the next event would
    /// fire after `horizon`; events exactly at the horizon still fire.
    /// The handler may schedule further events through the supplied queue.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F)
    where
        F: FnMut(&mut EventQueue<E>, SimTime, E),
    {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (at, ev) = self.queue.pop().expect("peeked event vanished");
            handler(&mut self.queue, at, ev);
        }
    }

    /// Run until the queue is fully drained.
    pub fn run_to_completion<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut EventQueue<E>, SimTime, E),
    {
        while let Some((at, ev)) = self.queue.pop() {
            handler(&mut self.queue, at, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn same_time_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        let b = q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(3), "c");
        q.cancel(b);
        q.cancel(b); // double-cancel is a no-op
        assert_eq!(q.len(), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "c"]);
        q.cancel(a); // cancelling a fired event is a no-op
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "x");
        q.pop();
        q.schedule_after(SimDuration::from_secs(5), "y");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(15)));
    }

    #[test]
    fn scheduler_run_until_horizon() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 1..=10u32 {
            s.at(SimTime::from_secs(i as u64), i);
        }
        let mut fired = Vec::new();
        s.run_until(SimTime::from_secs(5), |_, _, e| fired.push(e));
        assert_eq!(fired, vec![1, 2, 3, 4, 5]);
        assert_eq!(s.queue().len(), 5);
    }

    #[test]
    fn scheduler_handler_can_reschedule() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.at(SimTime::from_secs(0), 0);
        let mut count = 0;
        s.run_until(SimTime::from_secs(10), |q, t, _| {
            count += 1;
            q.schedule(t + SimDuration::from_secs(1), 0);
        });
        // Fires at t = 0..=10 inclusive.
        assert_eq!(count, 11);
    }

    #[test]
    fn run_to_completion_drains() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.at(SimTime::from_secs(1), "a");
        s.at(SimTime::from_secs(2), "b");
        let mut n = 0;
        s.run_to_completion(|_, _, _| n += 1);
        assert_eq!(n, 2);
        assert!(s.queue().is_empty());
    }
}
