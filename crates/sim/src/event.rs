//! The deterministic event queue at the heart of the simulator.
//!
//! Events are ordered by `(time, sequence-number)`: events scheduled for the
//! same instant fire in the order they were scheduled, which makes runs
//! reproducible regardless of queue internals or platform.
//!
//! Two structurally independent implementations share one API:
//!
//! * [`EventQueue`] — the production queue: a hierarchical timing wheel for
//!   the re-armed timer class (RTO, pacing, cross-traffic, fleet ticks) with
//!   a key-heap fallback for far-future one-shots, over a slab of payloads.
//! * [`KeyHeapQueue`] — the original `(time, seq)` key-heap. It survives as
//!   the reference model the three-way differential proptest drives against
//!   the wheel and a sorted-Vec oracle (`tests/event_queue_model.rs`), so
//!   any divergence in pop order is caught structurally, not statistically.
//!
//! Protocol crates in this workspace are written as poll-style state machines
//! (in the spirit of smoltcp): they never touch the queue directly, they
//! return deadlines and emissions, and a host drives them from the queue via
//! a single-threaded loop.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// Handle to a scheduled event, used for cancellation.
///
/// Carries the event's sequence number (its identity) and the slab slot the
/// payload lives in (a lookup hint). A stale handle — already fired or
/// already cancelled — fails the sequence check and cancels nothing, so
/// handles can be held across pops safely.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId {
    seq: u64,
    slot: u32,
}

/// Hasher for event sequence numbers: a single Fibonacci multiply plus a
/// xor-fold. Sequence numbers are dense, monotonically assigned integers,
/// so a strong (SipHash) hasher buys nothing — this keeps the per-event
/// map lookup in [`KeyHeapQueue`] to a couple of cycles.
#[derive(Default)]
pub struct SeqHasher(u64);

impl Hasher for SeqHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only reached for non-u64 keys; FNV-1a keeps it correct.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let h = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 29);
    }
}

/// Compact when at least this many tombstones accumulated …
const COMPACT_MIN_TOMBSTONES: usize = 64;
/// … and they make up more than half the stored keys.
const COMPACT_RATIO: usize = 2;

/// One wheel tick is `2^TICK_SHIFT` nanoseconds (1.024 µs) — comfortably
/// below every timer the stacks arm (delayed acks are milliseconds, RTOs
/// hundreds of milliseconds), so timer-class events almost never collide
/// into the exact-order heap unnecessarily.
const TICK_SHIFT: u32 = 10;
/// Each level fans out over `2^LEVEL_BITS = 64` slots.
const LEVEL_BITS: u32 = 6;
const SLOTS: usize = 1 << LEVEL_BITS;
/// Four levels cover `64^4` ticks ≈ 17.2 s of lookahead; anything further
/// out (idle-timeout sentinels, `SimTime::MAX` markers) takes the far-heap
/// fallback and is popped from there directly.
const LEVELS: usize = 4;
/// Ticks covered by the whole wheel.
const WHEEL_SPAN: u64 = 1 << (LEVEL_BITS * LEVELS as u32);

/// A stored queue key: the `(time, seq)` total order plus the slab slot of
/// the payload. Three words — sift and cascade operations move these, never
/// the payload (which for a simulated network can be a whole segment).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Key {
    at: SimTime,
    seq: u64,
    slot: u32,
}

/// A payload slab slot. `seq` identifies the current occupant; a key or
/// [`TimerId`] whose sequence number disagrees is stale (the event fired or
/// was cancelled and the slot has been recycled).
#[derive(Debug)]
struct SlabSlot<E> {
    seq: u64,
    payload: Option<E>,
}

/// A priority queue of timestamped events with stable same-time ordering,
/// O(1) cancellation, and amortized O(1) scheduling for the near future.
///
/// # Structure
///
/// * **Payload slab** — events live in a free-listed `Vec`; the wheel and
///   heaps store only 24-byte [`Key`]s pointing at slots. Alloc/free is a
///   `Vec` push/pop; slots are recycled with a fresh sequence number, which
///   is what makes stale [`TimerId`]s detectable.
/// * **Hierarchical timing wheel** — [`LEVELS`] levels of [`SLOTS`] slots,
///   one tick = `2^TICK_SHIFT` ns. An event `delta` ticks ahead lands in
///   the level whose granularity spans it; as the cursor passes a slot the
///   slot is drained: level-0 slots feed the *ready heap*, higher slots
///   cascade their keys strictly downward.
/// * **Ready heap** — a `BinaryHeap` of keys already behind the wheel
///   cursor. Only its top is ever compared against the wheel boundary, and
///   it stays small (the events of the current tick neighbourhood).
/// * **Far heap** — the fallback for events beyond the wheel span. They are
///   popped directly from here when their time comes; no migration needed.
///
/// # Why the `(time, seq)` order is exact
///
/// A candidate (the smaller of the ready/far tops) fires only when its
/// timestamp is strictly below the *wheel boundary* — the start time of the
/// earliest occupied wheel slot, which is a proven lower bound on every
/// event still stored in the wheel. If the candidate is not strictly below
/// the boundary, the boundary slot is drained first, which moves any
/// potential earlier-or-tied event into the ready heap, where the full
/// `(time, seq)` comparison decides. Ties on `time` therefore always
/// resolve by sequence number, never by which structure held the event —
/// the property the byte-identity guarantees of the whole repo sit on, and
/// the one the three-way differential proptest pins.
#[derive(Debug)]
pub struct EventQueue<E> {
    slots: Vec<SlabSlot<E>>,
    free_slots: Vec<u32>,
    /// Flat `[level][slot]` buckets: `wheel[level * SLOTS + slot]`.
    wheel: Vec<Vec<Key>>,
    /// Per-level bitmap of non-empty slots.
    occupancy: [u64; LEVELS],
    ready: BinaryHeap<Reverse<Key>>,
    far: BinaryHeap<Reverse<Key>>,
    /// The wheel cursor: every key still stored in the wheel has
    /// `tick >= the start of its slot >= the earliest boundary`, and slots
    /// the cursor has passed are empty.
    cur_tick: u64,
    live: usize,
    /// Stale keys (cancelled payloads) still stored somewhere.
    tombstones: usize,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free_slots: Vec::new(),
            wheel: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS],
            ready: BinaryHeap::new(),
            far: BinaryHeap::new(),
            cur_tick: 0,
            live: 0,
            tombstones: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error; the event is clamped to `now` in release builds.
    pub fn schedule(&mut self, at: SimTime, event: E) -> TimerId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past ({at:?} < {:?})",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free_slots.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                s.seq = seq;
                s.payload = Some(event);
                i
            }
            None => {
                debug_assert!(self.slots.len() < u32::MAX as usize, "slab full");
                self.slots.push(SlabSlot {
                    seq,
                    payload: Some(event),
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.live += 1;
        self.place(Key { at, seq, slot });
        TimerId { seq, slot }
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> TimerId {
        self.schedule(self.now + delay, event)
    }

    /// Schedule `event` at `at` under a caller-supplied ordering key.
    ///
    /// Same-time events pop in ascending `key` order instead of insertion
    /// order, which makes the pop order a pure function of the event set —
    /// the property sharded hosts need so that *where* an event was
    /// scheduled from (which shard, which barrier exchange) can never leak
    /// into execution order. The caller must guarantee `key` is unique
    /// among the events it ever schedules on this queue: a same-`(at, key)`
    /// pair would fall back to slab-slot order, which is insertion-
    /// dependent. Auto-keyed [`EventQueue::schedule`] draws from a private
    /// monotonic counter; a queue should use one discipline or the other,
    /// not both, unless the caller keys from a disjoint range.
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, event: E) -> TimerId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past ({at:?} < {:?})",
            self.now
        );
        let at = at.max(self.now);
        let seq = key;
        let slot = match self.free_slots.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                s.seq = seq;
                s.payload = Some(event);
                i
            }
            None => {
                debug_assert!(self.slots.len() < u32::MAX as usize, "slab full");
                self.slots.push(SlabSlot {
                    seq,
                    payload: Some(event),
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.live += 1;
        self.place(Key { at, seq, slot });
        TimerId { seq, slot }
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op. The payload is dropped and its
    /// slab slot recycled immediately; the stored key becomes a tombstone
    /// that is dropped lazily (or swept by compaction).
    pub fn cancel(&mut self, id: TimerId) {
        let Some(s) = self.slots.get_mut(id.slot as usize) else {
            return;
        };
        if s.seq == id.seq && s.payload.is_some() {
            s.payload = None;
            self.free_slots.push(id.slot);
            self.live -= 1;
            self.tombstones += 1;
            if self.tombstones >= COMPACT_MIN_TOMBSTONES
                && self.tombstones * COMPACT_RATIO > self.live + self.tombstones
            {
                self.compact();
            }
        }
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (from_far, key) = self.settle()?;
        let top = if from_far {
            self.far.pop()
        } else {
            self.ready.pop()
        };
        debug_assert_eq!(top, Some(Reverse(key)));
        let s = &mut self.slots[key.slot as usize];
        let payload = s.payload.take().expect("settled key must be live");
        self.free_slots.push(key.slot);
        self.live -= 1;
        self.now = key.at;
        Some((key.at, payload))
    }

    /// Timestamp of the next live event without popping it. May advance the
    /// wheel cursor internally (never the clock), hence `&mut`.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.settle().map(|(_, key)| key.at)
    }

    /// Number of live events still queued.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    #[inline]
    fn is_live(&self, key: Key) -> bool {
        let s = &self.slots[key.slot as usize];
        s.seq == key.seq && s.payload.is_some()
    }

    /// The wheel level whose slot granularity spans an event `delta` ticks
    /// ahead of the cursor. Caller has already excluded `delta >= WHEEL_SPAN`.
    #[inline]
    fn level_for(delta: u64) -> usize {
        match delta {
            d if d < 1 << LEVEL_BITS => 0,
            d if d < 1 << (2 * LEVEL_BITS) => 1,
            d if d < 1 << (3 * LEVEL_BITS) => 2,
            _ => 3,
        }
    }

    /// File a key into the structure that owns its time range: the ready
    /// heap for anything at or behind the cursor, the wheel level whose
    /// granularity spans the distance, or the far heap beyond the span.
    /// Always safe: moving a key to the ready heap early never breaks the
    /// order (the heap compares full keys), it only costs heap space.
    fn place(&mut self, key: Key) {
        let tick = key.at.as_nanos() >> TICK_SHIFT;
        if tick < self.cur_tick {
            self.ready.push(Reverse(key));
            return;
        }
        let delta = tick - self.cur_tick;
        if delta >= WHEEL_SPAN {
            self.far.push(Reverse(key));
            return;
        }
        let lvl = Self::level_for(delta);
        let idx = ((tick >> (LEVEL_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as usize;
        self.wheel[lvl * SLOTS + idx].push(key);
        self.occupancy[lvl] |= 1 << idx;
    }

    /// The earliest occupied wheel slot as `(start_tick, level, index)`.
    /// `start_tick << TICK_SHIFT` is a lower bound on the timestamp of
    /// every key still stored in the wheel: keys never sit in a slot the
    /// cursor has passed, so the first occupied slot at-or-after the cursor
    /// position of each level bounds that level from below.
    fn next_boundary(&self) -> Option<(u64, usize, usize)> {
        let mut best: Option<(u64, usize, usize)> = None;
        for lvl in 0..LEVELS {
            let occ = self.occupancy[lvl];
            if occ == 0 {
                continue;
            }
            let shift = LEVEL_BITS * lvl as u32;
            let cur_s = self.cur_tick >> shift;
            let cur_i = (cur_s & (SLOTS as u64 - 1)) as u32;
            // After the rotate, bit j = slot (cur_i + j) % SLOTS: the
            // distance from the cursor to the first occupied slot, O(1).
            let j = occ.rotate_right(cur_i).trailing_zeros() as u64;
            let s = cur_s + j;
            let b = s << shift;
            if best.is_none_or(|(bb, _, _)| b < bb) {
                let idx = ((cur_i as u64 + j) & (SLOTS as u64 - 1)) as usize;
                best = Some((b, lvl, idx));
            }
        }
        best
    }

    /// Drain the wheel slot at `(start_tick b, level, index)` — the current
    /// earliest boundary. Level-0 slots feed the ready heap. Higher slots
    /// cascade: a key re-enters the wheel only if it lands on a *strictly
    /// lower* level; otherwise it goes to the ready heap (always
    /// order-safe). The strict-descent rule is what makes
    /// [`EventQueue::settle`] terminate: a slot whose residue matches the
    /// cursor's own position can hold keys from the *next* rotation of its
    /// level (the cursor sits mid-slot, so `delta` stays just inside the
    /// level's span), and re-filing those at the same level would re-fill
    /// the very slot being drained, cycling forever. Sending them to the
    /// ready heap early costs a little heap space for a thin band of
    /// near-rotation events and nothing in correctness.
    fn drain_slot(&mut self, b: u64, lvl: usize, idx: usize) {
        let cell = lvl * SLOTS + idx;
        let mut keys = std::mem::take(&mut self.wheel[cell]);
        self.occupancy[lvl] &= !(1u64 << idx);
        if lvl == 0 {
            // The slot spans exactly one tick; every other stored key is
            // provably at a later tick, so the cursor may pass it.
            self.cur_tick = self.cur_tick.max(b + 1);
            for k in keys.drain(..) {
                if self.is_live(k) {
                    self.ready.push(Reverse(k));
                } else {
                    self.tombstones -= 1;
                }
            }
        } else {
            self.cur_tick = self.cur_tick.max(b);
            for k in keys.drain(..) {
                if !self.is_live(k) {
                    self.tombstones -= 1;
                    continue;
                }
                let tick = k.at.as_nanos() >> TICK_SHIFT;
                // Drained keys sit within 64^lvl ticks of the (possibly
                // just-advanced) cursor, so `level_for` never exceeds
                // `lvl`; equality marks the next-rotation alias band.
                if tick >= self.cur_tick && Self::level_for(tick - self.cur_tick) < lvl {
                    self.place(k);
                } else {
                    self.ready.push(Reverse(k));
                }
            }
        }
        // Hand the bucket's allocation back so steady-state cascading
        // never reallocates.
        if self.wheel[cell].capacity() == 0 {
            self.wheel[cell] = keys;
        }
    }

    /// Advance the wheel until the front candidate (smaller of the
    /// ready/far tops) provably precedes everything still in the wheel,
    /// then return it (without removing it). Prunes stale heap tops on the
    /// way. Returns `(came_from_far_heap, key)`.
    fn settle(&mut self) -> Option<(bool, Key)> {
        loop {
            while let Some(&Reverse(k)) = self.ready.peek() {
                if self.is_live(k) {
                    break;
                }
                self.ready.pop();
                self.tombstones -= 1;
            }
            while let Some(&Reverse(k)) = self.far.peek() {
                if self.is_live(k) {
                    break;
                }
                self.far.pop();
                self.tombstones -= 1;
            }
            let cand = match (self.ready.peek(), self.far.peek()) {
                (Some(&Reverse(r)), Some(&Reverse(f))) => {
                    Some(if r <= f { (false, r) } else { (true, f) })
                }
                (Some(&Reverse(r)), None) => Some((false, r)),
                (None, Some(&Reverse(f))) => Some((true, f)),
                (None, None) => None,
            };
            match (cand, self.next_boundary()) {
                // Strictly before the boundary: nothing in the wheel can
                // precede or tie it, fire. (A tie on the boundary time must
                // drain the slot first — the wheel key could hold a smaller
                // sequence number.)
                (Some(c), Some((b, _, _))) if c.1.at.as_nanos() < (b << TICK_SHIFT) => {
                    return Some(c)
                }
                (Some(c), None) => return Some(c),
                (None, None) => return None,
                (_, Some((b, lvl, idx))) => self.drain_slot(b, lvl, idx),
            }
        }
    }

    /// Sweep every stored key, dropping tombstones: one O(n) pass. Live
    /// keys re-place against the current cursor (far keys that have come
    /// near re-enter the wheel as a bonus).
    fn compact(&mut self) {
        let mut stored: Vec<Key> = Vec::with_capacity(self.live);
        stored.extend(self.ready.drain().map(|Reverse(k)| k));
        stored.extend(self.far.drain().map(|Reverse(k)| k));
        for cell in 0..LEVELS * SLOTS {
            stored.append(&mut self.wheel[cell]);
        }
        self.occupancy = [0; LEVELS];
        for k in stored {
            if self.is_live(k) {
                self.place(k);
            }
        }
        self.tombstones = 0;
    }

    /// Total keys physically stored (live + tombstones), for tests that pin
    /// the compaction bound.
    #[cfg(test)]
    fn stored_keys(&self) -> usize {
        self.ready.len() + self.far.len() + self.wheel.iter().map(Vec::len).sum::<usize>()
    }
}

/// The original event queue: a `BinaryHeap` of 16-byte `(time, seq)` keys
/// over a sequence-indexed payload map, with tombstoned cancellation and
/// O(n) compaction.
///
/// Retired from the hot path in favour of the timing-wheel [`EventQueue`],
/// but kept fully functional as the structurally independent reference the
/// differential test harness (`tests/event_queue_model.rs`, the CI
/// `hotpath-differential` step) drives in lockstep with the wheel: two
/// implementations that share nothing but the API contract and must agree
/// on every pop.
#[derive(Debug)]
pub struct KeyHeapQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    events: HashMap<u64, E, BuildHasherDefault<SeqHasher>>,
    tombstones: usize,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for KeyHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> KeyHeapQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        KeyHeapQueue {
            heap: BinaryHeap::new(),
            events: HashMap::default(),
            tombstones: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error; the event is clamped to `now` in release builds.
    pub fn schedule(&mut self, at: SimTime, event: E) -> TimerId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past ({at:?} < {:?})",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.events.insert(seq, event);
        // The slot field is meaningless here; `u32::MAX` makes a key-heap
        // handle fail the wheel's slab bounds check if ever cross-applied.
        TimerId {
            seq,
            slot: u32::MAX,
        }
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> TimerId {
        self.schedule(self.now + delay, event)
    }

    /// Schedule `event` at `at` under a caller-supplied ordering key; see
    /// [`EventQueue::schedule_keyed`] for the contract. Here the key also
    /// doubles as the payload-map key, so uniqueness among *live* events is
    /// a hard requirement, not just an ordering nicety.
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, event: E) -> TimerId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past ({at:?} < {:?})",
            self.now
        );
        let at = at.max(self.now);
        debug_assert!(
            !self.events.contains_key(&key),
            "schedule_keyed: duplicate live key {key}"
        );
        self.heap.push(Reverse((at, key)));
        self.events.insert(key, event);
        TimerId {
            seq: key,
            slot: u32::MAX,
        }
    }

    /// Cancel a previously scheduled event (no-op when already fired or
    /// cancelled). The payload is dropped immediately; its heap key becomes
    /// a tombstone dropped lazily at pop/peek or swept by compaction.
    pub fn cancel(&mut self, id: TimerId) {
        if self.events.remove(&id.seq).is_some() {
            self.tombstones += 1;
            if self.tombstones >= COMPACT_MIN_TOMBSTONES
                && self.tombstones * COMPACT_RATIO > self.heap.len()
            {
                self.compact();
            }
        }
    }

    /// Rebuild the heap without tombstoned keys: one O(n) pass.
    fn compact(&mut self) {
        let heap = std::mem::take(&mut self.heap);
        self.heap = heap
            .into_iter()
            .filter(|&Reverse((_, seq))| self.events.contains_key(&seq))
            .collect();
        self.tombstones = 0;
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if let Some(event) = self.events.remove(&seq) {
                self.now = at;
                return Some((at, event));
            }
            self.tombstones -= 1;
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((at, seq))) = self.heap.peek() {
            if self.events.contains_key(&seq) {
                return Some(at);
            }
            self.heap.pop();
            self.tombstones -= 1;
        }
        None
    }

    /// Number of live events still queued.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    #[cfg(test)]
    fn stored_keys(&self) -> usize {
        self.heap.len()
    }
}

/// A thin driver over [`EventQueue`] that runs a handler until the queue
/// drains or a horizon is reached. Most experiments bound their runs with
/// [`Scheduler::run_until`].
pub struct Scheduler<E> {
    queue: EventQueue<E>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// A scheduler with an empty queue.
    pub fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
        }
    }

    /// Access the underlying queue (for scheduling from the handler's
    /// environment between steps).
    pub fn queue(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedule an event at an absolute time.
    pub fn at(&mut self, t: SimTime, event: E) -> TimerId {
        self.queue.schedule(t, event)
    }

    /// Schedule an event after a delay.
    pub fn after(&mut self, d: SimDuration, event: E) -> TimerId {
        self.queue.schedule_after(d, event)
    }

    /// Run events in order until the queue empties or the next event would
    /// fire after `horizon`; events exactly at the horizon still fire.
    /// The handler may schedule further events through the supplied queue.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F)
    where
        F: FnMut(&mut EventQueue<E>, SimTime, E),
    {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (at, ev) = self.queue.pop().expect("peeked event vanished");
            handler(&mut self.queue, at, ev);
        }
    }

    /// Run until the queue is fully drained.
    pub fn run_to_completion<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut EventQueue<E>, SimTime, E),
    {
        while let Some((at, ev)) = self.queue.pop() {
            handler(&mut self.queue, at, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shared behavioural battery, instantiated once per queue type:
    /// both implementations must satisfy the identical contract.
    macro_rules! queue_battery {
        ($modname:ident, $Q:ident) => {
            mod $modname {
                use super::*;

                #[test]
                fn pops_in_time_order() {
                    let mut q = $Q::new();
                    q.schedule(SimTime::from_secs(3), "c");
                    q.schedule(SimTime::from_secs(1), "a");
                    q.schedule(SimTime::from_secs(2), "b");
                    let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
                    assert_eq!(order, vec!["a", "b", "c"]);
                    assert_eq!(q.now(), SimTime::from_secs(3));
                }

                #[test]
                fn same_time_fifo() {
                    let mut q = $Q::new();
                    let t = SimTime::from_secs(5);
                    for i in 0..100 {
                        q.schedule(t, i);
                    }
                    let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
                    assert_eq!(order, (0..100).collect::<Vec<_>>());
                }

                #[test]
                fn keyed_same_instant_pops_in_key_order() {
                    let mut q = $Q::new();
                    let t = SimTime::from_secs(1);
                    // Insertion order deliberately scrambled: pop order must
                    // follow the caller-supplied keys, not insertion.
                    q.schedule_keyed(t, 7, "g");
                    q.schedule_keyed(t, 2, "b");
                    q.schedule_keyed(t, 5, "e");
                    q.schedule_keyed(t, 1, "a");
                    let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
                    assert_eq!(order, vec!["a", "b", "e", "g"]);
                }

                #[test]
                fn keyed_respects_time_before_key() {
                    let mut q = $Q::new();
                    q.schedule_keyed(SimTime::from_secs(2), 1, "late");
                    q.schedule_keyed(SimTime::from_secs(1), 9, "early");
                    let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
                    assert_eq!(order, vec!["early", "late"]);
                }

                #[test]
                fn keyed_events_cancel() {
                    let mut q = $Q::new();
                    q.schedule_keyed(SimTime::from_secs(1), 1, "a");
                    let b = q.schedule_keyed(SimTime::from_secs(1), 2, "b");
                    q.schedule_keyed(SimTime::from_secs(1), 3, "c");
                    q.cancel(b);
                    let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
                    assert_eq!(order, vec!["a", "c"]);
                }

                #[test]
                fn cancellation() {
                    let mut q = $Q::new();
                    let a = q.schedule(SimTime::from_secs(1), "a");
                    let b = q.schedule(SimTime::from_secs(2), "b");
                    q.schedule(SimTime::from_secs(3), "c");
                    q.cancel(b);
                    q.cancel(b); // double-cancel is a no-op
                    assert_eq!(q.len(), 2);
                    let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
                    assert_eq!(order, vec!["a", "c"]);
                    q.cancel(a); // cancelling a fired event is a no-op
                }

                #[test]
                fn cancelling_a_fired_event_keeps_len_exact() {
                    let mut q = $Q::new();
                    let a = q.schedule(SimTime::from_secs(1), "a");
                    q.schedule(SimTime::from_secs(2), "b");
                    assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
                    q.cancel(a); // no-op: already fired
                    assert_eq!(q.len(), 1);
                    assert!(!q.is_empty());
                    assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
                    assert_eq!(q.len(), 0);
                }

                #[test]
                fn heavy_cancellation_compacts_storage() {
                    let mut q = $Q::new();
                    let t = SimTime::from_secs(1);
                    // Re-arm a timer thousands of times: schedule, cancel,
                    // repeat — the pattern of a retransmit timer reset on
                    // every ack.
                    let mut id = q.schedule(t, 0u32);
                    for i in 1..5_000u32 {
                        q.cancel(id);
                        id = q.schedule(t, i);
                    }
                    assert_eq!(q.len(), 1);
                    // Compaction must have kept storage near the live size
                    // rather than letting all 4 999 tombstones accumulate.
                    assert!(
                        q.stored_keys() < COMPACT_MIN_TOMBSTONES * 2 + 1,
                        "{} stored keys for 1 live event",
                        q.stored_keys()
                    );
                    assert_eq!(q.pop().map(|(_, e)| e), Some(4_999));
                    assert!(q.pop().is_none());
                }

                #[test]
                fn compaction_preserves_order_and_clock() {
                    let mut q = $Q::new();
                    let mut keep = Vec::new();
                    for i in 0..500u64 {
                        let id = q.schedule(SimTime::from_millis(1000 - i), i);
                        if i % 5 == 0 {
                            keep.push(i);
                        } else {
                            q.cancel(id);
                        }
                    }
                    assert_eq!(q.len(), keep.len());
                    let mut popped = Vec::new();
                    while let Some((_, e)) = q.pop() {
                        popped.push(e);
                    }
                    // Live events come out in time order (descending i ⇒
                    // ascending time), untouched by the compactions the
                    // cancels triggered.
                    keep.reverse();
                    assert_eq!(popped, keep);
                    assert_eq!(q.now(), SimTime::from_millis(1000));
                }

                #[test]
                fn peek_skips_cancelled() {
                    let mut q = $Q::new();
                    let a = q.schedule(SimTime::from_secs(1), "a");
                    q.schedule(SimTime::from_secs(2), "b");
                    q.cancel(a);
                    assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
                    assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
                }

                #[test]
                fn schedule_after_uses_current_time() {
                    let mut q = $Q::new();
                    q.schedule(SimTime::from_secs(10), "x");
                    q.pop();
                    q.schedule_after(SimDuration::from_secs(5), "y");
                    assert_eq!(q.peek_time(), Some(SimTime::from_secs(15)));
                }

                #[test]
                fn far_future_and_near_interleave_in_order() {
                    let mut q = $Q::new();
                    // Beyond the wheel span (> 17.2 s): far-heap fallback.
                    q.schedule(SimTime::from_secs(3600), "hour");
                    q.schedule(SimTime::from_nanos(u64::MAX - 1), "sentinel");
                    q.schedule(SimTime::from_secs(20), "soon-ish");
                    q.schedule(SimTime::from_nanos(5_000), "now");
                    let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
                    assert_eq!(order, vec!["now", "soon-ish", "hour", "sentinel"]);
                }

                #[test]
                fn same_instant_across_structures_resolves_by_seq() {
                    let mut q = $Q::new();
                    // Seed the clock so later schedules straddle the wheel
                    // levels, then pile many events onto one instant from
                    // different distances (scheduled before and after
                    // intervening pops): sequence order must win.
                    let t = SimTime::from_millis(40);
                    q.schedule(t, 0u32); // far ahead at schedule time
                    q.schedule(SimTime::from_nanos(1_000), 100);
                    q.schedule(t, 1);
                    assert_eq!(q.pop().map(|(_, e)| e), Some(100));
                    q.schedule(t, 2); // nearer now; same instant
                    q.schedule(t + SimDuration::from_nanos(1), 3);
                    q.schedule(t, 4);
                    let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
                    assert_eq!(order, vec![0, 1, 2, 4, 3]);
                }
            }
        };
    }

    queue_battery!(wheel, EventQueue);
    queue_battery!(keyheap, KeyHeapQueue);

    #[test]
    fn scheduler_run_until_horizon() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 1..=10u32 {
            s.at(SimTime::from_secs(i as u64), i);
        }
        let mut fired = Vec::new();
        s.run_until(SimTime::from_secs(5), |_, _, e| fired.push(e));
        assert_eq!(fired, vec![1, 2, 3, 4, 5]);
        assert_eq!(s.queue().len(), 5);
    }

    #[test]
    fn scheduler_handler_can_reschedule() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.at(SimTime::from_secs(0), 0);
        let mut count = 0;
        s.run_until(SimTime::from_secs(10), |q, t, _| {
            count += 1;
            q.schedule(t + SimDuration::from_secs(1), 0);
        });
        // Fires at t = 0..=10 inclusive.
        assert_eq!(count, 11);
    }

    #[test]
    fn run_to_completion_drains() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.at(SimTime::from_secs(1), "a");
        s.at(SimTime::from_secs(2), "b");
        let mut n = 0;
        s.run_to_completion(|_, _, _| n += 1);
        assert_eq!(n, 2);
        assert!(s.queue().is_empty());
    }

    /// Slot recycling must never resurrect a cancelled event or let a stale
    /// handle cancel the slot's new occupant.
    #[test]
    fn recycled_slab_slot_defeats_stale_handles() {
        let mut q: EventQueue<&str> = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.cancel(a);
        // The freed slot is recycled for `b` with a fresh sequence number.
        let _b = q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a); // stale: same slot, old seq — must be a no-op
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    /// Drive the wheel cursor across every level boundary and verify the
    /// merge against a straight sort — the in-module version of the
    /// three-way differential proptest.
    #[test]
    fn wheel_rollover_matches_sorted_reference() {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut expect: Vec<(u64, u64)> = Vec::new();
        let mut x: u64 = 0x1234_5678;
        let step = |x: &mut u64| {
            *x ^= *x << 13;
            *x ^= *x >> 7;
            *x ^= *x << 17;
            *x
        };
        // Spread events from sub-tick to beyond the wheel span.
        for seq in 0..4_000u64 {
            let r = step(&mut x);
            let at = match r % 5 {
                0 => r % 1_000,                      // sub-tick
                1 => r % 1_000_000,                  // level 0-1
                2 => r % 1_000_000_000,              // level 2-3
                3 => r % 40_000_000_000,             // rolls past the span
                _ => 17_179_869_184 + r % 1_000_000, // right at the seam
            };
            q.schedule(SimTime::from_nanos(at), seq);
            expect.push((at, seq));
        }
        expect.sort();
        let got: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| (t.as_nanos(), e))
            .collect();
        assert_eq!(got, expect);
    }
}
