//! Summary statistics used by the paper's figures.
//!
//! Fig 8/10/13 report sample means with bars of twice the standard error of
//! the mean (SEM, the paper's eq. 2); the in-the-wild figures (15/16) use
//! Whisker plots with quartiles and `1.5 * IQR` outlier fences (§5.2).

use serde::{Deserialize, Serialize};

/// Mean, standard deviation and standard error for a sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeanSem {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation `s` (the paper's eq. 2, with the customary
    /// square root over the averaged squared deviations).
    pub std_dev: f64,
    /// Standard error of the mean, `s / sqrt(n)`.
    pub sem: f64,
    /// Sample size.
    pub n: usize,
}

impl MeanSem {
    /// Compute mean/SD/SEM of a sample. Empty samples yield NaNs with `n=0`;
    /// singleton samples have zero deviation by convention.
    pub fn of(xs: &[f64]) -> MeanSem {
        let n = xs.len();
        if n == 0 {
            return MeanSem {
                mean: f64::NAN,
                std_dev: f64::NAN,
                sem: f64::NAN,
                n: 0,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return MeanSem {
                mean,
                std_dev: 0.0,
                sem: 0.0,
                n,
            };
        }
        let ss: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
        let std_dev = (ss / (n - 1) as f64).sqrt();
        MeanSem {
            mean,
            std_dev,
            sem: std_dev / (n as f64).sqrt(),
            n,
        }
    }

    /// The `mean ± 2*SEM` interval drawn as the horizontal bars in
    /// Figs 8/10/13.
    pub fn bar(&self) -> (f64, f64) {
        (self.mean - 2.0 * self.sem, self.mean + 2.0 * self.sem)
    }
}

/// Five-number summary plus outliers, as used in the Whisker plots of
/// Figs 15 and 16.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WhiskerSummary {
    /// Smallest non-outlier sample.
    pub low: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest non-outlier sample.
    pub high: f64,
    /// Samples outside `[Q1 - 1.5*IQR, Q3 + 1.5*IQR]`.
    pub outliers: Vec<f64>,
    /// Sample size.
    pub n: usize,
}

/// Linear-interpolation quantile (type 7, the common default) of a sorted
/// slice. `q` in `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

impl WhiskerSummary {
    /// Compute the summary of a sample.
    pub fn of(xs: &[f64]) -> Option<WhiskerSummary> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let q1 = quantile_sorted(&sorted, 0.25);
        let median = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let inliers: Vec<f64> = sorted
            .iter()
            .copied()
            .filter(|&x| x >= lo_fence && x <= hi_fence)
            .collect();
        let outliers: Vec<f64> = sorted
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        Some(WhiskerSummary {
            low: *inliers.first().unwrap_or(&q1),
            q1,
            median,
            q3,
            high: *inliers.last().unwrap_or(&q3),
            outliers,
            n: sorted.len(),
        })
    }

    /// Inter-quartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Normalize each sample by a reference value; Fig 10 reports eMPTCP and
/// TCP-over-WiFi relative to MPTCP (100% = the reference).
pub fn percent_of(value: f64, reference: f64) -> f64 {
    100.0 * value / reference
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_sem_basics() {
        let m = MeanSem::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m.mean - 5.0).abs() < 1e-12);
        // Sample (n-1) std dev of this classic set is ~2.138.
        assert!((m.std_dev - 2.138089935).abs() < 1e-6);
        assert!((m.sem - m.std_dev / 8f64.sqrt()).abs() < 1e-12);
        let (lo, hi) = m.bar();
        assert!(lo < m.mean && m.mean < hi);
    }

    #[test]
    fn mean_sem_degenerate() {
        assert_eq!(MeanSem::of(&[]).n, 0);
        assert!(MeanSem::of(&[]).mean.is_nan());
        let single = MeanSem::of(&[3.0]);
        assert_eq!(single.mean, 3.0);
        assert_eq!(single.sem, 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&xs, 0.0), 1.0);
        assert_eq!(quantile_sorted(&xs, 1.0), 4.0);
        assert!((quantile_sorted(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile_sorted(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn whisker_identifies_outliers() {
        let mut xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        xs.push(100.0); // a clear outlier
        let w = WhiskerSummary::of(&xs).unwrap();
        assert_eq!(w.outliers, vec![100.0]);
        assert!(w.high <= 20.0);
        assert_eq!(w.n, 21);
        assert!(w.iqr() > 0.0);
    }

    #[test]
    fn whisker_without_outliers() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let w = WhiskerSummary::of(&xs).unwrap();
        assert!(w.outliers.is_empty());
        assert_eq!(w.low, 1.0);
        assert_eq!(w.high, 5.0);
        assert_eq!(w.median, 3.0);
    }

    #[test]
    fn whisker_empty_is_none() {
        assert!(WhiskerSummary::of(&[]).is_none());
    }

    #[test]
    fn percent_normalization() {
        assert!((percent_of(80.0, 100.0) - 80.0).abs() < 1e-12);
        assert!((percent_of(150.0, 100.0) - 150.0).abs() < 1e-12);
    }
}
