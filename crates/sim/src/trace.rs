//! Time-series recording for experiment output.
//!
//! The paper's trace figures (accumulated energy in Figs 7/12, throughput in
//! Fig 9) are time series sampled as the simulation runs. [`TimeSeries`]
//! stores `(time, value)` points; [`StepSeries`] integrates a step function
//! (e.g. instantaneous power) over simulated time.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A recorded `(time, value)` series.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Series label used in exported figures.
    pub name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series with the given label.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a sample. Samples must be pushed in non-decreasing time order.
    pub fn push(&mut self, t: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(last, _)| t >= last),
            "samples must be time-ordered"
        );
        self.points.push((t, value));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last recorded value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Value at time `t` by step interpolation (the most recent sample at or
    /// before `t`), or `None` before the first sample.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Downsample to at most `n` points (for compact figure export),
    /// keeping first and last points.
    pub fn downsample(&self, n: usize) -> TimeSeries {
        let mut out = TimeSeries::new(self.name.clone());
        if self.points.len() <= n || n < 2 {
            out.points = self.points.clone();
            return out;
        }
        let stride = (self.points.len() - 1) as f64 / (n - 1) as f64;
        for k in 0..n {
            let idx = (k as f64 * stride).round() as usize;
            out.points.push(self.points[idx.min(self.points.len() - 1)]);
        }
        out
    }

    /// Arithmetic mean of the sampled values, or `None` for an empty series.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }

    /// Step-function integral of the series over the sampled span: each
    /// value is held until the next sample's time. The last sample
    /// contributes nothing (zero-width segment). Returns 0 for series with
    /// fewer than two points.
    pub fn integral(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].1 * (w[1].0.saturating_since(w[0].0)).as_secs_f64())
            .sum()
    }

    /// Export as CSV rows `time_s,value`.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("time_s,value\n");
        for &(t, v) in &self.points {
            s.push_str(&format!("{:.6},{:.6}\n", t.as_secs_f64(), v));
        }
        s
    }
}

/// Integrates a right-continuous step function of simulated time.
///
/// Power draw is a step function of radio state and current throughput: the
/// meter sets a new level whenever state changes and the accumulated integral
/// (energy, in joules when levels are watts) is available at any time.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StepSeries {
    level: f64,
    since: SimTime,
    integral: f64,
}

impl StepSeries {
    /// Start integrating at `t0` with the given initial level.
    pub fn new(t0: SimTime, level: f64) -> Self {
        StepSeries {
            level,
            since: t0,
            integral: 0.0,
        }
    }

    /// Current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Change the level at time `t`, accumulating the previous segment.
    pub fn set_level(&mut self, t: SimTime, level: f64) {
        self.advance(t);
        self.level = level;
    }

    /// Accumulate up to `t` without changing the level.
    pub fn advance(&mut self, t: SimTime) {
        let dt: SimDuration = t.saturating_since(self.since);
        self.integral += self.level * dt.as_secs_f64();
        self.since = self.since.max(t);
    }

    /// Integral accumulated so far (up to the last `advance`/`set_level`).
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Integral including the partial segment up to `t`.
    pub fn integral_at(&self, t: SimTime) -> f64 {
        let dt = t.saturating_since(self.since);
        self.integral + self.level * dt.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn series_records_and_queries() {
        let mut ts = TimeSeries::new("thpt");
        ts.push(s(1), 10.0);
        ts.push(s(2), 20.0);
        ts.push(s(4), 40.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.value_at(s(0)), None);
        assert_eq!(ts.value_at(s(1)), Some(10.0));
        assert_eq!(ts.value_at(s(3)), Some(20.0));
        assert_eq!(ts.value_at(s(9)), Some(40.0));
        assert_eq!(ts.last_value(), Some(40.0));
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let mut ts = TimeSeries::new("x");
        for i in 0..1000 {
            ts.push(SimTime::from_millis(i), i as f64);
        }
        let d = ts.downsample(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.points()[0].1, 0.0);
        assert_eq!(d.points()[9].1, 999.0);
    }

    #[test]
    fn downsample_small_series_unchanged() {
        let mut ts = TimeSeries::new("x");
        ts.push(s(1), 1.0);
        ts.push(s(2), 2.0);
        assert_eq!(ts.downsample(10).len(), 2);
    }

    #[test]
    fn csv_export() {
        let mut ts = TimeSeries::new("x");
        ts.push(s(1), 2.5);
        let csv = ts.to_csv();
        assert!(csv.starts_with("time_s,value\n"));
        assert!(csv.contains("1.000000,2.500000"));
    }

    #[test]
    fn step_series_integrates() {
        let mut p = StepSeries::new(s(0), 2.0);
        p.set_level(s(10), 5.0); // 2 W for 10 s = 20 J
        assert!((p.integral() - 20.0).abs() < 1e-9);
        p.advance(s(14)); // + 5 W for 4 s = 20 J
        assert!((p.integral() - 40.0).abs() < 1e-9);
        assert!((p.integral_at(s(16)) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn mean_and_integral_helpers() {
        let empty = TimeSeries::new("e");
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.integral(), 0.0);

        let mut ts = TimeSeries::new("x");
        ts.push(s(0), 2.0);
        ts.push(s(10), 4.0);
        ts.push(s(20), 6.0);
        assert!((ts.mean().unwrap() - 4.0).abs() < 1e-12);
        // 2.0 held for 10 s + 4.0 held for 10 s = 60.
        assert!((ts.integral() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn step_series_serializes_round_trip() {
        let mut p = StepSeries::new(s(0), 2.0);
        p.set_level(s(10), 5.0);
        let v = Serialize::to_value(&p);
        let back = StepSeries::from_value(&v).expect("round trip");
        assert_eq!(back.level(), p.level());
        assert!((back.integral() - p.integral()).abs() < 1e-12);
    }

    #[test]
    fn step_series_zero_width_segments() {
        let mut p = StepSeries::new(s(5), 1.0);
        p.set_level(s(5), 3.0);
        p.set_level(s(5), 7.0);
        assert_eq!(p.integral(), 0.0);
        p.advance(s(6));
        assert!((p.integral() - 7.0).abs() < 1e-9);
    }
}
