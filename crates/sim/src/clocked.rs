//! The clock-coupled side-effect contract shared by every engine.
//!
//! Several protocol components carry state whose evolution is driven by
//! the mere passage of time, not by any packet or timer event: the LIA
//! coupling coefficient refreshes on RTT timescales, and RFC 2861
//! congestion-window validation decays an idle window. In the simulator
//! those side effects are replayed by the quiescence fast path of the
//! drain loop; a live reactor reaches the very same state transitions
//! from wall-clock ticks. [`Clocked`] is the single seam both engines
//! call through, so "virtual ticks" and "wall ticks" drive *identical*
//! code — which is what makes sim/live decision parity provable rather
//! than aspirational (and is the narrow waist of the byte-identity wall
//! described in the ROADMAP).

use crate::time::SimTime;

/// A component with clock-coupled side effects.
///
/// `clock_tick(now)` must replay exactly the time-driven state updates
/// that a full event-processing pass reaching `now` would have performed
/// on an otherwise untouched component. Implementations must be:
///
/// * **idempotent at an instant** — calling `clock_tick` twice with the
///   same `now` is indistinguishable from calling it once;
/// * **cadence-insensitive on the quiescent path** — extra intermediate
///   ticks between two event times must not change the state reached at
///   the second event time (rate-limited refreshes make this cheap);
/// * **monotonic** — `now` never goes backwards; behavior on a
///   time-reversed call is unspecified.
pub trait Clocked {
    /// Advance clock-coupled state to `now`.
    fn clock_tick(&mut self, now: SimTime);
}
