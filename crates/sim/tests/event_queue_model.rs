//! Model-based property test for the event queue: drive random
//! schedule/cancel/pop/peek interleavings through [`EventQueue`] and a
//! naive sorted-`Vec` reference side by side; every observation must
//! agree. This pins the queue's contract — (time, sequence) ordering,
//! exact `len`, idempotent cancellation, clock monotonicity — against
//! the tombstone/compaction machinery in the real implementation.

use emptcp_sim::{EventQueue, SimTime, TimerId};
use proptest::prelude::*;

/// The reference: a flat vector of live `(time_nanos, seq, payload)`
/// entries. Correct by inspection, O(n) everything.
#[derive(Default)]
struct Reference {
    live: Vec<(u64, u64, u32)>,
    next_seq: u64,
    now: u64,
}

impl Reference {
    fn schedule(&mut self, at: u64, payload: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.push((at.max(self.now), seq, payload));
        seq
    }

    fn cancel(&mut self, seq: u64) {
        self.live.retain(|&(_, s, _)| s != seq);
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let best = self
            .live
            .iter()
            .enumerate()
            .min_by_key(|(_, &(at, seq, _))| (at, seq))?
            .0;
        let (at, _, payload) = self.live.swap_remove(best);
        self.now = at;
        Some((at, payload))
    }

    fn peek_time(&self) -> Option<u64> {
        self.live
            .iter()
            .map(|&(at, seq, _)| (at, seq))
            .min()
            .map(|(at, _)| at)
    }
}

/// One splitmix64 step, for deriving op sequences from a proptest seed.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn queue_matches_reference_under_arbitrary_interleavings(
        seed in 0u64..u64::MAX,
        ops in 100usize..600,
        cancel_weight in 1u64..6,
        horizon_ns in 1_000u64..1_000_000,
    ) {
        let mut state = seed;
        let mut queue: EventQueue<u32> = EventQueue::new();
        let mut reference = Reference::default();
        // Handles of not-yet-popped schedules, kept in lockstep; stale
        // entries (fired or cancelled) stay eligible so cancel exercises
        // its no-op paths too.
        let mut handles: Vec<(TimerId, u64)> = Vec::new();

        for _ in 0..ops {
            match mix(&mut state) % (4 + cancel_weight) {
                // Schedule at now + delta (delta may be 0: same-time
                // events must preserve FIFO order).
                0..=2 => {
                    let delta = mix(&mut state) % horizon_ns;
                    let payload = mix(&mut state) as u32;
                    let at = queue.now() + emptcp_sim::SimDuration::from_nanos(delta);
                    let id = queue.schedule(at, payload);
                    let seq = reference.schedule(at.as_nanos(), payload);
                    handles.push((id, seq));
                }
                // Pop one event.
                3 => {
                    let got = queue.pop();
                    let want = reference.pop();
                    prop_assert_eq!(
                        got.map(|(t, p)| (t.as_nanos(), p)),
                        want,
                        "pop diverged"
                    );
                }
                // Cancel a random handle — possibly already fired or
                // already cancelled (both must be exact no-ops).
                _ => {
                    if handles.is_empty() {
                        continue;
                    }
                    let pick = (mix(&mut state) as usize) % handles.len();
                    let (id, seq) = handles[pick];
                    queue.cancel(id);
                    reference.cancel(seq);
                }
            }
            // Invariants checked after every step.
            prop_assert_eq!(queue.len(), reference.live.len(), "len diverged");
            prop_assert_eq!(queue.is_empty(), reference.live.is_empty());
            prop_assert_eq!(
                queue.peek_time().map(|t| t.as_nanos()),
                reference.peek_time(),
                "peek diverged"
            );
            prop_assert_eq!(queue.now().as_nanos(), reference.now, "clock diverged");
        }

        // Drain: remaining events must come out in exactly (time, seq)
        // order with the right payloads.
        while let Some((t, p)) = queue.pop() {
            let want = reference.pop();
            prop_assert_eq!(Some((t.as_nanos(), p)), want, "drain diverged");
        }
        prop_assert!(reference.pop().is_none(), "reference had leftovers");
        prop_assert_eq!(queue.len(), 0);
    }

    #[test]
    fn clock_is_monotone_and_matches_pop_times(
        seed in 0u64..u64::MAX,
        n in 1usize..200,
    ) {
        let mut state = seed;
        let mut queue: EventQueue<usize> = EventQueue::new();
        for i in 0..n {
            let at = SimTime::from_nanos(mix(&mut state) % 1_000_000);
            queue.schedule(at, i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = queue.pop() {
            prop_assert!(t >= last, "time went backwards: {t:?} after {last:?}");
            prop_assert_eq!(queue.now(), t);
            last = t;
        }
    }
}
