//! Three-way differential model test for the event queues.
//!
//! Every property drives the same operation sequence through three
//! implementations in lockstep and demands bit-identical observations:
//!
//! * [`EventQueue`] — the hierarchical timing wheel (the hot path),
//! * [`KeyHeapQueue`] — the original `(time, seq)` key-heap, kept
//!   precisely so the wheel has a trusted, structurally different twin,
//! * a naive sorted-`Vec` reference — correct by inspection.
//!
//! Agreement across all three pins the queue contract — (time, sequence)
//! total order, exact `len`, idempotent cancellation, clock monotonicity —
//! independently of either real implementation's machinery (tombstones and
//! compaction in the heap; slots, occupancy bitmaps, the ready/far escape
//! heaps and the strict-descent drain rule in the wheel).
//!
//! The generators are shaped around the wheel's seams: same-instant
//! bursts, slot- and level-boundary-aligned deltas, far-future deltas
//! beyond the wheel span (the `far`-heap fallback), cancel/re-arm storms,
//! and pops interleaved with fresh schedules mid-rotation — the last being
//! exactly the class that once drove a slot to re-fill itself while it was
//! being drained.
//!
//! Case count: 64 by default, raised in CI via `PROPTEST_CASES` (the
//! differential gate runs with ≥1000).

use emptcp_sim::{EventQueue, KeyHeapQueue, SimDuration, SimTime, TimerId};
use proptest::prelude::*;

/// The reference: a flat vector of live `(time_nanos, seq, payload)`
/// entries. Correct by inspection, O(n) everything.
#[derive(Default)]
struct Reference {
    live: Vec<(u64, u64, u32)>,
    next_seq: u64,
    now: u64,
}

impl Reference {
    fn schedule(&mut self, at: u64, payload: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.push((at.max(self.now), seq, payload));
        seq
    }

    fn cancel(&mut self, seq: u64) {
        self.live.retain(|&(_, s, _)| s != seq);
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let best = self
            .live
            .iter()
            .enumerate()
            .min_by_key(|(_, &(at, seq, _))| (at, seq))?
            .0;
        let (at, _, payload) = self.live.swap_remove(best);
        self.now = at;
        Some((at, payload))
    }

    fn peek_time(&self) -> Option<u64> {
        self.live
            .iter()
            .map(|&(at, seq, _)| (at, seq))
            .min()
            .map(|(at, _)| at)
    }
}

/// All three queues plus the reference, driven as one unit. Handles of
/// not-yet-popped schedules are kept in lockstep; stale entries (fired or
/// cancelled) stay eligible so cancel exercises its no-op paths too.
#[derive(Default)]
struct Trio {
    wheel: EventQueue<u32>,
    heap: KeyHeapQueue<u32>,
    reference: Reference,
    handles: Vec<(TimerId, TimerId, u64)>,
}

impl Trio {
    fn schedule(&mut self, delta_ns: u64, payload: u32) {
        let at = self.wheel.now() + SimDuration::from_nanos(delta_ns);
        let wid = self.wheel.schedule(at, payload);
        let hid = self.heap.schedule(at, payload);
        let seq = self.reference.schedule(at.as_nanos(), payload);
        self.handles.push((wid, hid, seq));
    }

    fn cancel_nth(&mut self, pick: usize) {
        if self.handles.is_empty() {
            return;
        }
        let (wid, hid, seq) = self.handles[pick % self.handles.len()];
        self.wheel.cancel(wid);
        self.heap.cancel(hid);
        self.reference.cancel(seq);
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let got_w = self.wheel.pop().map(|(t, p)| (t.as_nanos(), p));
        let got_h = self.heap.pop().map(|(t, p)| (t.as_nanos(), p));
        let want = self.reference.pop();
        prop_assert_eq!(got_w, want, "wheel pop diverged from reference");
        prop_assert_eq!(got_h, want, "key-heap pop diverged from reference");
        want
    }

    fn check_observers(&mut self) {
        prop_assert_eq!(self.wheel.len(), self.reference.live.len(), "wheel len");
        prop_assert_eq!(self.heap.len(), self.reference.live.len(), "heap len");
        prop_assert_eq!(self.wheel.is_empty(), self.reference.live.is_empty());
        prop_assert_eq!(self.heap.is_empty(), self.reference.live.is_empty());
        let want_peek = self.reference.peek_time();
        prop_assert_eq!(
            self.wheel.peek_time().map(|t| t.as_nanos()),
            want_peek,
            "wheel peek"
        );
        prop_assert_eq!(
            self.heap.peek_time().map(|t| t.as_nanos()),
            want_peek,
            "heap peek"
        );
        prop_assert_eq!(
            self.wheel.now().as_nanos(),
            self.reference.now,
            "wheel clock"
        );
        prop_assert_eq!(self.heap.now().as_nanos(), self.reference.now, "heap clock");
    }

    /// Drain everything left; all three must agree to the last event.
    fn drain(&mut self) {
        while self.pop().is_some() {}
        prop_assert!(self.reference.pop().is_none(), "reference had leftovers");
        prop_assert_eq!(self.wheel.len(), 0);
        prop_assert_eq!(self.heap.len(), 0);
    }
}

/// One splitmix64 step, for deriving op sequences from a proptest seed.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The wheel's geometry, mirrored from `event.rs`: 1024 ns ticks, 64-slot
/// levels, four levels. Deltas built from these hit slot seams exactly.
const TICK_NS: u64 = 1 << 10;
const SLOTS: u64 = 64;
/// One full wheel span in nanoseconds; anything scheduled further out
/// falls through to the far heap.
const WHEEL_SPAN_NS: u64 = TICK_NS * SLOTS * SLOTS * SLOTS * SLOTS;

/// Default 64 cases; CI raises this via `PROPTEST_CASES` (the
/// hot-path differential gate uses ≥1000).
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Arbitrary interleavings of schedule / cancel / pop with mixed
    /// magnitudes, the broad-spectrum property.
    #[test]
    fn three_way_agreement_under_arbitrary_interleavings(
        seed in 0u64..u64::MAX,
        ops in 100usize..600,
        cancel_weight in 1u64..6,
        horizon_ns in 1_000u64..1_000_000,
    ) {
        let mut state = seed;
        let mut trio = Trio::default();

        for _ in 0..ops {
            match mix(&mut state) % (4 + cancel_weight) {
                // Schedule at now + delta (delta may be 0: same-time
                // events must preserve FIFO order).
                0..=2 => {
                    let delta = mix(&mut state) % horizon_ns;
                    let payload = mix(&mut state) as u32;
                    trio.schedule(delta, payload);
                }
                // Pop one event.
                3 => {
                    trio.pop();
                }
                // Cancel a random handle — possibly already fired or
                // already cancelled (both must be exact no-ops).
                _ => {
                    let pick = mix(&mut state) as usize;
                    trio.cancel_nth(pick);
                }
            }
            // Invariants checked after every step.
            trio.check_observers();
        }
        trio.drain();
    }

    /// Same-instant seams: bursts of events at identical timestamps —
    /// including timestamps aligned exactly on tick, slot, and level
    /// boundaries — must come out in schedule (FIFO) order from all three
    /// queues. This is where (time, seq) total order does all the work.
    #[test]
    fn same_instant_bursts_preserve_fifo_order(
        seed in 0u64..u64::MAX,
        bursts in 2usize..30,
        burst_len in 2usize..12,
    ) {
        let mut state = seed;
        let mut trio = Trio::default();

        for _ in 0..bursts {
            // A burst target: either an arbitrary instant or one aligned
            // on a wheel seam (tick edge, slot edge of each level).
            let delta = match mix(&mut state) % 5 {
                0 => mix(&mut state) % 1_000_000,
                1 => (mix(&mut state) % 1_000) * TICK_NS,
                2 => (mix(&mut state) % SLOTS + 1) * TICK_NS * SLOTS,
                3 => (mix(&mut state) % SLOTS + 1) * TICK_NS * SLOTS * SLOTS,
                _ => 0, // a burst exactly at `now`
            };
            for _ in 0..burst_len {
                let payload = mix(&mut state) as u32;
                trio.schedule(delta, payload);
            }
            // Interleave pops between bursts so same-instant groups are
            // sometimes split across a cursor advance.
            if mix(&mut state).is_multiple_of(2) {
                trio.pop();
                trio.check_observers();
            }
        }
        trio.drain();
    }

    /// Far-future rollover: deltas straddling the wheel span exercise the
    /// far-heap fallback and its migration back into the wheel as the
    /// cursor advances past whole rotations; near events keep the wheel
    /// busy in the foreground.
    #[test]
    fn far_future_events_survive_wheel_rollover(
        seed in 0u64..u64::MAX,
        ops in 30usize..150,
    ) {
        let mut state = seed;
        let mut trio = Trio::default();

        for _ in 0..ops {
            match mix(&mut state) % 5 {
                // Near-term foreground traffic.
                0 | 1 => {
                    let delta = mix(&mut state) % (TICK_NS * SLOTS);
                    let payload = mix(&mut state) as u32;
                    trio.schedule(delta, payload);
                }
                // Just inside / exactly at / beyond the wheel span.
                2 => {
                    let offset = mix(&mut state) % (2 * TICK_NS);
                    let delta = (WHEEL_SPAN_NS - TICK_NS) + offset;
                    let payload = mix(&mut state) as u32;
                    trio.schedule(delta, payload);
                }
                // Deep future: several spans out.
                3 => {
                    let spans = 1 + mix(&mut state) % 3;
                    let delta = WHEEL_SPAN_NS * spans + mix(&mut state) % WHEEL_SPAN_NS;
                    let payload = mix(&mut state) as u32;
                    trio.schedule(delta, payload);
                }
                // Pop — dragging the cursor toward (and eventually past)
                // the far events, forcing their migration into the wheel.
                _ => {
                    trio.pop();
                }
            }
            trio.check_observers();
        }
        trio.drain();
    }

    /// Cancel/re-arm storms: the timer-handle pattern every host uses —
    /// cancel the previous handle and schedule a replacement, nearer or
    /// farther, over and over, with pops interleaved. Cancellation of
    /// already-fired and already-cancelled handles must stay a no-op.
    #[test]
    fn rearm_storms_agree(
        seed in 0u64..u64::MAX,
        rounds in 20usize..200,
    ) {
        let mut state = seed;
        let mut trio = Trio::default();
        // The "host timer": the latest live handle index, re-armed
        // aggressively.
        let mut armed: Option<usize> = None;

        for _ in 0..rounds {
            match mix(&mut state) % 4 {
                // Re-arm: cancel the current handle (maybe stale), then
                // schedule the replacement at a fresh deadline.
                0 | 1 => {
                    if let Some(idx) = armed {
                        trio.cancel_nth(idx);
                    }
                    let delta = mix(&mut state) % (TICK_NS * SLOTS * 4);
                    let payload = mix(&mut state) as u32;
                    trio.schedule(delta, payload);
                    armed = Some(trio.handles.len() - 1);
                }
                // Background event the storm has to coexist with.
                2 => {
                    let delta = mix(&mut state) % 1_000_000;
                    let payload = mix(&mut state) as u32;
                    trio.schedule(delta, payload);
                }
                _ => {
                    trio.pop();
                }
            }
            trio.check_observers();
        }
        trio.drain();
    }

    /// Pops interleaved with fresh schedules mid-rotation: every pop is
    /// followed by schedules whose deltas are biased to land in the slot
    /// band the cursor is currently draining (small multiples of the slot
    /// spans, offset by a few ticks). This is the exact class that once
    /// made an upper-level slot re-fill itself while being drained; the
    /// strict-descent drain rule is pinned here.
    #[test]
    fn mid_rotation_schedules_terminate_and_agree(
        seed in 0u64..u64::MAX,
        rounds in 30usize..200,
    ) {
        let mut state = seed;
        let mut trio = Trio::default();

        // Prime the wheel across all levels.
        for lvl_span in [TICK_NS, TICK_NS * SLOTS, TICK_NS * SLOTS * SLOTS] {
            for k in 1..4u64 {
                let payload = mix(&mut state) as u32;
                trio.schedule(lvl_span * k, payload);
            }
        }

        for _ in 0..rounds {
            trio.pop();
            // Schedule into the alias band of the just-advanced cursor:
            // deltas a hair under whole slot spans land in slots whose
            // residue matches the cursor's own position.
            let n = 1 + mix(&mut state) % 3;
            for _ in 0..n {
                let span = match mix(&mut state) % 3 {
                    0 => TICK_NS * SLOTS,
                    1 => TICK_NS * SLOTS * SLOTS,
                    _ => TICK_NS * SLOTS * SLOTS * SLOTS,
                };
                let jitter = mix(&mut state) % (4 * TICK_NS);
                let delta = span - 2 * TICK_NS + jitter;
                let payload = mix(&mut state) as u32;
                trio.schedule(delta, payload);
            }
            trio.check_observers();
        }
        trio.drain();
    }

    /// Clock sanity on the wheel alone: pop times are monotone and the
    /// queue clock tracks them.
    #[test]
    fn clock_is_monotone_and_matches_pop_times(
        seed in 0u64..u64::MAX,
        n in 1usize..200,
    ) {
        let mut state = seed;
        let mut queue: EventQueue<usize> = EventQueue::new();
        for i in 0..n {
            let at = SimTime::from_nanos(mix(&mut state) % 1_000_000);
            queue.schedule(at, i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = queue.pop() {
            prop_assert!(t >= last, "time went backwards: {t:?} after {last:?}");
            prop_assert_eq!(queue.now(), t);
            last = t;
        }
    }
}
