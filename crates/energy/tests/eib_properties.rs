//! Property tests for the Energy Information Base: threshold monotonicity
//! over arbitrary throughputs and consistency between the EIB's
//! classification, the steady-state model optimum, and the finite-transfer
//! classification of `region.rs` in its large-size limit.

use emptcp_energy::region::best_usage_for_size;
use emptcp_energy::{Eib, EnergyModel, PathUsage};
use proptest::prelude::*;
use std::sync::OnceLock;

fn eib() -> &'static Eib {
    static EIB: OnceLock<Eib> = OnceLock::new();
    EIB.get_or_init(|| Eib::generate_default(&EnergyModel::galaxy_s3_lte()))
}

/// Usage rank along the WiFi axis: cellular-only < both < WiFi-only.
fn rank(u: PathUsage) -> u8 {
    match u {
        PathUsage::CellularOnly => 0,
        PathUsage::Both => 1,
        PathUsage::WifiOnly => 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both thresholds are monotone non-decreasing in the LTE rate and
    /// ordered (T1 ≤ T2) at arbitrary — not just grid — rates.
    #[test]
    fn thresholds_monotone_in_lte_rate(
        cell_lo in 0.01f64..30.0,
        bump in 0.0f64..10.0,
    ) {
        let cell_hi = cell_lo + bump;
        let (t1_lo, t2_lo) = eib().thresholds(cell_lo);
        let (t1_hi, t2_hi) = eib().thresholds(cell_hi);
        prop_assert!(t1_lo <= t2_lo, "T1 > T2 at {cell_lo} Mbps");
        prop_assert!(t1_hi <= t2_hi, "T1 > T2 at {cell_hi} Mbps");
        prop_assert!(t1_lo <= t1_hi + 1e-9, "T1 decreased: {t1_lo} -> {t1_hi}");
        prop_assert!(t2_lo <= t2_hi + 1e-9, "T2 decreased: {t2_lo} -> {t2_hi}");
    }

    /// Along the WiFi axis the prescription only ever moves
    /// cellular-only → both → WiFi-only; more WiFi never brings the
    /// cellular radio back.
    #[test]
    fn choice_monotone_in_wifi_rate(
        cell in 0.25f64..25.0,
        wifi_a in 0.0f64..30.0,
        bump in 0.0f64..15.0,
    ) {
        let a = eib().choose(wifi_a, cell);
        let b = eib().choose(wifi_a + bump, cell);
        prop_assert!(
            rank(a) <= rank(b),
            "usage regressed from {a:?} to {b:?} as WiFi rose \
             ({wifi_a} -> {} Mbps at LTE {cell})",
            wifi_a + bump
        );
    }

    /// The classification is exactly the threshold comparison — the
    /// region boundaries and the prescription can never disagree.
    #[test]
    fn choice_consistent_with_own_thresholds(
        wifi in 0.0f64..30.0,
        cell in 0.0f64..30.0,
    ) {
        let (t1, t2) = eib().thresholds(cell);
        let expect = if wifi < t1 {
            PathUsage::CellularOnly
        } else if wifi >= t2 {
            PathUsage::WifiOnly
        } else {
            PathUsage::Both
        };
        prop_assert_eq!(eib().choose(wifi, cell), expect);
    }

    /// Away from the threshold boundaries, the EIB's table lookup agrees
    /// with the steady-state optimum recomputed from the model, and with
    /// region.rs's finite-transfer classification in the large-size limit
    /// (where the fixed radio costs amortize away).
    #[test]
    fn choice_consistent_with_model_and_region(
        wifi in 0.05f64..20.0,
        cell in 0.25f64..20.0,
    ) {
        let model = EnergyModel::galaxy_s3_lte();
        let (t1, t2) = eib().thresholds(cell);
        // Interpolation between grid rows makes boundary cells genuinely
        // ambiguous; only demand agreement at a clear margin.
        let margin = 0.05 + 0.05 * wifi;
        if (wifi - t1).abs() < margin || (wifi - t2).abs() < margin {
            return;
        }
        let by_eib = eib().choose(wifi, cell);
        let (by_model, _) = model.best_usage(wifi, cell);
        prop_assert_eq!(by_eib, by_model, "EIB vs steady model at ({wifi}, {cell})");
        let huge = 64u64 << 30;
        let (by_region, _) = best_usage_for_size(&model, huge, wifi, cell);
        prop_assert_eq!(
            by_eib, by_region,
            "EIB vs region.rs large-transfer limit at ({wifi}, {cell})"
        );
    }
}
