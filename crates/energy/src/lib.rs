#![warn(missing_docs)]
//! The parameterized mobile-device energy model of the eMPTCP paper.
//!
//! The paper computes its Energy Information Base offline from the
//! multi-interface power model of Lim et al. \[17\] (itself built on the
//! cellular measurements of Balasubramanian et al. \[1\] and Huang et
//! al. \[14\]). This crate is that model, rebuilt:
//!
//! * [`power`] — piecewise-linear power-versus-throughput curves,
//! * [`profile`] — device profiles (Samsung Galaxy S3, LG Nexus 5 — the
//!   paper's Table 1 devices) with per-interface curves, cellular
//!   promotion/tail powers and timing, and the simultaneous-use sharing
//!   discount that makes "use both" sometimes the most per-byte-efficient
//!   choice,
//! * [`model`] — steady-state per-byte efficiency for each path usage,
//! * [`eib`] — Energy Information Base generation (the paper's Table 2)
//!   and the Fig 3 efficiency heat map,
//! * [`region`] — finite-transfer operating regions including fixed
//!   promotion/tail costs (the paper's Fig 4),
//! * [`meter`] — runtime energy accounting: integrates power over the
//!   simulated radio activity a host reports.

//! ```
//! use emptcp_energy::{EnergyModel, PathUsage};
//!
//! let model = EnergyModel::galaxy_s3_lte();
//! // Fig 3's V-region: at 0.3 Mbps WiFi / 1 Mbps LTE, using both
//! // interfaces is the most per-byte-efficient choice.
//! let (best, _) = model.best_usage(0.3, 1.0);
//! assert_eq!(best, PathUsage::Both);
//! // With fast WiFi the cellular radio is pure overhead.
//! assert_eq!(model.best_usage(15.0, 1.0).0, PathUsage::WifiOnly);
//! ```

pub mod eib;
pub mod meter;
pub mod model;
pub mod power;
pub mod profile;
pub mod region;

pub use eib::{Eib, EibRow};
pub use meter::{EnergyMeter, RadioSnapshot};
pub use model::{EnergyModel, PathUsage};
pub use power::PowerCurve;
pub use profile::{CellularPower, DeviceProfile};
