//! Steady-state per-byte energy efficiency for each path usage.
//!
//! eMPTCP "assumes a large transfer and defines efficiency in terms of
//! per-byte energy consumption" (§3.3): fixed promotion/tail costs are
//! excluded here (they amortize away on long transfers; the finite-transfer
//! variants live in [`crate::region`]), leaving the steady power draw of
//! each usage divided by its delivered byte rate.

use crate::power::mbps_to_bytes_per_sec;
use crate::profile::{CellularPower, DeviceProfile};
use emptcp_phy::IfaceKind;
use serde::{Deserialize, Serialize};

/// Which interfaces carry traffic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PathUsage {
    /// WiFi subflow only.
    WifiOnly,
    /// Cellular subflow only.
    CellularOnly,
    /// Both subflows simultaneously.
    Both,
}

impl PathUsage {
    /// All three usages, in a fixed order (used by exhaustive searches).
    pub const ALL: [PathUsage; 3] = [
        PathUsage::WifiOnly,
        PathUsage::CellularOnly,
        PathUsage::Both,
    ];

    /// Label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            PathUsage::WifiOnly => "WiFi-only",
            PathUsage::CellularOnly => "Cellular-only",
            PathUsage::Both => "Both",
        }
    }

    /// Whether the cellular radio carries traffic under this usage.
    pub fn uses_cellular(self) -> bool {
        !matches!(self, PathUsage::WifiOnly)
    }

    /// Whether the WiFi radio carries traffic under this usage.
    pub fn uses_wifi(self) -> bool {
        !matches!(self, PathUsage::CellularOnly)
    }
}

/// The steady-state energy model for one device and one cellular radio kind.
#[derive(Clone, Debug)]
pub struct EnergyModel {
    profile: DeviceProfile,
    cellular_kind: IfaceKind,
}

impl EnergyModel {
    /// Build a model; `cellular_kind` selects which of the device's cellular
    /// radios (3G or LTE) is in play.
    pub fn new(profile: DeviceProfile, cellular_kind: IfaceKind) -> Self {
        assert!(cellular_kind.is_cellular(), "cellular kind required");
        EnergyModel {
            profile,
            cellular_kind,
        }
    }

    /// Shorthand for the paper's primary configuration: Galaxy S3 over LTE.
    pub fn galaxy_s3_lte() -> Self {
        EnergyModel::new(DeviceProfile::galaxy_s3(), IfaceKind::CellularLte)
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The cellular radio in play.
    pub fn cellular(&self) -> &CellularPower {
        match self.cellular_kind {
            IfaceKind::Cellular3g => &self.profile.threeg,
            _ => &self.profile.lte,
        }
    }

    /// The cellular kind in play.
    pub fn cellular_kind(&self) -> IfaceKind {
        self.cellular_kind
    }

    /// Steady transferring power (watts) under a usage with the given
    /// per-interface throughputs.
    pub fn power_w(&self, usage: PathUsage, wifi_mbps: f64, cell_mbps: f64) -> f64 {
        match usage {
            PathUsage::WifiOnly => self.profile.wifi_curve.power_w(wifi_mbps),
            PathUsage::CellularOnly => self.cellular().curve.power_w(cell_mbps),
            PathUsage::Both => {
                let combined = self.profile.wifi_curve.power_w(wifi_mbps)
                    + self.cellular().curve.power_w(cell_mbps)
                    - self.profile.sharing_discount_w;
                // The discount can never push the pair below the more
                // expensive radio running alone.
                combined.max(
                    self.profile
                        .wifi_curve
                        .power_w(wifi_mbps)
                        .max(self.cellular().curve.power_w(cell_mbps)),
                )
            }
        }
    }

    /// Delivered throughput (Mbps) under a usage.
    pub fn delivered_mbps(&self, usage: PathUsage, wifi_mbps: f64, cell_mbps: f64) -> f64 {
        match usage {
            PathUsage::WifiOnly => wifi_mbps,
            PathUsage::CellularOnly => cell_mbps,
            PathUsage::Both => wifi_mbps + cell_mbps,
        }
    }

    /// Steady-state energy per downloaded byte (J/byte) for a usage; +∞ if
    /// the usage delivers no throughput.
    pub fn joules_per_byte(&self, usage: PathUsage, wifi_mbps: f64, cell_mbps: f64) -> f64 {
        let rate = mbps_to_bytes_per_sec(self.delivered_mbps(usage, wifi_mbps, cell_mbps));
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        self.power_w(usage, wifi_mbps, cell_mbps) / rate
    }

    /// The per-byte-optimal usage and its efficiency.
    pub fn best_usage(&self, wifi_mbps: f64, cell_mbps: f64) -> (PathUsage, f64) {
        PathUsage::ALL
            .iter()
            .map(|&u| (u, self.joules_per_byte(u, wifi_mbps, cell_mbps)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("efficiency is never NaN"))
            .expect("non-empty usage set")
    }

    /// Fig 3's normalization: the efficiency of using both interfaces
    /// relative to the best single interface. Values below 1 are the dark
    /// V-region where MPTCP wins.
    pub fn both_vs_best_single(&self, wifi_mbps: f64, cell_mbps: f64) -> f64 {
        let both = self.joules_per_byte(PathUsage::Both, wifi_mbps, cell_mbps);
        let single = self
            .joules_per_byte(PathUsage::WifiOnly, wifi_mbps, cell_mbps)
            .min(self.joules_per_byte(PathUsage::CellularOnly, wifi_mbps, cell_mbps));
        both / single
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::galaxy_s3_lte()
    }

    #[test]
    fn table2_regime_examples() {
        // The paper's Table 2 row for 1 Mbps LTE: below ~0.13 Mbps WiFi
        // use LTE only; above ~0.50 use WiFi only; in between use both.
        let m = model();
        assert_eq!(m.best_usage(0.05, 1.0).0, PathUsage::CellularOnly);
        assert_eq!(m.best_usage(0.30, 1.0).0, PathUsage::Both);
        assert_eq!(m.best_usage(1.00, 1.0).0, PathUsage::WifiOnly);
    }

    #[test]
    fn fast_wifi_always_wins() {
        let m = model();
        for lte in [0.5, 2.0, 8.0, 15.0] {
            assert_eq!(m.best_usage(20.0, lte).0, PathUsage::WifiOnly, "lte={lte}");
        }
    }

    #[test]
    fn dead_wifi_prefers_cellular() {
        let m = model();
        assert_eq!(m.best_usage(0.0, 5.0).0, PathUsage::CellularOnly);
        assert_eq!(
            m.joules_per_byte(PathUsage::WifiOnly, 0.0, 5.0),
            f64::INFINITY
        );
    }

    #[test]
    fn both_efficiency_between_or_better_than_singles() {
        // With the sharing discount, "both" can beat the best single; it can
        // never be worse than the *worse* single.
        let m = model();
        for wifi in [0.1, 0.5, 1.0, 3.0, 8.0] {
            for lte in [0.5, 1.0, 4.0, 10.0] {
                let w = m.joules_per_byte(PathUsage::WifiOnly, wifi, lte);
                let c = m.joules_per_byte(PathUsage::CellularOnly, wifi, lte);
                let b = m.joules_per_byte(PathUsage::Both, wifi, lte);
                assert!(b <= w.max(c) + 1e-15, "wifi={wifi} lte={lte}");
            }
        }
    }

    #[test]
    fn v_region_exists_and_normalization_brackets() {
        let m = model();
        // Inside the V (paper Fig 3): both strictly better than best single.
        assert!(m.both_vs_best_single(0.3, 1.0) < 1.0);
        // Far right: WiFi dominates, both is worse than best single.
        assert!(m.both_vs_best_single(10.0, 1.0) > 1.0);
        // Fig 3's scale spans ~0.8 to ~1.8; check we're in that ballpark.
        let mut min_ratio: f64 = f64::INFINITY;
        let mut max_ratio: f64 = 0.0;
        let mut x = 0.25;
        while x <= 10.0 {
            let mut y = 0.25;
            while y <= 10.0 {
                let r = m.both_vs_best_single(x, y);
                min_ratio = min_ratio.min(r);
                max_ratio = max_ratio.max(r);
                y += 0.25;
            }
            x += 0.25;
        }
        assert!(min_ratio > 0.6 && min_ratio < 1.0, "min {min_ratio}");
        assert!(max_ratio > 1.2 && max_ratio < 3.0, "max {max_ratio}");
    }

    #[test]
    fn both_power_floor_respected() {
        let m = model();
        // Even with the discount, the pair never draws less than the
        // cellular radio alone.
        let p_both = m.power_w(PathUsage::Both, 0.0, 1.0);
        let p_cell = m.power_w(PathUsage::CellularOnly, 0.0, 1.0);
        assert!(p_both >= p_cell);
    }

    #[test]
    fn threeg_model_selectable() {
        let m = EnergyModel::new(DeviceProfile::galaxy_s3(), IfaceKind::Cellular3g);
        assert_eq!(m.cellular_kind(), IfaceKind::Cellular3g);
        // 3G is less efficient than LTE at the same rate, so cellular-only
        // efficiency is worse under the 3G model.
        let lte_model = model();
        let e3g = m.joules_per_byte(PathUsage::CellularOnly, 0.0, 2.0);
        let elte = lte_model.joules_per_byte(PathUsage::CellularOnly, 0.0, 2.0);
        assert!(e3g > elte);
    }

    #[test]
    #[should_panic(expected = "cellular kind required")]
    fn rejects_wifi_as_cellular() {
        EnergyModel::new(DeviceProfile::galaxy_s3(), IfaceKind::Wifi);
    }

    #[test]
    fn usage_predicates() {
        assert!(PathUsage::Both.uses_wifi() && PathUsage::Both.uses_cellular());
        assert!(PathUsage::WifiOnly.uses_wifi() && !PathUsage::WifiOnly.uses_cellular());
        assert!(!PathUsage::CellularOnly.uses_wifi() && PathUsage::CellularOnly.uses_cellular());
    }
}
