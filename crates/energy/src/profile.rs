//! Device energy profiles for the paper's Table 1 devices.
//!
//! Parameter provenance (see DESIGN.md §7): the shapes are anchored to
//! Huang et al. (MobiSys'12) and Balasubramanian et al. (IMC'09), then tuned
//! so the derived artifacts land near the paper's:
//!
//! * Fig 1 fixed overheads: WiFi ≈ 0.15 J / 0.06 J, 3G ≈ 6.5 J,
//!   LTE ≈ 12 J / 9 J;
//! * Table 2 EIB thresholds at 1 Mbps LTE: LTE-only below ≈ 0.13 Mbps WiFi,
//!   WiFi-only above ≈ 0.50 Mbps WiFi;
//! * the §4.6 property that LTE power per second never drops below WiFi's
//!   at any throughput (which is why the WiFi curves flatten at high rate
//!   instead of staying affine).
//!
//! The **sharing discount** `sigma` is the simultaneous-use correction from
//! the multi-interface model of Lim et al. \[17\]: platform overhead (SoC,
//! bus, wakeups) present in both single-interface fits is only paid once
//! when both radios run. Without it, "use both" can never strictly beat the
//! better single path per byte (it would be a weighted mean of the two), and
//! the V-region of Fig 3 could not exist. Physicality requires
//! `0 < sigma < min(base_wifi, base_cellular)`: attaching an *idle* second
//! radio must never reduce total power.

use crate::power::PowerCurve;
use emptcp_phy::rrc::RrcConfig;
use emptcp_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Power and timing of one cellular radio (3G or LTE).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellularPower {
    /// Power while actively transferring, as a function of throughput.
    pub curve: PowerCurve,
    /// Power while in RRC idle (negligible but non-zero).
    pub idle_w: f64,
    /// Power during the promotion from idle to connected.
    pub promo_w: f64,
    /// Power during the high-power tail after the last packet.
    pub tail_w: f64,
    /// RRC timing (promotion delay, inactivity timeout, tail duration).
    pub rrc: RrcConfig,
}

impl CellularPower {
    /// The fixed energy overhead of one activation cycle: promotion plus a
    /// full tail. This is exactly what the paper's Fig 1 plots.
    pub fn fixed_overhead_j(&self) -> f64 {
        self.promo_w * self.rrc.promotion_delay.as_secs_f64()
            + self.tail_w * self.rrc.tail_duration.as_secs_f64()
    }
}

/// The energy profile of one device.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name (Table 1).
    pub name: String,
    /// WiFi power while actively transferring.
    pub wifi_curve: PowerCurve,
    /// WiFi power while associated but idle.
    pub wifi_idle_w: f64,
    /// One-shot WiFi wake/association energy — the WiFi bar of Fig 1.
    pub wifi_wake_j: f64,
    /// The LTE radio.
    pub lte: CellularPower,
    /// The 3G radio.
    pub threeg: CellularPower,
    /// Simultaneous-use sharing discount `sigma` (watts) applied when both
    /// radios transfer at once.
    pub sharing_discount_w: f64,
}

impl DeviceProfile {
    /// Samsung Galaxy S3 (the paper's primary evaluation device).
    pub fn galaxy_s3() -> Self {
        DeviceProfile {
            name: "Samsung Galaxy S3".to_string(),
            // 0.14 W/Mbps near the origin, flattening at high rates so WiFi
            // never out-draws LTE at equal throughput.
            wifi_curve: PowerCurve::from_points(vec![
                (0.0, 0.250),
                (2.0, 0.530),
                (6.0, 0.820),
                (12.0, 1.000),
                (25.0, 1.200),
            ]),
            wifi_idle_w: 0.012,
            wifi_wake_j: 0.15,
            lte: CellularPower {
                curve: PowerCurve::from_points(vec![
                    (0.0, 0.750),
                    (2.0, 0.850),
                    (6.0, 1.450),
                    (12.0, 2.200),
                    (25.0, 3.400),
                ]),
                idle_w: 0.006,
                promo_w: 1.20,
                tail_w: 1.05,
                rrc: RrcConfig {
                    promotion_delay: SimDuration::from_millis(400),
                    inactivity_timeout: SimDuration::from_millis(100),
                    tail_duration: SimDuration::from_millis(10_500),
                },
            },
            threeg: CellularPower {
                curve: PowerCurve::from_points(vec![
                    (0.0, 0.650),
                    (2.0, 1.010),
                    (4.0, 1.250),
                    (8.0, 1.600),
                ]),
                idle_w: 0.005,
                promo_w: 0.80,
                tail_w: 0.70,
                rrc: RrcConfig {
                    promotion_delay: SimDuration::from_millis(1_000),
                    inactivity_timeout: SimDuration::from_millis(200),
                    tail_duration: SimDuration::from_millis(8_100),
                },
            },
            sharing_discount_w: 0.162,
        }
    }

    /// LG Nexus 5 (Table 1's second device; newer process, lower powers).
    pub fn nexus_5() -> Self {
        DeviceProfile {
            name: "LG Nexus 5".to_string(),
            wifi_curve: PowerCurve::from_points(vec![
                (0.0, 0.200),
                (2.0, 0.440),
                (6.0, 0.700),
                (12.0, 0.860),
                (25.0, 1.020),
            ]),
            wifi_idle_w: 0.010,
            wifi_wake_j: 0.06,
            lte: CellularPower {
                curve: PowerCurve::from_points(vec![
                    (0.0, 0.640),
                    (2.0, 0.730),
                    (6.0, 1.250),
                    (12.0, 1.900),
                    (25.0, 2.950),
                ]),
                idle_w: 0.005,
                promo_w: 1.10,
                tail_w: 0.95,
                rrc: RrcConfig {
                    promotion_delay: SimDuration::from_millis(300),
                    inactivity_timeout: SimDuration::from_millis(100),
                    tail_duration: SimDuration::from_millis(9_000),
                },
            },
            threeg: CellularPower {
                curve: PowerCurve::from_points(vec![
                    (0.0, 0.550),
                    (2.0, 0.860),
                    (4.0, 1.060),
                    (8.0, 1.360),
                ]),
                idle_w: 0.004,
                promo_w: 0.75,
                tail_w: 0.65,
                rrc: RrcConfig {
                    promotion_delay: SimDuration::from_millis(900),
                    inactivity_timeout: SimDuration::from_millis(200),
                    tail_duration: SimDuration::from_millis(7_500),
                },
            },
            sharing_discount_w: 0.140,
        }
    }

    /// The fixed energy overheads of the three interfaces — the data behind
    /// the paper's Fig 1 bars: `(wifi_j, threeg_j, lte_j)`.
    pub fn fixed_overheads_j(&self) -> (f64, f64, f64) {
        (
            self.wifi_wake_j,
            self.threeg.fixed_overhead_j(),
            self.lte.fixed_overhead_j(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_fixed_overheads_galaxy_s3() {
        let (wifi, threeg, lte) = DeviceProfile::galaxy_s3().fixed_overheads_j();
        // The paper's Fig 1: WiFi 0.15 J, 3G several J, LTE ~12 J.
        assert!((wifi - 0.15).abs() < 1e-9);
        assert!((5.0..8.0).contains(&threeg), "3G overhead {threeg} J");
        assert!((10.0..13.0).contains(&lte), "LTE overhead {lte} J");
    }

    #[test]
    fn fig1_fixed_overheads_nexus_5() {
        let (wifi, threeg, lte) = DeviceProfile::nexus_5().fixed_overheads_j();
        assert!((wifi - 0.06).abs() < 1e-9);
        assert!((4.0..7.0).contains(&threeg), "3G overhead {threeg} J");
        assert!((8.0..10.0).contains(&lte), "LTE overhead {lte} J");
    }

    #[test]
    fn cellular_overhead_dwarfs_wifi() {
        for profile in [DeviceProfile::galaxy_s3(), DeviceProfile::nexus_5()] {
            let (wifi, threeg, lte) = profile.fixed_overheads_j();
            assert!(lte > 30.0 * wifi, "{}", profile.name);
            assert!(threeg > 20.0 * wifi, "{}", profile.name);
        }
    }

    #[test]
    fn nexus5_is_more_efficient_than_s3() {
        let s3 = DeviceProfile::galaxy_s3();
        let n5 = DeviceProfile::nexus_5();
        for x in [0.5, 2.0, 8.0, 20.0] {
            assert!(n5.wifi_curve.power_w(x) < s3.wifi_curve.power_w(x));
            assert!(n5.lte.curve.power_w(x) < s3.lte.curve.power_w(x));
        }
    }

    #[test]
    fn sharing_discount_is_physical() {
        // sigma must stay below every radio's active baseline, else
        // attaching an idle second radio would *reduce* total power.
        for profile in [DeviceProfile::galaxy_s3(), DeviceProfile::nexus_5()] {
            assert!(profile.sharing_discount_w > 0.0);
            assert!(profile.sharing_discount_w < profile.wifi_curve.base_w());
            assert!(profile.sharing_discount_w < profile.lte.curve.base_w());
            assert!(profile.sharing_discount_w < profile.threeg.curve.base_w());
        }
    }

    #[test]
    fn lte_power_never_below_wifi() {
        // §4.6: "LTE energy consumption per second never becomes lower than
        // WiFi in our energy model" — at every throughput, for both devices.
        for profile in [DeviceProfile::galaxy_s3(), DeviceProfile::nexus_5()] {
            let mut x = 0.0;
            while x <= 60.0 {
                assert!(
                    profile.lte.curve.power_w(x) > profile.wifi_curve.power_w(x),
                    "{} at {x} Mbps",
                    profile.name
                );
                x += 0.25;
            }
        }
    }

    #[test]
    fn threeg_less_efficient_than_lte_at_rate() {
        // 3G burns more watts per Mbps than LTE across its usable range.
        for profile in [DeviceProfile::galaxy_s3(), DeviceProfile::nexus_5()] {
            for x in [1.0, 2.0, 4.0] {
                let lte = profile.lte.curve.power_w(x) / x;
                let threeg = profile.threeg.curve.power_w(x) / x;
                assert!(threeg > lte * 0.9, "{} at {x} Mbps", profile.name);
            }
        }
    }

    #[test]
    fn tail_power_between_idle_and_promo() {
        for profile in [DeviceProfile::galaxy_s3(), DeviceProfile::nexus_5()] {
            for cell in [&profile.lte, &profile.threeg] {
                assert!(cell.tail_w > cell.idle_w * 10.0);
                assert!(cell.tail_w < cell.promo_w * 1.5);
            }
        }
    }
}
