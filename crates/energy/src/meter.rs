//! Runtime energy accounting.
//!
//! The paper measures energy with an external power monitor; here the host
//! reports radio activity ([`RadioSnapshot`]) whenever anything changes
//! (RRC transitions, throughput re-estimates) and the meter integrates the
//! model's power over simulated time. Power is a step function between
//! updates, so integration is exact.

use crate::model::EnergyModel;
use emptcp_phy::rrc::RrcState;
use emptcp_sim::trace::StepSeries;
use emptcp_sim::SimTime;
use emptcp_telemetry::{TelemetryScope, TraceEvent};
use serde::{Deserialize, Serialize};

/// Throughputs below this are treated as "not transferring" for power
/// purposes (stray ACKs don't count as active transfer).
const ACTIVE_THPT_EPS_MBPS: f64 = 0.01;

/// What the radios are doing right now, as reported by the host.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RadioSnapshot {
    /// WiFi radio powered and associated.
    pub wifi_on: bool,
    /// Current WiFi receive+transmit throughput, Mbps.
    pub wifi_mbps: f64,
    /// Cellular RRC state.
    pub cell_state: RrcState,
    /// Current cellular throughput, Mbps.
    pub cell_mbps: f64,
}

impl RadioSnapshot {
    /// Everything off/idle.
    pub fn idle() -> Self {
        RadioSnapshot {
            wifi_on: true,
            wifi_mbps: 0.0,
            cell_state: RrcState::Idle,
            cell_mbps: 0.0,
        }
    }
}

/// Integrates device power over simulated time.
#[derive(Clone, Debug)]
pub struct EnergyMeter {
    model: EnergyModel,
    /// Constant platform power added on top of radio power (screen, SoC);
    /// zero for network-only accounting like the paper's energy model, set
    /// for whole-device cases like the §5.4 web-browsing comparison.
    baseline_w: f64,
    total: StepSeries,
    wifi: StepSeries,
    cell: StepSeries,
    /// One-shot energies charged so far (WiFi wake).
    one_shot_j: f64,
    wifi_woken: bool,
    snapshot: RadioSnapshot,
    /// Cellular energy split by RRC state `[idle, promotion, active, tail]`
    /// — the accounting behind "where did MPTCP's extra joules go?".
    cell_state_j: [f64; 4],
    cell_state_since: SimTime,
    /// Telemetry scope: power-level changes emit
    /// [`TraceEvent::EnergyLevel`] per radio component.
    scope: TelemetryScope,
}

impl EnergyMeter {
    /// A meter starting at `t0` with all radios idle.
    pub fn new(model: EnergyModel, t0: SimTime, baseline_w: f64) -> Self {
        let snapshot = RadioSnapshot::idle();
        let (w, c, tot) = Self::power_of(&model, &snapshot, baseline_w);
        EnergyMeter {
            model,
            baseline_w,
            total: StepSeries::new(t0, tot),
            wifi: StepSeries::new(t0, w),
            cell: StepSeries::new(t0, c),
            one_shot_j: 0.0,
            wifi_woken: false,
            snapshot,
            cell_state_j: [0.0; 4],
            cell_state_since: t0,
            scope: TelemetryScope::disabled(),
        }
    }

    /// Attach a telemetry scope; subsequent power-level changes are traced.
    pub fn set_telemetry(&mut self, scope: TelemetryScope) {
        self.scope = scope;
    }

    fn state_index(state: RrcState) -> usize {
        match state {
            RrcState::Idle => 0,
            RrcState::Promotion => 1,
            RrcState::Active => 2,
            RrcState::Tail => 3,
        }
    }

    /// The energy model in use.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    fn power_of(model: &EnergyModel, s: &RadioSnapshot, baseline_w: f64) -> (f64, f64, f64) {
        let profile = model.profile();
        let wifi_active = s.wifi_on && s.wifi_mbps > ACTIVE_THPT_EPS_MBPS;
        let wifi_w = if !s.wifi_on {
            0.0
        } else if wifi_active {
            profile.wifi_curve.power_w(s.wifi_mbps)
        } else {
            profile.wifi_idle_w
        };
        let cell = model.cellular();
        let cell_active = s.cell_state == RrcState::Active && s.cell_mbps > ACTIVE_THPT_EPS_MBPS;
        let cell_w = match s.cell_state {
            RrcState::Idle => cell.idle_w,
            RrcState::Promotion => cell.promo_w,
            RrcState::Active => {
                if cell_active {
                    cell.curve.power_w(s.cell_mbps)
                } else {
                    // Connected but momentarily quiet: connected baseline.
                    cell.curve.base_w()
                }
            }
            RrcState::Tail => cell.tail_w,
        };
        // Simultaneous-transfer sharing discount, floored so the pair never
        // draws less than its more expensive member.
        let radios = if wifi_active && cell_active {
            (wifi_w + cell_w - profile.sharing_discount_w).max(wifi_w.max(cell_w))
        } else {
            wifi_w + cell_w
        };
        (wifi_w, cell_w, radios + baseline_w)
    }

    /// Report the current radio activity. May be called at any frequency;
    /// levels hold between calls.
    pub fn update(&mut self, now: SimTime, snapshot: RadioSnapshot) {
        if !self.wifi_woken && snapshot.wifi_on && snapshot.wifi_mbps > ACTIVE_THPT_EPS_MBPS {
            self.one_shot_j += self.model.profile().wifi_wake_j;
            self.wifi_woken = true;
        }
        // Close the previous cellular-state segment.
        let dt = now.saturating_since(self.cell_state_since).as_secs_f64();
        self.cell_state_j[Self::state_index(self.snapshot.cell_state)] += self.cell.level() * dt;
        self.cell_state_since = now;

        let (w, c, tot) = Self::power_of(&self.model, &snapshot, self.baseline_w);
        if self.scope.enabled() {
            if w != self.wifi.level() {
                self.scope.emit(now, |_| TraceEvent::EnergyLevel {
                    component: "wifi",
                    watts: w,
                });
            }
            if c != self.cell.level() {
                self.scope.emit(now, |_| TraceEvent::EnergyLevel {
                    component: "cell",
                    watts: c,
                });
            }
        }
        self.wifi.set_level(now, w);
        self.cell.set_level(now, c);
        self.total.set_level(now, tot);
        self.snapshot = snapshot;
    }

    /// Export the current energy split as gauges: total, per-radio, and the
    /// per-RRC-state cellular breakdown.
    pub fn export_metrics(&self, now: SimTime) {
        self.scope.with_metrics(|_, m| {
            m.gauge_set("energy.total_j", self.energy_j(now));
            m.gauge_set("energy.wifi_j", self.wifi_energy_j(now));
            m.gauge_set("energy.cell_j", self.cell_energy_j(now));
            let (idle, promo, active, tail) = self.cell_state_energy_j();
            m.gauge_set("energy.cell.idle_j", idle);
            m.gauge_set("energy.cell.promotion_j", promo);
            m.gauge_set("energy.cell.active_j", active);
            m.gauge_set("energy.cell.tail_j", tail);
        });
    }

    /// Cellular energy attributed to each RRC state up to the last update:
    /// `(idle, promotion, active, tail)` joules. The promotion and tail
    /// entries are the paper's "fixed overheads" as actually paid.
    pub fn cell_state_energy_j(&self) -> (f64, f64, f64, f64) {
        (
            self.cell_state_j[0],
            self.cell_state_j[1],
            self.cell_state_j[2],
            self.cell_state_j[3],
        )
    }

    /// The last reported snapshot.
    pub fn snapshot(&self) -> RadioSnapshot {
        self.snapshot
    }

    /// Instantaneous total power (W).
    pub fn power_w(&self) -> f64 {
        self.total.level()
    }

    /// Total energy consumed up to `now` (J), including one-shot costs.
    pub fn energy_j(&self, now: SimTime) -> f64 {
        self.total.integral_at(now) + self.one_shot_j
    }

    /// Energy attributed to the WiFi radio (undiscounted), up to `now`.
    pub fn wifi_energy_j(&self, now: SimTime) -> f64 {
        self.wifi.integral_at(now)
            + if self.wifi_woken {
                self.model.profile().wifi_wake_j
            } else {
                0.0
            }
    }

    /// Energy attributed to the cellular radio (undiscounted), up to `now`.
    pub fn cell_energy_j(&self, now: SimTime) -> f64 {
        self.cell.integral_at(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emptcp_sim::SimDuration;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    fn meter() -> EnergyMeter {
        EnergyMeter::new(EnergyModel::galaxy_s3_lte(), SimTime::ZERO, 0.0)
    }

    #[test]
    fn idle_device_draws_almost_nothing() {
        let m = meter();
        let e = m.energy_j(s(100));
        // WiFi idle 12 mW + cellular idle 6 mW for 100 s ≈ 1.8 J.
        assert!(e < 2.5, "{e}");
        assert!(e > 1.0, "{e}");
    }

    #[test]
    fn wifi_transfer_uses_curve_plus_wake() {
        let mut m = meter();
        m.update(
            SimTime::ZERO,
            RadioSnapshot {
                wifi_on: true,
                wifi_mbps: 2.0,
                cell_state: RrcState::Idle,
                cell_mbps: 0.0,
            },
        );
        let e = m.energy_j(s(10));
        // 0.53 W (curve at 2 Mbps) + 0.006 (cell idle) over 10 s + 0.15 wake.
        let expected = 0.53 * 10.0 + 0.006 * 10.0 + 0.15;
        assert!((e - expected).abs() < 0.01, "{e} vs {expected}");
    }

    #[test]
    fn wake_energy_charged_once() {
        let mut m = meter();
        for t in 1..5 {
            m.update(
                s(t),
                RadioSnapshot {
                    wifi_on: true,
                    wifi_mbps: 1.0,
                    cell_state: RrcState::Idle,
                    cell_mbps: 0.0,
                },
            );
        }
        // wifi_energy includes exactly one 0.15 J wake.
        let radios = m.wifi_energy_j(s(5));
        m.update(
            s(5),
            RadioSnapshot {
                wifi_on: true,
                wifi_mbps: 0.0,
                cell_state: RrcState::Idle,
                cell_mbps: 0.0,
            },
        );
        let later = m.wifi_energy_j(s(6));
        assert!(later - radios < 0.02, "no second wake charge");
    }

    #[test]
    fn promotion_and_tail_power() {
        let mut m = meter();
        m.update(
            SimTime::ZERO,
            RadioSnapshot {
                wifi_on: false,
                wifi_mbps: 0.0,
                cell_state: RrcState::Promotion,
                cell_mbps: 0.0,
            },
        );
        assert!((m.power_w() - 1.20).abs() < 1e-9, "promo power");
        m.update(
            SimTime::from_millis(400),
            RadioSnapshot {
                wifi_on: false,
                wifi_mbps: 0.0,
                cell_state: RrcState::Tail,
                cell_mbps: 0.0,
            },
        );
        assert!((m.power_w() - 1.05).abs() < 1e-9, "tail power");
        // A full promotion+tail cycle ≈ the Fig 1 LTE fixed overhead.
        let e = m.energy_j(SimTime::from_millis(400 + 10_500));
        let expect = 1.2 * 0.4 + 1.05 * 10.5;
        assert!((e - expect).abs() < 0.01, "{e} vs {expect}");
    }

    #[test]
    fn simultaneous_transfer_gets_discount() {
        let mut both = meter();
        both.update(
            SimTime::ZERO,
            RadioSnapshot {
                wifi_on: true,
                wifi_mbps: 2.0,
                cell_state: RrcState::Active,
                cell_mbps: 2.0,
            },
        );
        let p_both = both.power_w();
        // Sum of singles minus sigma.
        let expect = 0.53 + 0.85 - 0.162;
        assert!((p_both - expect).abs() < 1e-9, "{p_both} vs {expect}");
    }

    #[test]
    fn connected_idle_cell_draws_baseline() {
        let mut m = meter();
        m.update(
            SimTime::ZERO,
            RadioSnapshot {
                wifi_on: false,
                wifi_mbps: 0.0,
                cell_state: RrcState::Active,
                cell_mbps: 0.0,
            },
        );
        assert!((m.power_w() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn baseline_power_adds_up() {
        let m = EnergyMeter::new(EnergyModel::galaxy_s3_lte(), SimTime::ZERO, 0.5);
        let e = m.energy_j(s(10));
        assert!(e > 5.0, "baseline 0.5 W over 10 s ≥ 5 J, got {e}");
    }

    #[test]
    fn per_state_breakdown_matches_fig1_cycle() {
        let mut m = meter();
        let t = |ms: u64| SimTime::from_millis(ms);
        let snap = |state: RrcState| RadioSnapshot {
            wifi_on: false,
            wifi_mbps: 0.0,
            cell_state: state,
            cell_mbps: 0.0,
        };
        m.update(t(0), snap(RrcState::Promotion));
        m.update(t(400), snap(RrcState::Tail));
        m.update(t(400 + 10_500), snap(RrcState::Idle));
        m.update(t(20_000), snap(RrcState::Idle));
        let (idle, promo, active, tail) = m.cell_state_energy_j();
        assert!((promo - 1.2 * 0.4).abs() < 1e-6, "promo {promo}");
        assert!((tail - 1.05 * 10.5).abs() < 1e-6, "tail {tail}");
        assert_eq!(active, 0.0);
        assert!(idle > 0.0 && idle < 0.1);
        // Promotion + tail together are the Fig 1 LTE fixed overhead.
        assert!((promo + tail - 11.505).abs() < 1e-6);
    }

    #[test]
    fn energy_is_monotone_in_time() {
        let mut m = meter();
        let mut last = 0.0;
        for t in 0..200 {
            let now = SimTime::ZERO + SimDuration::from_millis(t * 50);
            if t % 10 == 0 {
                m.update(
                    now,
                    RadioSnapshot {
                        wifi_on: true,
                        wifi_mbps: (t % 20) as f64,
                        cell_state: if t % 3 == 0 {
                            RrcState::Active
                        } else {
                            RrcState::Tail
                        },
                        cell_mbps: (t % 7) as f64,
                    },
                );
            }
            let e = m.energy_j(now);
            assert!(e >= last, "energy decreased at step {t}");
            last = e;
        }
    }
}
