//! Finite-transfer energy and the Fig 4 operating regions.
//!
//! For a transfer of known size the cellular fixed costs (promotion + tail)
//! do not amortize away: downloading `S` bytes over a given usage costs the
//! steady power times the transfer time **plus** the one-shot costs of every
//! radio the usage wakes. The paper's Fig 4 plots, for 1/4/16 MB transfers,
//! the (WiFi, LTE) throughput region where using both interfaces is the most
//! energy-efficient way to complete the entire transfer — the justification
//! for the κ = 1 MB delayed-subflow threshold.

use crate::model::{EnergyModel, PathUsage};
use crate::power::mbps_to_bytes_per_sec;
use serde::{Deserialize, Serialize};

/// Total energy (J) to download `size_bytes` under a usage at the given
/// steady throughputs, including one-shot radio costs. Infinite if the usage
/// delivers no throughput.
pub fn transfer_energy_j(
    model: &EnergyModel,
    usage: PathUsage,
    size_bytes: u64,
    wifi_mbps: f64,
    cell_mbps: f64,
) -> f64 {
    let rate = mbps_to_bytes_per_sec(model.delivered_mbps(usage, wifi_mbps, cell_mbps));
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    let secs = size_bytes as f64 / rate;
    let steady = model.power_w(usage, wifi_mbps, cell_mbps) * secs;
    let mut fixed = 0.0;
    if usage.uses_wifi() {
        fixed += model.profile().wifi_wake_j;
    }
    if usage.uses_cellular() {
        fixed += model.cellular().fixed_overhead_j();
    }
    steady + fixed
}

/// Time (s) to download `size_bytes` under a usage (promotion delay adds to
/// the cellular start but is negligible next to transfer times here).
pub fn transfer_time_s(
    model: &EnergyModel,
    usage: PathUsage,
    size_bytes: u64,
    wifi_mbps: f64,
    cell_mbps: f64,
) -> f64 {
    let rate = mbps_to_bytes_per_sec(model.delivered_mbps(usage, wifi_mbps, cell_mbps));
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    size_bytes as f64 / rate
}

/// The usage that completes a `size_bytes` transfer with the least energy.
pub fn best_usage_for_size(
    model: &EnergyModel,
    size_bytes: u64,
    wifi_mbps: f64,
    cell_mbps: f64,
) -> (PathUsage, f64) {
    PathUsage::ALL
        .iter()
        .map(|&u| {
            (
                u,
                transfer_energy_j(model, u, size_bytes, wifi_mbps, cell_mbps),
            )
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("energy is never NaN"))
        .expect("non-empty usage set")
}

/// One row of the Fig 4 region: at this cellular throughput, `Both` is the
/// most efficient way to complete the transfer for WiFi throughputs within
/// `wifi_range` (if any).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegionRow {
    /// Cellular throughput, Mbps.
    pub cell_mbps: f64,
    /// `(low, high)` WiFi throughput interval where both-interfaces wins.
    pub wifi_range: Option<(f64, f64)>,
}

/// Compute the Fig 4 operating region for a transfer size: for each cellular
/// throughput in `cell_grid`, the WiFi interval where `Both` is the most
/// energy-efficient usage. The scan resolution is `wifi_step` Mbps over
/// `[wifi_step, wifi_max]`.
pub fn mptcp_region(
    model: &EnergyModel,
    size_bytes: u64,
    cell_grid: &[f64],
    wifi_max: f64,
    wifi_step: f64,
) -> Vec<RegionRow> {
    assert!(wifi_step > 0.0 && wifi_max > wifi_step);
    cell_grid
        .iter()
        .map(|&cell| {
            let mut lo = None;
            let mut hi = None;
            let mut w = wifi_step;
            while w <= wifi_max {
                if best_usage_for_size(model, size_bytes, w, cell).0 == PathUsage::Both {
                    if lo.is_none() {
                        lo = Some(w);
                    }
                    hi = Some(w);
                }
                w += wifi_step;
            }
            RegionRow {
                cell_mbps: cell,
                wifi_range: lo.zip(hi),
            }
        })
        .collect()
}

/// Area (in Mbps²) of the region, used to compare sizes: larger transfers
/// must have larger regions. `wifi_step` is the scan resolution the rows
/// were computed with; a row whose interval collapsed to a single scan point
/// still contributes one cell of area.
pub fn region_area(rows: &[RegionRow], cell_step: f64, wifi_step: f64) -> f64 {
    rows.iter()
        .filter_map(|r| r.wifi_range)
        .map(|(lo, hi)| (hi - lo + wifi_step) * cell_step)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn model() -> EnergyModel {
        EnergyModel::galaxy_s3_lte()
    }

    #[test]
    fn energy_includes_fixed_costs() {
        let m = model();
        let e_wifi = transfer_energy_j(&m, PathUsage::WifiOnly, MB, 5.0, 5.0);
        let e_cell = transfer_energy_j(&m, PathUsage::CellularOnly, MB, 5.0, 5.0);
        // Same steady throughput, but cellular pays ~12 J promotion+tail.
        assert!(e_cell > e_wifi + 10.0);
    }

    #[test]
    fn zero_rate_is_infinite() {
        let m = model();
        assert_eq!(
            transfer_energy_j(&m, PathUsage::WifiOnly, MB, 0.0, 5.0),
            f64::INFINITY
        );
        assert_eq!(
            transfer_time_s(&m, PathUsage::Both, MB, 0.0, 0.0),
            f64::INFINITY
        );
    }

    #[test]
    fn small_transfers_prefer_wifi_only() {
        // κ = 1 MB rationale: "MPTCP is rarely more energy efficient than
        // single path TCP when downloading a file smaller than this size."
        let m = model();
        let mut both_wins = 0;
        let mut total = 0;
        for wi in 1..=24 {
            for ci in 1..=24 {
                let wifi = wi as f64 * 0.25;
                let cell = ci as f64 * 0.5;
                total += 1;
                if best_usage_for_size(&m, MB, wifi, cell).0 == PathUsage::Both {
                    both_wins += 1;
                }
            }
        }
        assert!(
            (both_wins as f64) < 0.05 * total as f64,
            "both won {both_wins}/{total} for 1 MB"
        );
    }

    #[test]
    fn fig4_regions_grow_with_size() {
        let m = model();
        let cell_grid: Vec<f64> = (1..=24).map(|i| i as f64 * 0.5).collect();
        let r1 = mptcp_region(&m, MB, &cell_grid, 6.0, 0.1);
        let r4 = mptcp_region(&m, 4 * MB, &cell_grid, 6.0, 0.1);
        let r16 = mptcp_region(&m, 16 * MB, &cell_grid, 6.0, 0.1);
        let (a1, a4, a16) = (
            region_area(&r1, 0.5, 0.1),
            region_area(&r4, 0.5, 0.1),
            region_area(&r16, 0.5, 0.1),
        );
        assert!(a1 < a4, "1 MB region {a1} !< 4 MB region {a4}");
        assert!(a4 < a16, "4 MB region {a4} !< 16 MB region {a16}");
        assert!(a4 > 0.0, "4 MB region must be non-empty");
    }

    #[test]
    fn large_transfer_region_approaches_steady_state() {
        // For a very large file, the per-size best usage must agree with the
        // steady-state model almost everywhere.
        let m = model();
        let mut agree = 0;
        let mut total = 0;
        for wi in 1..=20 {
            for ci in 1..=20 {
                let wifi = wi as f64 * 0.3;
                let cell = ci as f64 * 0.5;
                total += 1;
                let by_size = best_usage_for_size(&m, 1024 * MB, wifi, cell).0;
                let (steady, _) = m.best_usage(wifi, cell);
                if by_size == steady {
                    agree += 1;
                }
            }
        }
        assert!(agree as f64 / total as f64 > 0.95, "{agree}/{total}");
    }

    #[test]
    fn region_rows_cover_grid() {
        let m = model();
        let cell_grid = [2.0, 4.0, 8.0];
        let rows = mptcp_region(&m, 16 * MB, &cell_grid, 6.0, 0.1);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].cell_mbps, 2.0);
        // At 16 MB and strong LTE, a region exists for slow WiFi.
        assert!(rows.iter().any(|r| r.wifi_range.is_some()));
    }

    #[test]
    fn transfer_time_matches_rate() {
        let m = model();
        // 1 MB at 8 Mbps = 1 MB / 1 MB/s ≈ 1.05 s.
        let t = transfer_time_s(&m, PathUsage::WifiOnly, MB, 8.0, 0.0);
        assert!((t - (MB as f64 / 1e6)).abs() < 0.06, "{t}");
    }
}
