//! The Energy Information Base (EIB).
//!
//! §3.3: "The EIB represents this data as an array, indexed by the observed
//! LTE throughput, where each entry includes two WiFi throughputs" — the
//! transition points between cellular-only, both, and WiFi-only usage. The
//! paper computes it offline from the parameterized energy model; so do we,
//! by bisecting the per-byte efficiency crossovers of [`EnergyModel`].
//!
//! The same module exports the Fig 3 heat map (per-byte efficiency of using
//! both interfaces, normalized by the best single interface).

use crate::model::{EnergyModel, PathUsage};
use serde::{Deserialize, Serialize};

/// One row of the EIB: for an observed cellular throughput, the WiFi
/// throughputs at which the optimal usage changes (the paper's Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EibRow {
    /// Observed cellular (LTE/3G) throughput this row is indexed by, Mbps.
    pub cell_mbps: f64,
    /// Below this WiFi throughput, cellular-only is most efficient
    /// ("LTE Only Threshold" in Table 2).
    pub cell_only_below: f64,
    /// At or above this WiFi throughput, WiFi-only is most efficient
    /// ("WiFi Only Threshold" in Table 2).
    pub wifi_only_at_or_above: f64,
}

/// The Energy Information Base: threshold rows over a cellular-throughput
/// grid, with linear interpolation between rows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Eib {
    rows: Vec<EibRow>,
}

/// Upper bound of the WiFi bisection range (Mbps); far beyond any threshold
/// the model produces in the paper's operating envelope.
const WIFI_SEARCH_MAX_MBPS: f64 = 100.0;
/// Bisection tolerance in Mbps; Table 2 reports three decimals.
const BISECT_TOL_MBPS: f64 = 5e-4;

fn bisect_first_true(mut lo: f64, mut hi: f64, pred: impl Fn(f64) -> bool) -> f64 {
    // Precondition: pred is monotone false→true on [lo, hi] and pred(hi).
    while hi - lo > BISECT_TOL_MBPS {
        let mid = 0.5 * (lo + hi);
        if pred(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

impl Eib {
    /// Compute threshold pair for one cellular throughput.
    fn thresholds_for(model: &EnergyModel, cell_mbps: f64) -> (f64, f64) {
        let both_beats_cell = |w: f64| {
            model.joules_per_byte(PathUsage::Both, w, cell_mbps)
                < model.joules_per_byte(PathUsage::CellularOnly, w, cell_mbps)
        };
        let wifi_beats_both = |w: f64| {
            model.joules_per_byte(PathUsage::WifiOnly, w, cell_mbps)
                <= model.joules_per_byte(PathUsage::Both, w, cell_mbps)
        };
        let t1 = if both_beats_cell(0.0) {
            0.0
        } else if !both_beats_cell(WIFI_SEARCH_MAX_MBPS) {
            WIFI_SEARCH_MAX_MBPS
        } else {
            bisect_first_true(0.0, WIFI_SEARCH_MAX_MBPS, both_beats_cell)
        };
        let t2 = if wifi_beats_both(0.0) {
            0.0
        } else if !wifi_beats_both(WIFI_SEARCH_MAX_MBPS) {
            WIFI_SEARCH_MAX_MBPS
        } else {
            bisect_first_true(0.0, WIFI_SEARCH_MAX_MBPS, wifi_beats_both)
        };
        (t1, t2.max(t1))
    }

    /// Generate an EIB over a cellular-throughput grid (must be non-empty
    /// and strictly increasing).
    pub fn generate(model: &EnergyModel, cell_grid: &[f64]) -> Eib {
        assert!(!cell_grid.is_empty(), "EIB needs a non-empty grid");
        assert!(
            cell_grid.windows(2).all(|w| w[0] < w[1]),
            "EIB grid must strictly increase"
        );
        assert!(cell_grid[0] > 0.0, "EIB grid starts above zero");
        let rows = cell_grid
            .iter()
            .map(|&c| {
                let (t1, t2) = Self::thresholds_for(model, c);
                EibRow {
                    cell_mbps: c,
                    cell_only_below: t1,
                    wifi_only_at_or_above: t2,
                }
            })
            .collect();
        Eib { rows }
    }

    /// The default grid used on-device: 0.25 Mbps steps up to 25 Mbps.
    pub fn generate_default(model: &EnergyModel) -> Eib {
        let grid: Vec<f64> = (1..=100).map(|i| i as f64 * 0.25).collect();
        Eib::generate(model, &grid)
    }

    /// All rows.
    pub fn rows(&self) -> &[EibRow] {
        &self.rows
    }

    /// Interpolated `(cell_only_below, wifi_only_at_or_above)` thresholds at
    /// an arbitrary cellular throughput (clamped to the grid range).
    pub fn thresholds(&self, cell_mbps: f64) -> (f64, f64) {
        let rows = &self.rows;
        if cell_mbps <= rows[0].cell_mbps {
            // Below the grid scale thresholds proportionally toward zero:
            // both thresholds vanish as the cellular rate does.
            let frac = (cell_mbps / rows[0].cell_mbps).max(0.0);
            return (
                rows[0].cell_only_below * frac,
                rows[0].wifi_only_at_or_above * frac,
            );
        }
        if cell_mbps >= rows[rows.len() - 1].cell_mbps {
            let last = rows[rows.len() - 1];
            return (last.cell_only_below, last.wifi_only_at_or_above);
        }
        let idx = rows.partition_point(|r| r.cell_mbps <= cell_mbps);
        let (a, b) = (rows[idx - 1], rows[idx]);
        let frac = (cell_mbps - a.cell_mbps) / (b.cell_mbps - a.cell_mbps);
        (
            a.cell_only_below + (b.cell_only_below - a.cell_only_below) * frac,
            a.wifi_only_at_or_above + (b.wifi_only_at_or_above - a.wifi_only_at_or_above) * frac,
        )
    }

    /// The usage the EIB prescribes for the given predicted throughputs
    /// (no hysteresis; the path usage controller layers the 10% safety
    /// factor on top).
    pub fn choose(&self, wifi_mbps: f64, cell_mbps: f64) -> PathUsage {
        let (t1, t2) = self.thresholds(cell_mbps);
        if wifi_mbps < t1 {
            PathUsage::CellularOnly
        } else if wifi_mbps >= t2 {
            PathUsage::WifiOnly
        } else {
            PathUsage::Both
        }
    }
}

/// The Fig 3 heat map: `both_vs_best_single` sampled over a grid. Returns
/// one row per `cell_grid` entry, each with one value per `wifi_grid` entry.
pub fn efficiency_heatmap(
    model: &EnergyModel,
    wifi_grid: &[f64],
    cell_grid: &[f64],
) -> Vec<Vec<f64>> {
    cell_grid
        .iter()
        .map(|&c| {
            wifi_grid
                .iter()
                .map(|&w| model.both_vs_best_single(w, c))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eib() -> Eib {
        Eib::generate_default(&EnergyModel::galaxy_s3_lte())
    }

    #[test]
    fn table2_thresholds_in_papers_ballpark() {
        // Paper Table 2 (Galaxy S3): rows (LTE Mbps, LTE-only <, WiFi-only ≥)
        //   0.5 → 0.043 / 0.234 ; 1.0 → 0.134 / 0.502
        //   1.5 → 0.209 / 0.803 ; 2.0 → 0.304 / 1.070
        // The reproduction's fitted curves should land within ~50% of each.
        let e = eib();
        let expect = [
            (0.5, 0.043, 0.234),
            (1.0, 0.134, 0.502),
            (1.5, 0.209, 0.803),
            (2.0, 0.304, 1.070),
        ];
        for (cell, t1_paper, t2_paper) in expect {
            let (t1, t2) = e.thresholds(cell);
            assert!(
                (t1 / t1_paper) > 0.5 && (t1 / t1_paper) < 2.0,
                "cell={cell}: T1 {t1} vs paper {t1_paper}"
            );
            assert!(
                (t2 / t2_paper) > 0.5 && (t2 / t2_paper) < 2.0,
                "cell={cell}: T2 {t2} vs paper {t2_paper}"
            );
        }
    }

    #[test]
    fn thresholds_increase_with_cellular_rate() {
        let e = eib();
        let mut last = (0.0, 0.0);
        for row in e.rows() {
            assert!(row.cell_only_below >= last.0, "T1 must not decrease");
            assert!(row.wifi_only_at_or_above >= last.1, "T2 must not decrease");
            assert!(row.cell_only_below <= row.wifi_only_at_or_above);
            last = (row.cell_only_below, row.wifi_only_at_or_above);
        }
    }

    #[test]
    fn choose_matches_model_best_usage() {
        let e = eib();
        let model = EnergyModel::galaxy_s3_lte();
        let mut agree = 0;
        let mut total = 0;
        for ci in 1..=20 {
            for wi in 0..=40 {
                let cell = ci as f64 * 0.5;
                let wifi = wi as f64 * 0.25;
                let by_eib = e.choose(wifi, cell);
                let (by_model, _) = model.best_usage(wifi, cell);
                total += 1;
                if by_eib == by_model {
                    agree += 1;
                }
            }
        }
        // Interpolation near boundaries can disagree on a handful of grid
        // points; demand ≥97% agreement.
        assert!(
            agree as f64 / total as f64 > 0.97,
            "EIB/model agreement {agree}/{total}"
        );
    }

    #[test]
    fn choose_regimes() {
        let e = eib();
        assert_eq!(e.choose(0.01, 1.0), PathUsage::CellularOnly);
        assert_eq!(e.choose(0.30, 1.0), PathUsage::Both);
        assert_eq!(e.choose(5.00, 1.0), PathUsage::WifiOnly);
    }

    #[test]
    fn interpolation_is_continuous() {
        let e = eib();
        // Walk cell throughput finely; thresholds must change smoothly.
        let mut prev = e.thresholds(0.25);
        let mut c = 0.26;
        while c < 20.0 {
            let cur = e.thresholds(c);
            assert!((cur.0 - prev.0).abs() < 0.05, "T1 jump at {c}");
            assert!((cur.1 - prev.1).abs() < 0.05, "T2 jump at {c}");
            prev = cur;
            c += 0.01;
        }
    }

    #[test]
    fn below_grid_scales_to_zero() {
        let e = eib();
        let (t1, t2) = e.thresholds(0.0);
        assert_eq!(t1, 0.0);
        assert_eq!(t2, 0.0);
        let (t1s, t2s) = e.thresholds(0.125);
        let (t1f, t2f) = e.thresholds(0.25);
        assert!(t1s <= t1f && t2s <= t2f);
    }

    #[test]
    fn above_grid_clamps() {
        let e = eib();
        let hi = e.thresholds(25.0);
        let above = e.thresholds(400.0);
        assert_eq!(hi, above);
    }

    #[test]
    fn heatmap_has_v_region() {
        let model = EnergyModel::galaxy_s3_lte();
        let wifi: Vec<f64> = (1..=40).map(|i| i as f64 * 0.25).collect();
        let cell: Vec<f64> = (1..=40).map(|i| i as f64 * 0.25).collect();
        let map = efficiency_heatmap(&model, &wifi, &cell);
        assert_eq!(map.len(), cell.len());
        assert_eq!(map[0].len(), wifi.len());
        let dark = map.iter().flatten().filter(|&&v| v < 1.0).count();
        let bright = map.iter().flatten().filter(|&&v| v > 1.0).count();
        assert!(dark > 0, "no V-region found");
        assert!(bright > dark, "V-region should be a minority of the plane");
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn generate_rejects_bad_grid() {
        Eib::generate(&EnergyModel::galaxy_s3_lte(), &[1.0, 1.0]);
    }
}
