//! Power-versus-throughput curves.
//!
//! Fitted mobile power models are reported as measured power at a set of
//! throughput operating points; [`PowerCurve`] interpolates linearly between
//! points and extrapolates with the final slope, which covers both the
//! affine `β + α·x` models of Huang et al. and arbitrary fitted tables
//! from tools like the V-edge / PowerTutor generators the paper cites as
//! alternative EIB sources (§3.3).

use serde::{Deserialize, Serialize};

/// A monotone piecewise-linear map from throughput (Mbps) to power (watts).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerCurve {
    /// `(throughput_mbps, power_w)` knots, strictly increasing in
    /// throughput, starting at 0 Mbps.
    points: Vec<(f64, f64)>,
}

impl PowerCurve {
    /// Build from explicit knots. The first knot must be at 0 Mbps (the
    /// active-idle baseline) and throughputs must strictly increase.
    pub fn from_points(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "power curve needs at least one point");
        assert_eq!(points[0].0, 0.0, "first knot must be at 0 Mbps");
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "knot throughputs must strictly increase"
        );
        assert!(
            points.iter().all(|&(_, p)| p >= 0.0),
            "power must be non-negative"
        );
        PowerCurve { points }
    }

    /// The affine model `P(x) = beta + alpha * x` used by Huang et al.:
    /// `beta` watts at zero throughput, `alpha` watts per Mbps.
    pub fn affine(beta_w: f64, alpha_w_per_mbps: f64) -> Self {
        PowerCurve::from_points(vec![(0.0, beta_w), (1.0, beta_w + alpha_w_per_mbps)])
    }

    /// Power draw at the given throughput.
    pub fn power_w(&self, thpt_mbps: f64) -> f64 {
        let x = thpt_mbps.max(0.0);
        let ps = &self.points;
        if ps.len() == 1 {
            return ps[0].1;
        }
        // Find the bracketing segment; extrapolate with the last slope.
        let idx = ps.partition_point(|&(t, _)| t <= x);
        let (i0, i1) = if idx == 0 {
            (0, 1)
        } else if idx >= ps.len() {
            (ps.len() - 2, ps.len() - 1)
        } else {
            (idx - 1, idx)
        };
        let (x0, y0) = ps[i0];
        let (x1, y1) = ps[i1];
        let slope = (y1 - y0) / (x1 - x0);
        (y0 + slope * (x - x0)).max(0.0)
    }

    /// The zero-throughput (active-idle) power.
    pub fn base_w(&self) -> f64 {
        self.points[0].1
    }

    /// The knots.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// Convert a throughput in Mbps to bytes per second.
pub fn mbps_to_bytes_per_sec(mbps: f64) -> f64 {
    mbps * 1e6 / 8.0
}

/// Convert bytes-over-duration to Mbps.
pub fn bytes_to_mbps(bytes: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    bytes as f64 * 8.0 / secs / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_curve_matches_formula() {
        let c = PowerCurve::affine(0.25, 0.14);
        assert!((c.power_w(0.0) - 0.25).abs() < 1e-12);
        assert!((c.power_w(1.0) - 0.39).abs() < 1e-12);
        // Extrapolation keeps the slope.
        assert!((c.power_w(10.0) - (0.25 + 1.4)).abs() < 1e-12);
        assert_eq!(c.base_w(), 0.25);
    }

    #[test]
    fn piecewise_interpolation() {
        let c = PowerCurve::from_points(vec![(0.0, 1.0), (2.0, 2.0), (4.0, 2.5)]);
        assert!((c.power_w(1.0) - 1.5).abs() < 1e-12);
        assert!((c.power_w(3.0) - 2.25).abs() < 1e-12);
        // Beyond the last knot: final slope 0.25 W/Mbps.
        assert!((c.power_w(6.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn negative_throughput_clamped() {
        let c = PowerCurve::affine(0.5, 0.1);
        assert_eq!(c.power_w(-3.0), c.power_w(0.0));
    }

    #[test]
    #[should_panic(expected = "first knot must be at 0 Mbps")]
    fn rejects_missing_baseline() {
        PowerCurve::from_points(vec![(1.0, 1.0), (2.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn rejects_unordered_knots() {
        PowerCurve::from_points(vec![(0.0, 1.0), (2.0, 2.0), (2.0, 3.0)]);
    }

    #[test]
    fn unit_conversions() {
        assert!((mbps_to_bytes_per_sec(8.0) - 1e6).abs() < 1e-9);
        assert!((bytes_to_mbps(1_000_000, 1.0) - 8.0).abs() < 1e-12);
        assert_eq!(bytes_to_mbps(100, 0.0), 0.0);
    }

    #[test]
    fn power_never_negative() {
        // A decreasing tail segment extrapolated far out must clamp at 0.
        let c = PowerCurve::from_points(vec![(0.0, 1.0), (1.0, 0.5)]);
        assert_eq!(c.power_w(100.0), 0.0);
    }
}
