//! Ingest: how events enter the pipeline.
//!
//! Two entry points, deliberately symmetric so they are interchangeable:
//!
//! * [`PipelineSink`] — a [`TraceSink`] that folds events into a shared
//!   [`Pipeline`] as they are emitted by a *running* simulation, without
//!   ever buffering the trace. An optional observer callback fires whenever
//!   the aggregation bin advances, which is what drives the live dashboard.
//! * [`replay`] — parses a recorded JSONL trace line by line and feeds the
//!   same `ingest` call. Same events in the same order ⇒ the same pipeline
//!   state as the live tap, which the determinism tests pin down.

use crate::models::Pipeline;
use emptcp_sim::SimTime;
use emptcp_telemetry::{parse_jsonl_line, TraceEvent, TraceSink};
use std::io::BufRead;
use std::sync::{Arc, Mutex};

/// Callback fired by [`PipelineSink`] each time the bin index advances.
pub type BinObserver = Box<dyn FnMut(&Pipeline) + Send>;

/// Streaming sink: every recorded event is folded into the shared pipeline
/// immediately. Clone the [`Arc`] handle to read aggregates while the run
/// is still in flight.
pub struct PipelineSink {
    pipeline: Arc<Mutex<Pipeline>>,
    observer: Option<BinObserver>,
    last_bin: Option<u64>,
}

impl PipelineSink {
    pub fn new(pipeline: Arc<Mutex<Pipeline>>) -> Self {
        PipelineSink {
            pipeline,
            observer: None,
            last_bin: None,
        }
    }

    /// Attach an observer fired on every bin advance (at most once per
    /// bin). The pipeline is locked while it runs; keep it cheap.
    pub fn with_observer(mut self, observer: BinObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Shared handle to the pipeline this sink feeds.
    pub fn pipeline(&self) -> Arc<Mutex<Pipeline>> {
        Arc::clone(&self.pipeline)
    }
}

impl TraceSink for PipelineSink {
    fn record(&mut self, t: SimTime, event: &TraceEvent) {
        let mut p = self.pipeline.lock().expect("pipeline poisoned");
        p.ingest(t, event);
        let bin = p.current_bin();
        if self.last_bin != Some(bin) {
            self.last_bin = Some(bin);
            if let Some(obs) = &mut self.observer {
                obs(&p);
            }
        }
    }
}

/// Outcome of replaying a recorded trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Events successfully parsed and ingested.
    pub events: u64,
    /// Lines that failed to parse, with (1-based line number, error text).
    pub errors: Vec<(u64, String)>,
}

impl ReplayStats {
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Replay a JSONL trace into `pipeline`. Blank lines are skipped; malformed
/// lines are collected (not fatal) so a partially corrupt trace still
/// yields a dashboard plus a precise list of what was dropped.
pub fn replay<R: BufRead>(reader: R, pipeline: &mut Pipeline) -> std::io::Result<ReplayStats> {
    let mut stats = ReplayStats::default();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_jsonl_line(&line) {
            Ok((t, ev)) => {
                pipeline.ingest(t, &ev);
                stats.events += 1;
            }
            Err(e) => stats.errors.push((idx as u64 + 1, format!("{e:?}"))),
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::PipelineConfig;
    use emptcp_telemetry::jsonl_line;

    fn ev(bytes: u64) -> TraceEvent {
        TraceEvent::Delivered {
            conn: 0,
            subflow: 0,
            bytes,
        }
    }

    #[test]
    fn live_sink_and_replay_agree() {
        let events = [
            (SimTime::from_millis(10), ev(100)),
            (SimTime::from_millis(250), ev(300)),
            (SimTime::from_millis(260), ev(44)),
        ];

        let live = Arc::new(Mutex::new(Pipeline::new(PipelineConfig::default())));
        let mut sink = PipelineSink::new(Arc::clone(&live));
        let mut jsonl = String::new();
        for (t, e) in &events {
            sink.record(*t, e);
            jsonl.push_str(&jsonl_line(*t, e));
            jsonl.push('\n');
        }

        let mut replayed = Pipeline::new(PipelineConfig::default());
        let stats = replay(jsonl.as_bytes(), &mut replayed).unwrap();
        assert!(stats.is_clean());
        assert_eq!(stats.events, 3);

        let live = live.lock().unwrap();
        assert_eq!(live.events, replayed.events);
        assert_eq!(live.delivered_total, replayed.delivered_total);
        assert_eq!(live.last_t, replayed.last_t);
    }

    #[test]
    fn observer_fires_once_per_bin() {
        let pipeline = Arc::new(Mutex::new(Pipeline::new(PipelineConfig::default())));
        let fired = Arc::new(Mutex::new(0u32));
        let fired_handle = Arc::clone(&fired);
        let mut sink = PipelineSink::new(pipeline).with_observer(Box::new(move |_| {
            *fired_handle.lock().unwrap() += 1;
        }));
        // Three events in bin 0, one in bin 3.
        for ms in [10, 20, 30] {
            sink.record(SimTime::from_millis(ms), &ev(1));
        }
        sink.record(SimTime::from_millis(350), &ev(1));
        assert_eq!(*fired.lock().unwrap(), 2, "bin 0 entry + bin 3 advance");
    }

    #[test]
    fn replay_collects_malformed_lines() {
        let trace =
            "garbage\n\n{\"t_ns\":1,\"event\":{\"BackupPromoted\":{\"conn\":1,\"subflow\":0}}}\n";
        let mut p = Pipeline::new(PipelineConfig::default());
        let stats = replay(trace.as_bytes(), &mut p).unwrap();
        assert_eq!(stats.events, 1);
        assert_eq!(stats.errors.len(), 1);
        assert_eq!(stats.errors[0].0, 1);
    }
}
