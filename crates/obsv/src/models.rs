//! Rolling aggregate models: what the pipeline knows about the fleet.
//!
//! [`Pipeline::ingest`] folds one timestamped [`TraceEvent`] at a time into
//! per-client, per-router-port, per-energy-component models plus fleet-wide
//! time series. Everything is keyed by `BTreeMap` and advanced only by
//! simulation timestamps, so feeding the same event stream — whether tapped
//! live off a running fleet or replayed from a JSONL file — produces an
//! identical pipeline state, and therefore byte-identical exports.

use crate::cache::{Rolling, Series};
use emptcp_sim::{SimDuration, SimTime};
use emptcp_telemetry::{Histogram, TraceEvent};
use std::collections::BTreeMap;

/// Aggregation parameters. The defaults suit fleet runs of a few seconds
/// to a few minutes: 100 ms bins, a 60-bin (6 s) dashboard window, top-5
/// hot-spot tables.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Width of one aggregation bin.
    pub bin: SimDuration,
    /// How many bins the dashboard's rolling window holds.
    pub window_bins: usize,
    /// How many rows the hot-client / hot-port tables keep.
    pub top_k: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            bin: SimDuration::from_millis(100),
            window_bins: 60,
            top_k: 5,
        }
    }
}

/// Per-connection aggregates.
#[derive(Debug, Clone)]
pub struct ClientModel {
    /// Delivered bytes per bin (dashboard window).
    pub bytes: Rolling,
    pub total_bytes: u64,
    pub retransmits: u64,
    pub rtos: u64,
    /// Failure-recovery events: subflow deaths, revivals, backup promotions.
    pub recoveries: u64,
    /// Scheduler picks per subflow id — the pick-share signal.
    pub picks: BTreeMap<u8, u64>,
}

impl ClientModel {
    fn new(window: usize) -> Self {
        ClientModel {
            bytes: Rolling::new(window),
            total_bytes: 0,
            retransmits: 0,
            rtos: 0,
            recoveries: 0,
            picks: BTreeMap::new(),
        }
    }

    /// Total scheduler picks across subflows.
    pub fn picks_total(&self) -> u64 {
        self.picks.values().sum()
    }
}

/// Per router-output-port aggregates.
#[derive(Debug, Clone)]
pub struct PortModel {
    /// Drops per bin (dashboard window).
    pub drops: Rolling,
    pub drops_by_reason: BTreeMap<&'static str, u64>,
    pub total_drops: u64,
    /// Most recent QueueDepth observation.
    pub queue_bytes: u64,
    pub queue_capacity: u64,
    pub peak_queue_bytes: u64,
    /// ECN-threshold crossings observed (QueueDepth is edge-triggered).
    pub ecn_crossings: u64,
}

impl PortModel {
    fn new(window: usize) -> Self {
        PortModel {
            drops: Rolling::new(window),
            drops_by_reason: BTreeMap::new(),
            total_drops: 0,
            queue_bytes: 0,
            queue_capacity: 0,
            peak_queue_bytes: 0,
            ecn_crossings: 0,
        }
    }
}

/// Per energy-meter-component power integration.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    pub last_watts: f64,
    pub last_t: SimTime,
    /// Joules integrated up to `last_t` (rectangle rule over level changes,
    /// which is exact for a piecewise-constant power meter).
    pub joules: f64,
}

impl EnergyModel {
    /// Joules including the open interval from the last level change to `at`.
    pub fn joules_at(&self, at: SimTime) -> f64 {
        if at > self.last_t {
            self.joules + self.last_watts * at.saturating_since(self.last_t).as_secs_f64()
        } else {
            self.joules
        }
    }
}

/// The streaming aggregation state.
#[derive(Debug, Clone)]
pub struct Pipeline {
    cfg: PipelineConfig,
    /// Events ingested.
    pub events: u64,
    /// Event counts by variant kind.
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Timestamp of the first / latest event seen.
    pub first_t: Option<SimTime>,
    pub last_t: SimTime,
    pub clients: BTreeMap<u32, ClientModel>,
    pub ports: BTreeMap<(u32, u32), PortModel>,
    pub energy: BTreeMap<&'static str, EnergyModel>,
    /// Fleet-wide delivered bytes per bin (full history, for export).
    pub throughput: Series,
    /// Fleet-wide delivered bytes per bin (rolling, for the dashboard).
    pub throughput_window: Rolling,
    pub drops_series: Series,
    pub retransmits_series: Series,
    pub rtos_series: Series,
    pub recoveries_series: Series,
    /// Queue fill percentage (bytes/capacity*100) at each QueueDepth
    /// emission — the distribution the dashboard renders.
    pub queue_fill: Histogram,
    pub delivered_total: u64,
    pub invariant_violations: u64,
    pub faults_injected: u64,
}

impl Pipeline {
    pub fn new(cfg: PipelineConfig) -> Self {
        Pipeline {
            cfg,
            events: 0,
            by_kind: BTreeMap::new(),
            first_t: None,
            last_t: SimTime::ZERO,
            clients: BTreeMap::new(),
            ports: BTreeMap::new(),
            energy: BTreeMap::new(),
            throughput: Series::new(),
            throughput_window: Rolling::new(cfg.window_bins),
            drops_series: Series::new(),
            retransmits_series: Series::new(),
            rtos_series: Series::new(),
            recoveries_series: Series::new(),
            queue_fill: Histogram::default(),
            delivered_total: 0,
            invariant_violations: 0,
            faults_injected: 0,
        }
    }

    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Absolute bin index of time `t`.
    pub fn bin_of(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.cfg.bin.as_nanos().max(1)
    }

    /// Bin index of the latest event (0 before any event).
    pub fn current_bin(&self) -> u64 {
        self.bin_of(self.last_t)
    }

    pub fn bin_secs(&self) -> f64 {
        self.cfg.bin.as_secs_f64()
    }

    /// Convert a per-bin byte count to megabits per second.
    pub fn bytes_to_mbps(&self, bytes: f64) -> f64 {
        bytes * 8.0 / self.bin_secs() / 1e6
    }

    /// Fold one event into the models.
    pub fn ingest(&mut self, t: SimTime, ev: &TraceEvent) {
        self.events += 1;
        *self.by_kind.entry(ev.kind()).or_insert(0) += 1;
        if self.first_t.is_none() {
            self.first_t = Some(t);
        }
        if t > self.last_t {
            self.last_t = t;
        }
        let bin = self.bin_of(t);
        let window = self.cfg.window_bins;
        match ev {
            TraceEvent::Delivered {
                conn,
                subflow: _,
                bytes,
            } => {
                let b = *bytes as f64;
                self.delivered_total += bytes;
                self.throughput.add(bin, b);
                self.throughput_window.add(bin, b);
                self.clients
                    .entry(*conn)
                    .or_insert_with(|| ClientModel::new(window))
                    .add_bytes(bin, *bytes);
            }
            TraceEvent::Retransmit { conn, .. } => {
                self.retransmits_series.add(bin, 1.0);
                self.client(*conn).retransmits += 1;
            }
            TraceEvent::RtoFired { conn, .. } => {
                self.rtos_series.add(bin, 1.0);
                self.client(*conn).rtos += 1;
            }
            TraceEvent::SchedPick { conn, picked, .. } => {
                *self.client(*conn).picks.entry(*picked).or_insert(0) += 1;
            }
            TraceEvent::SubflowDead { conn, .. }
            | TraceEvent::SubflowRevived { conn, .. }
            | TraceEvent::BackupPromoted { conn, .. } => {
                self.recoveries_series.add(bin, 1.0);
                self.client(*conn).recoveries += 1;
            }
            TraceEvent::RouterDrop {
                router,
                port,
                reason,
            } => {
                self.drops_series.add(bin, 1.0);
                let p = self
                    .ports
                    .entry((*router, *port))
                    .or_insert_with(|| PortModel::new(window));
                p.total_drops += 1;
                p.drops.add(bin, 1.0);
                *p.drops_by_reason.entry(reason).or_insert(0) += 1;
            }
            TraceEvent::QueueDepth {
                router,
                port,
                bytes,
                capacity,
            } => {
                let p = self
                    .ports
                    .entry((*router, *port))
                    .or_insert_with(|| PortModel::new(window));
                p.queue_bytes = *bytes;
                p.queue_capacity = *capacity;
                p.peak_queue_bytes = p.peak_queue_bytes.max(*bytes);
                p.ecn_crossings += 1;
                if *capacity > 0 {
                    self.queue_fill
                        .record(*bytes as f64 * 100.0 / *capacity as f64);
                }
            }
            TraceEvent::EnergyLevel { component, watts } => match self.energy.get_mut(component) {
                Some(e) => {
                    if t > e.last_t {
                        e.joules += e.last_watts * t.saturating_since(e.last_t).as_secs_f64();
                        e.last_t = t;
                    }
                    e.last_watts = *watts;
                }
                None => {
                    self.energy.insert(
                        component,
                        EnergyModel {
                            last_watts: *watts,
                            last_t: t,
                            joules: 0.0,
                        },
                    );
                }
            },
            TraceEvent::InvariantViolated { .. } => self.invariant_violations += 1,
            TraceEvent::FaultInjected { .. } => self.faults_injected += 1,
            // State transitions and lifecycle events are counted in
            // `by_kind` but carry no windowed aggregate of their own.
            TraceEvent::TcpState { .. }
            | TraceEvent::CwndChange { .. }
            | TraceEvent::SubflowEstablished { .. }
            | TraceEvent::SubflowClosed { .. }
            | TraceEvent::MpPrio { .. }
            | TraceEvent::RrcTransition { .. }
            | TraceEvent::PathUsage { .. } => {}
        }
    }

    fn client(&mut self, conn: u32) -> &mut ClientModel {
        let window = self.cfg.window_bins;
        self.clients
            .entry(conn)
            .or_insert_with(|| ClientModel::new(window))
    }

    /// Total joules integrated across components up to the latest event.
    pub fn total_joules(&self) -> f64 {
        self.energy.values().map(|e| e.joules_at(self.last_t)).sum()
    }

    /// Average joules per delivered bit (0 when either side is zero —
    /// fleet traces carry no energy meter, and an idle meter delivers no
    /// bits worth normalizing by).
    pub fn energy_per_bit(&self) -> f64 {
        let bits = self.delivered_total as f64 * 8.0;
        let joules = self.total_joules();
        if bits > 0.0 && joules > 0.0 {
            joules / bits
        } else {
            0.0
        }
    }

    /// Hottest clients by lifetime delivered bytes (count desc, id asc).
    pub fn top_clients(&self) -> Vec<(u32, &ClientModel)> {
        let mut v: Vec<_> = self.clients.iter().map(|(k, m)| (*k, m)).collect();
        v.sort_by(|a, b| b.1.total_bytes.cmp(&a.1.total_bytes).then(a.0.cmp(&b.0)));
        v.truncate(self.cfg.top_k);
        v
    }

    /// Hottest router ports by drops, then peak queue (desc), key asc.
    pub fn top_ports(&self) -> Vec<((u32, u32), &PortModel)> {
        let mut v: Vec<_> = self.ports.iter().map(|(k, m)| (*k, m)).collect();
        v.sort_by(|a, b| {
            b.1.total_drops
                .cmp(&a.1.total_drops)
                .then(b.1.peak_queue_bytes.cmp(&a.1.peak_queue_bytes))
                .then(a.0.cmp(&b.0))
        });
        v.truncate(self.cfg.top_k);
        v
    }

    /// Number of bins covered so far (for export row counts).
    pub fn bins(&self) -> u64 {
        if self.first_t.is_none() {
            0
        } else {
            self.current_bin() + 1
        }
    }
}

impl ClientModel {
    fn add_bytes(&mut self, bin: u64, bytes: u64) {
        self.total_bytes += bytes;
        self.bytes.add(bin, bytes as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t_ms(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn delivered_events_bin_into_throughput() {
        let mut p = Pipeline::new(PipelineConfig::default());
        p.ingest(
            t_ms(50),
            &TraceEvent::Delivered {
                conn: 1,
                subflow: 0,
                bytes: 1000,
            },
        );
        p.ingest(
            t_ms(150),
            &TraceEvent::Delivered {
                conn: 1,
                subflow: 1,
                bytes: 500,
            },
        );
        assert_eq!(p.delivered_total, 1500);
        assert_eq!(p.throughput.get(0), 1000.0);
        assert_eq!(p.throughput.get(1), 500.0);
        assert_eq!(p.clients[&1].total_bytes, 1500);
        assert_eq!(p.bins(), 2);
    }

    #[test]
    fn energy_integrates_piecewise_constant_power() {
        let mut p = Pipeline::new(PipelineConfig::default());
        p.ingest(
            t_ms(0),
            &TraceEvent::EnergyLevel {
                component: "cell",
                watts: 2.0,
            },
        );
        p.ingest(
            t_ms(500),
            &TraceEvent::EnergyLevel {
                component: "cell",
                watts: 0.5,
            },
        );
        // 2 W for 0.5 s = 1 J closed; plus 0.5 W open interval to last_t
        // (which equals the change time, so nothing extra).
        assert!((p.total_joules() - 1.0).abs() < 1e-12);
        p.ingest(
            t_ms(1500),
            &TraceEvent::RrcTransition {
                from: "Active",
                to: "Tail",
            },
        );
        // Open interval now extends 1 s at 0.5 W.
        assert!((p.total_joules() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn top_clients_rank_by_bytes_then_id() {
        let mut p = Pipeline::new(PipelineConfig {
            top_k: 2,
            ..PipelineConfig::default()
        });
        for (conn, bytes) in [(3u32, 10u64), (1, 50), (2, 50), (9, 5)] {
            p.ingest(
                t_ms(1),
                &TraceEvent::Delivered {
                    conn,
                    subflow: 0,
                    bytes,
                },
            );
        }
        let top: Vec<u32> = p.top_clients().iter().map(|(c, _)| *c).collect();
        assert_eq!(top, vec![1, 2]);
    }

    #[test]
    fn router_events_key_ports() {
        let mut p = Pipeline::new(PipelineConfig::default());
        p.ingest(
            t_ms(1),
            &TraceEvent::RouterDrop {
                router: 0,
                port: 2,
                reason: "queue_full",
            },
        );
        p.ingest(
            t_ms(2),
            &TraceEvent::QueueDepth {
                router: 0,
                port: 2,
                bytes: 75,
                capacity: 100,
            },
        );
        let port = &p.ports[&(0, 2)];
        assert_eq!(port.total_drops, 1);
        assert_eq!(port.drops_by_reason["queue_full"], 1);
        assert_eq!(port.peak_queue_bytes, 75);
        assert_eq!(p.queue_fill.count(), 1);
    }
}
