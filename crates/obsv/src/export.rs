//! Deterministic exports: the pipeline state as time-series JSON and CSV.
//!
//! Determinism contract: the exported bytes are a pure function of the
//! ingested `(t, event)` sequence and the [`PipelineConfig`]. Maps iterate
//! in `BTreeMap` key order, the JSON `Map` preserves the insertion order
//! fixed here, and every float is printed by the same round-trip formatter
//! the trace writer uses — so live tap and replay of the same trace produce
//! byte-identical files, which CI diffs.

use crate::models::{Pipeline, PipelineConfig};
use serde_json::{Map, Value};
use std::fmt::Write as _;

/// Format an f64 exactly as the JSON layer does (`1.0`, not `1`), so CSV
/// and JSON cells agree byte-for-byte.
fn fmt_f64(v: f64) -> String {
    serde_json::to_string(&Value::F64(v)).expect("float serialization is infallible")
}

fn f(v: f64) -> Value {
    Value::F64(v)
}

fn u(v: u64) -> Value {
    Value::U64(v)
}

fn meta_value(p: &Pipeline) -> Value {
    let cfg: &PipelineConfig = p.config();
    let mut m = Map::new();
    m.insert("bin_ns", u(cfg.bin.as_nanos()));
    m.insert("window_bins", u(cfg.window_bins as u64));
    m.insert("top_k", u(cfg.top_k as u64));
    m.insert("events", u(p.events));
    m.insert("bins", u(p.bins()));
    m.insert(
        "first_t_ns",
        p.first_t.map_or(Value::Null, |t| u(t.as_nanos())),
    );
    m.insert("last_t_ns", u(p.last_t.as_nanos()));
    Value::Object(m)
}

fn totals_value(p: &Pipeline) -> Value {
    let mut m = Map::new();
    m.insert("delivered_bytes", u(p.delivered_total));
    let elapsed = p.bins() as f64 * p.bin_secs();
    let mean_mbps = if elapsed > 0.0 {
        p.delivered_total as f64 * 8.0 / elapsed / 1e6
    } else {
        0.0
    };
    m.insert("mean_throughput_mbps", f(mean_mbps));
    m.insert("drops", u(p.drops_series.total() as u64));
    let mut by_reason: std::collections::BTreeMap<&str, u64> = Default::default();
    for port in p.ports.values() {
        for (reason, n) in &port.drops_by_reason {
            *by_reason.entry(reason).or_insert(0) += n;
        }
    }
    let mut reasons = Map::new();
    for (reason, n) in by_reason {
        reasons.insert(reason, u(n));
    }
    m.insert("drops_by_reason", Value::Object(reasons));
    m.insert("retransmits", u(p.retransmits_series.total() as u64));
    m.insert("rtos", u(p.rtos_series.total() as u64));
    m.insert("recoveries", u(p.recoveries_series.total() as u64));
    m.insert("ecn_crossings", {
        u(p.ports.values().map(|port| port.ecn_crossings).sum())
    });
    m.insert("invariant_violations", u(p.invariant_violations));
    m.insert("faults_injected", u(p.faults_injected));
    let mut energy = Map::new();
    for (component, e) in &p.energy {
        energy.insert(*component, f(e.joules_at(p.last_t)));
    }
    m.insert("energy_joules", Value::Object(energy));
    m.insert("energy_total_joules", f(p.total_joules()));
    m.insert("energy_per_bit_j", f(p.energy_per_bit()));
    Value::Object(m)
}

fn series_value(p: &Pipeline) -> Value {
    let bin_ns = p.config().bin.as_nanos();
    let rows = (0..p.bins())
        .map(|bin| {
            let bytes = p.throughput.get(bin);
            let mut row = Map::new();
            row.insert("t_ns", u(bin * bin_ns));
            row.insert("throughput_mbps", f(p.bytes_to_mbps(bytes)));
            row.insert("delivered_bytes", u(bytes as u64));
            row.insert("drops", u(p.drops_series.get(bin) as u64));
            row.insert("retransmits", u(p.retransmits_series.get(bin) as u64));
            row.insert("rtos", u(p.rtos_series.get(bin) as u64));
            row.insert("recoveries", u(p.recoveries_series.get(bin) as u64));
            Value::Object(row)
        })
        .collect();
    Value::Array(rows)
}

fn top_clients_value(p: &Pipeline) -> Value {
    let elapsed = p.bins() as f64 * p.bin_secs();
    let rows = p
        .top_clients()
        .into_iter()
        .map(|(conn, c)| {
            let mut row = Map::new();
            row.insert("conn", u(conn as u64));
            row.insert("delivered_bytes", u(c.total_bytes));
            let mbps = if elapsed > 0.0 {
                c.total_bytes as f64 * 8.0 / elapsed / 1e6
            } else {
                0.0
            };
            row.insert("mean_mbps", f(mbps));
            row.insert("retransmits", u(c.retransmits));
            row.insert("rtos", u(c.rtos));
            row.insert("recoveries", u(c.recoveries));
            let total_picks = c.picks_total();
            let mut shares = Map::new();
            for (sf, n) in &c.picks {
                shares.insert(
                    format!("sf{sf}"),
                    f(if total_picks > 0 {
                        *n as f64 / total_picks as f64
                    } else {
                        0.0
                    }),
                );
            }
            row.insert("pick_share", Value::Object(shares));
            Value::Object(row)
        })
        .collect();
    Value::Array(rows)
}

fn top_ports_value(p: &Pipeline) -> Value {
    let rows = p
        .top_ports()
        .into_iter()
        .map(|((router, port), m)| {
            let mut row = Map::new();
            row.insert("router", u(router as u64));
            row.insert("port", u(port as u64));
            row.insert("drops", u(m.total_drops));
            let mut reasons = Map::new();
            for (reason, n) in &m.drops_by_reason {
                reasons.insert(*reason, u(*n));
            }
            row.insert("drops_by_reason", Value::Object(reasons));
            row.insert("peak_queue_bytes", u(m.peak_queue_bytes));
            row.insert("last_queue_bytes", u(m.queue_bytes));
            row.insert("queue_capacity", u(m.queue_capacity));
            row.insert("ecn_crossings", u(m.ecn_crossings));
            Value::Object(row)
        })
        .collect();
    Value::Array(rows)
}

fn queue_fill_value(p: &Pipeline) -> Value {
    let h = &p.queue_fill;
    let mut m = Map::new();
    m.insert("count", u(h.count()));
    m.insert("mean_pct", f(h.mean()));
    m.insert("p50_pct", f(h.quantile(0.50)));
    m.insert("p90_pct", f(h.quantile(0.90)));
    m.insert("p99_pct", f(h.quantile(0.99)));
    Value::Object(m)
}

/// The full pipeline state as pretty-printed JSON (trailing newline).
pub fn export_json(p: &Pipeline) -> String {
    let mut root = Map::new();
    root.insert("meta", meta_value(p));
    root.insert("totals", totals_value(p));
    let mut kinds = Map::new();
    for (kind, n) in &p.by_kind {
        kinds.insert(*kind, u(*n));
    }
    root.insert("events_by_kind", Value::Object(kinds));
    root.insert("series", series_value(p));
    root.insert("top_clients", top_clients_value(p));
    root.insert("top_ports", top_ports_value(p));
    root.insert("queue_fill_pct", queue_fill_value(p));
    let mut s = serde_json::to_string_pretty(&Value::Object(root))
        .expect("export serialization is infallible");
    s.push('\n');
    s
}

/// The per-bin time series as CSV, one row per bin.
pub fn export_csv(p: &Pipeline) -> String {
    let bin_ns = p.config().bin.as_nanos();
    let mut s = String::from(
        "bin,t_ns,throughput_mbps,delivered_bytes,drops,retransmits,rtos,recoveries\n",
    );
    for bin in 0..p.bins() {
        let bytes = p.throughput.get(bin);
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{}",
            bin,
            bin * bin_ns,
            fmt_f64(p.bytes_to_mbps(bytes)),
            bytes as u64,
            p.drops_series.get(bin) as u64,
            p.retransmits_series.get(bin) as u64,
            p.rtos_series.get(bin) as u64,
            p.recoveries_series.get(bin) as u64,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::PipelineConfig;
    use emptcp_sim::SimTime;
    use emptcp_telemetry::TraceEvent;

    fn sample_pipeline() -> Pipeline {
        let mut p = Pipeline::new(PipelineConfig::default());
        p.ingest(
            SimTime::from_millis(10),
            &TraceEvent::Delivered {
                conn: 2,
                subflow: 0,
                bytes: 125_000,
            },
        );
        p.ingest(
            SimTime::from_millis(120),
            &TraceEvent::RouterDrop {
                router: 0,
                port: 1,
                reason: "queue_full",
            },
        );
        p.ingest(
            SimTime::from_millis(130),
            &TraceEvent::EnergyLevel {
                component: "cell",
                watts: 1.5,
            },
        );
        p
    }

    #[test]
    fn json_export_is_stable() {
        let p = sample_pipeline();
        let a = export_json(&p);
        let b = export_json(&p);
        assert_eq!(a, b);
        assert!(a.contains("\"delivered_bytes\": 125000"));
        assert!(a.contains("\"queue_full\": 1"));
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn csv_has_one_row_per_bin() {
        let p = sample_pipeline();
        let csv = export_csv(&p);
        let lines: Vec<&str> = csv.lines().collect();
        // Header + bins 0 and 1 (last event at 130 ms, 100 ms bins).
        assert_eq!(lines.len(), 1 + 2);
        assert!(lines[0].starts_with("bin,t_ns,"));
        assert!(lines[1].starts_with("0,0,10.0,125000,0,"));
        assert!(lines[2].starts_with("1,100000000,0.0,0,1,"));
    }

    #[test]
    fn empty_pipeline_exports_cleanly() {
        let p = Pipeline::new(PipelineConfig::default());
        let json = export_json(&p);
        assert!(json.contains("\"first_t_ns\": null"));
        assert_eq!(export_csv(&p).lines().count(), 1, "header only");
    }
}
