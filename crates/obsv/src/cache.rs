//! Bounded time-binned caches backing the rolling aggregates.
//!
//! Two shapes, both keyed by an *absolute bin index* (event time divided by
//! the pipeline's bin width):
//!
//! * [`Rolling`] — a fixed-width ring holding the most recent `window` bins
//!   plus a lifetime total. This is what the dashboard sparklines read; its
//!   memory is O(window) regardless of run length.
//! * [`Series`] — the full per-bin history from bin 0, used by the
//!   deterministic time-series exports. Growth is one slot per bin, which
//!   for a minutes-long run at a 100 ms bin is trivially small.
//!
//! Neither cache looks at wall-clock time: bins advance only when an event
//! with a later simulation timestamp arrives, which is what makes a live
//! tap and a trace replay bit-for-bit equivalent.

use std::collections::VecDeque;

/// Ring of the last `window` per-bin sums, plus a lifetime total.
#[derive(Debug, Clone)]
pub struct Rolling {
    window: usize,
    /// Absolute bin index of `bins[0]`; meaningless while `bins` is empty.
    base: u64,
    bins: VecDeque<f64>,
    total: f64,
}

impl Rolling {
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "rolling window must hold at least one bin");
        Rolling {
            window,
            base: 0,
            bins: VecDeque::with_capacity(window),
            total: 0.0,
        }
    }

    /// Add `value` into absolute bin `bin`. Bins in between are materialized
    /// as zeros; bins older than the window are folded into the total only.
    pub fn add(&mut self, bin: u64, value: f64) {
        self.total += value;
        if self.bins.is_empty() {
            self.base = bin;
            self.bins.push_back(0.0);
        }
        while self.base + self.bins.len() as u64 <= bin {
            self.bins.push_back(0.0);
            if self.bins.len() > self.window {
                self.bins.pop_front();
                self.base += 1;
            }
        }
        if bin >= self.base {
            let idx = (bin - self.base) as usize;
            self.bins[idx] += value;
        }
        // else: late event older than the window — kept in `total` only.
    }

    /// Advance the window to cover `bin` without adding anything, so idle
    /// tails render as zeros instead of freezing on the last active bin.
    pub fn advance_to(&mut self, bin: u64) {
        if self.bins.is_empty() {
            return;
        }
        while self.base + self.bins.len() as u64 <= bin {
            self.bins.push_back(0.0);
            if self.bins.len() > self.window {
                self.bins.pop_front();
                self.base += 1;
            }
        }
    }

    /// The windowed values, oldest first.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.bins.iter().copied()
    }

    /// Sum over the current window.
    pub fn window_sum(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Value of the most recent bin (0 when nothing has been recorded).
    pub fn last(&self) -> f64 {
        self.bins.back().copied().unwrap_or(0.0)
    }

    /// Lifetime sum of everything ever added.
    pub fn total(&self) -> f64 {
        self.total
    }

    pub fn window(&self) -> usize {
        self.window
    }
}

/// Full per-bin history from bin 0 (dense; missing bins are zero).
#[derive(Debug, Clone, Default)]
pub struct Series {
    bins: Vec<f64>,
}

impl Series {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, bin: u64, value: f64) {
        let idx = bin as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += value;
    }

    /// Number of bins (highest touched bin + 1).
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    pub fn get(&self, bin: u64) -> f64 {
        self.bins.get(bin as usize).copied().unwrap_or(0.0)
    }

    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.bins.iter().copied()
    }

    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_accumulates_within_bin() {
        let mut r = Rolling::new(4);
        r.add(0, 1.0);
        r.add(0, 2.0);
        assert_eq!(r.last(), 3.0);
        assert_eq!(r.total(), 3.0);
        assert_eq!(r.values().collect::<Vec<_>>(), vec![3.0]);
    }

    #[test]
    fn rolling_materializes_gaps_and_evicts() {
        let mut r = Rolling::new(3);
        r.add(0, 1.0);
        r.add(4, 2.0);
        // Window of 3 covering bins 2..=4.
        assert_eq!(r.values().collect::<Vec<_>>(), vec![0.0, 0.0, 2.0]);
        assert_eq!(r.total(), 3.0, "evicted bins stay in the total");
        assert_eq!(r.window_sum(), 2.0);
    }

    #[test]
    fn rolling_drops_too_old_values_into_total() {
        let mut r = Rolling::new(2);
        r.add(10, 5.0);
        r.add(0, 7.0); // far older than the window
        assert_eq!(r.window_sum(), 5.0);
        assert_eq!(r.total(), 12.0);
    }

    #[test]
    fn rolling_advance_to_pads_zeros() {
        let mut r = Rolling::new(3);
        r.add(0, 9.0);
        r.advance_to(2);
        assert_eq!(r.values().collect::<Vec<_>>(), vec![9.0, 0.0, 0.0]);
        assert_eq!(r.last(), 0.0);
    }

    #[test]
    fn series_is_dense_from_zero() {
        let mut s = Series::new();
        s.add(2, 4.0);
        s.add(0, 1.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1.0, 0.0, 4.0]);
        assert_eq!(s.get(7), 0.0);
        assert_eq!(s.total(), 5.0);
    }
}
