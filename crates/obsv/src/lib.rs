//! `emptcp-obsv` — streaming observability for fleet traces.
//!
//! The pipeline is an ingest → cache → models → export split:
//!
//! * **ingest** ([`PipelineSink`], [`replay`]) — events enter either live,
//!   as a [`TraceSink`](emptcp_telemetry::TraceSink) tapped into a running
//!   simulation, or from a recorded JSONL trace. Nothing buffers the whole
//!   trace; each event is folded into the aggregates and dropped.
//! * **cache** ([`Rolling`], [`Series`]) — bounded per-bin accumulators
//!   advanced by simulation time only.
//! * **models** ([`Pipeline`]) — rolling windowed aggregates keyed by
//!   client, router/port, subflow and energy component: throughput, queue
//!   depth, drop/ECN rates, energy per bit, RTO/recovery counts, scheduler
//!   pick shares.
//! * **export** ([`export_json`], [`export_csv`], [`render`]) — byte-
//!   deterministic time-series files plus a redraw-in-place terminal
//!   dashboard.
//!
//! Determinism contract: pipeline state is a pure function of the ingested
//! `(t, event)` sequence, and the exports are pure functions of pipeline
//! state. A live tap and a replay of the recording made from the same run
//! therefore export byte-identical files — `crates/expr` pins this with a
//! test and CI replays every trace twice and diffs.

pub mod cache;
pub mod dash;
pub mod export;
pub mod ingest;
pub mod models;

pub use cache::{Rolling, Series};
pub use dash::{render, sparkline, Dashboard};
pub use export::{export_csv, export_json};
pub use ingest::{replay, BinObserver, PipelineSink, ReplayStats};
pub use models::{ClientModel, EnergyModel, Pipeline, PipelineConfig, PortModel};
