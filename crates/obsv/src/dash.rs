//! Terminal dashboard: the pipeline state rendered as a fixed-height text
//! panel with sparkline summaries and top-k hot-spot tables.
//!
//! [`render`] is a pure function of the pipeline state (no wall clock, no
//! terminal size probing), so its output is deterministic and testable.
//! [`Dashboard`] adds the in-place redraw: it remembers how many lines it
//! drew and rewinds the cursor with ANSI escapes before drawing again,
//! giving a flicker-free live view on any ANSI terminal.

use crate::models::Pipeline;
use std::fmt::Write as _;

/// Unicode block ramp used for sparklines, thinnest to fullest.
const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render `values` as a fixed-width sparkline scaled to its own maximum.
/// All-zero input renders as all-minimum bars, and the series is left-padded
/// with spaces so recent values stay right-aligned.
pub fn sparkline(values: &[f64], width: usize) -> String {
    let mut out = String::with_capacity(width * 3);
    let shown: Vec<f64> = if values.len() > width {
        values[values.len() - width..].to_vec()
    } else {
        values.to_vec()
    };
    for _ in shown.len()..width {
        out.push(' ');
    }
    let max = shown.iter().cloned().fold(0.0_f64, f64::max);
    for v in shown {
        if max <= 0.0 {
            out.push(RAMP[0]);
        } else {
            let idx = ((v / max) * (RAMP.len() - 1) as f64).round() as usize;
            out.push(RAMP[idx.min(RAMP.len() - 1)]);
        }
    }
    out
}

fn human_bytes(b: u64) -> String {
    match b {
        0..=9_999 => format!("{b} B"),
        10_000..=9_999_999 => format!("{:.1} KiB", b as f64 / 1024.0),
        _ => format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0)),
    }
}

/// Render the full dashboard panel. Deterministic for a given pipeline
/// state; ends with a trailing newline.
pub fn render(p: &Pipeline) -> String {
    const SPARK_W: usize = 40;
    let mut s = String::new();
    let elapsed_s = p.last_t.as_secs_f64();
    let _ = writeln!(
        s,
        "fleet monitor · t={elapsed_s:>8.3}s · events={} · clients={} · ports={}",
        p.events,
        p.clients.len(),
        p.ports.len()
    );

    let tput: Vec<f64> = p.throughput_window.values().collect();
    let window_bytes = p.throughput_window.window_sum();
    let window_secs = p.throughput_window.window() as f64 * p.bin_secs();
    let window_mbps = window_bytes * 8.0 / window_secs / 1e6;
    let _ = writeln!(
        s,
        "  throughput {} {:>8.2} Mbps (window) · {} total",
        sparkline(&tput, SPARK_W),
        window_mbps,
        human_bytes(p.delivered_total),
    );

    let drops: Vec<f64> = (0..p.bins()).map(|b| p.drops_series.get(b)).collect();
    let _ = writeln!(
        s,
        "  drops      {} {:>8} total · {} retransmits · {} RTOs · {} recoveries",
        sparkline(&drops, SPARK_W),
        p.drops_series.total() as u64,
        p.retransmits_series.total() as u64,
        p.rtos_series.total() as u64,
        p.recoveries_series.total() as u64,
    );

    if p.queue_fill.count() > 0 {
        let _ = writeln!(
            s,
            "  queue fill p50={:>5.1}% p90={:>5.1}% p99={:>5.1}% ({} ECN crossings)",
            p.queue_fill.quantile(0.50).min(100.0),
            p.queue_fill.quantile(0.90).min(100.0),
            p.queue_fill.quantile(0.99).min(100.0),
            p.ports.values().map(|m| m.ecn_crossings).sum::<u64>(),
        );
    }
    if !p.energy.is_empty() {
        let mut parts = Vec::new();
        for (component, e) in &p.energy {
            parts.push(format!("{component}={:.3} J", e.joules_at(p.last_t)));
        }
        let epb = p.energy_per_bit();
        let _ = writeln!(
            s,
            "  energy     {} · {:.3} nJ/bit",
            parts.join(" · "),
            epb * 1e9,
        );
    }

    let top = p.top_clients();
    if !top.is_empty() {
        let _ = writeln!(s, "  hot clients (by delivered bytes):");
        for (conn, c) in top {
            let spark: Vec<f64> = c.bytes.values().collect();
            let picks = c.picks_total();
            let share = c
                .picks
                .iter()
                .map(|(sf, n)| format!("sf{sf}:{:.0}%", *n as f64 * 100.0 / picks.max(1) as f64))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                s,
                "    conn{conn:<4} {} {:>10} · rtx={} rto={} rec={}{}",
                sparkline(&spark, 20),
                human_bytes(c.total_bytes),
                c.retransmits,
                c.rtos,
                c.recoveries,
                if share.is_empty() {
                    String::new()
                } else {
                    format!(" · picks {share}")
                },
            );
        }
    }

    let hot_ports = p.top_ports();
    if !hot_ports.is_empty() {
        let _ = writeln!(s, "  hot ports (by drops):");
        for ((router, port), m) in hot_ports {
            let reasons = m
                .drops_by_reason
                .iter()
                .map(|(r, n)| format!("{r}={n}"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                s,
                "    router{router}.port{port} drops={:<6} peak_queue={} ecn={}{}",
                m.total_drops,
                human_bytes(m.peak_queue_bytes),
                m.ecn_crossings,
                if reasons.is_empty() {
                    String::new()
                } else {
                    format!(" · {reasons}")
                },
            );
        }
    }
    if p.invariant_violations > 0 || p.faults_injected > 0 {
        let _ = writeln!(
            s,
            "  !! invariant_violations={} faults_injected={}",
            p.invariant_violations, p.faults_injected
        );
    }
    s
}

/// In-place redraw driver: each [`draw`](Dashboard::draw) rewinds over the
/// previous frame (ANSI cursor-up + clear-to-end) and prints the new one.
#[derive(Debug, Default)]
pub struct Dashboard {
    lines_drawn: usize,
}

impl Dashboard {
    pub fn new() -> Self {
        Self::default()
    }

    /// Draw `frame` over the previous frame on `out`.
    pub fn draw(&mut self, out: &mut impl std::io::Write, frame: &str) -> std::io::Result<()> {
        if self.lines_drawn > 0 {
            // Cursor up over the old frame, then clear to end of screen.
            write!(out, "\x1b[{}A\x1b[J", self.lines_drawn)?;
        }
        out.write_all(frame.as_bytes())?;
        out.flush()?;
        self.lines_drawn = frame.lines().count();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::PipelineConfig;
    use emptcp_sim::SimTime;
    use emptcp_telemetry::TraceEvent;

    #[test]
    fn sparkline_scales_and_pads() {
        assert_eq!(sparkline(&[], 4), "    ");
        assert_eq!(sparkline(&[0.0, 0.0], 4), "  ▁▁");
        let s = sparkline(&[1.0, 8.0], 2);
        assert_eq!(s.chars().count(), 2);
        assert!(s.ends_with('█'));
        // Longer than width: keeps the most recent values.
        let s = sparkline(&[9.0, 0.0, 0.0], 2);
        assert_eq!(s, "▁▁");
    }

    #[test]
    fn render_is_deterministic_and_mentions_hot_spots() {
        let mut p = Pipeline::new(PipelineConfig::default());
        p.ingest(
            SimTime::from_millis(50),
            &TraceEvent::Delivered {
                conn: 7,
                subflow: 1,
                bytes: 50_000,
            },
        );
        p.ingest(
            SimTime::from_millis(60),
            &TraceEvent::RouterDrop {
                router: 1,
                port: 0,
                reason: "channel",
            },
        );
        let a = render(&p);
        assert_eq!(a, render(&p));
        assert!(a.contains("conn7"));
        assert!(a.contains("router1.port0"));
        assert!(a.contains("channel=1"));
    }

    #[test]
    fn dashboard_rewinds_between_frames() {
        let mut buf = Vec::new();
        let mut dash = Dashboard::new();
        dash.draw(&mut buf, "one\ntwo\n").unwrap();
        dash.draw(&mut buf, "three\n").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("one\ntwo\n"));
        assert!(
            text.contains("\x1b[2A\x1b[J"),
            "second frame rewinds 2 lines"
        );
        assert!(text.ends_with("three\n"));
    }
}
