//! Machine-readable benchmark snapshots and the regression gate.
//!
//! `bench snapshot` measures two metric families and writes them to
//! `BENCH.json`:
//!
//! * **exhibits** — wall-clock milliseconds to regenerate each paper
//!   table/figure at quick scale, serially (same code paths as
//!   `repro --quick`, one entry per runner job, so the merged
//!   `fig16+fig14` job is one metric);
//! * **micro** — median nanoseconds per iteration of the hot-path
//!   building blocks (event queue, RNG, EIB lookup, predictor update,
//!   scheduler decision, an end-to-end transfer);
//! * **rates** — higher-is-better throughput figures, currently
//!   `sim_pkts_per_sec`: packets the sharded fleet engine forwards per
//!   wall-clock second (the fleet-scale headline number).
//!
//! Raw wall-clock numbers are not comparable across machines, so every
//! snapshot also records a **calibration** measurement: the median time
//! of a fixed pure-integer workload that never changes with the code
//! under test. [`compare`] divides each metric by its snapshot's
//! calibration before forming the new/baseline ratio, which cancels
//! most machine-speed differences. The default tolerance still leaves
//! 2x of headroom for scheduler noise and microarchitectural spread —
//! the gate is meant to catch order-of-magnitude regressions (an
//! accidentally quadratic loop, a lost `--release`), not 10% drift.

use emptcp_expr::figures::Config;
use emptcp_expr::repro::{self, ReproOptions};
use emptcp_expr::runner::Runner;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Format version of `BENCH.json`. Bumped to 2 when the higher-is-better
/// `rates` family joined the snapshot (schema-1 files parse with an empty
/// family, so a stale baseline reads as "rates missing", not a crash).
pub const SCHEMA: u32 = 2;

/// Ratio past which a normalized metric counts as a regression.
pub const DEFAULT_TOLERANCE: f64 = 2.0;

/// One benchmark snapshot, as serialized to `BENCH.json`.
#[derive(Clone, Debug, Serialize)]
pub struct Snapshot {
    /// Format version ([`SCHEMA`]).
    pub schema: u32,
    /// Median nanoseconds of the fixed calibration workload on the
    /// machine that took the snapshot.
    pub calibration_ns: f64,
    /// Wall-clock milliseconds per exhibit job, quick scale, serial.
    pub exhibits: BTreeMap<String, f64>,
    /// Median nanoseconds per iteration of each micro-benchmark.
    pub micro: BTreeMap<String, f64>,
    /// Higher-is-better throughput metrics (units per wall second); the
    /// regression gate inverts the ratio for this family.
    pub rates: BTreeMap<String, f64>,
}

// Hand-rolled so a schema-1 baseline (no `rates` key) still parses, with
// the family defaulting to empty.
impl serde::Deserialize for Snapshot {
    fn from_value(v: &serde::Value) -> Result<Snapshot, serde::Error> {
        let serde::Value::Object(m) = v else {
            return Err(serde::Error::new(format!(
                "expected object for Snapshot, got {v:?}"
            )));
        };
        let field = |name: &str| m.get(name).unwrap_or(&serde::Value::Null);
        Ok(Snapshot {
            schema: serde::Deserialize::from_value(field("schema"))?,
            calibration_ns: serde::Deserialize::from_value(field("calibration_ns"))?,
            exhibits: serde::Deserialize::from_value(field("exhibits"))?,
            micro: serde::Deserialize::from_value(field("micro"))?,
            rates: match field("rates") {
                serde::Value::Null => BTreeMap::new(),
                other => serde::Deserialize::from_value(other)?,
            },
        })
    }
}

/// Outcome of comparing a fresh snapshot against a baseline.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// `metric: baseline -> new (ratio)` lines past tolerance.
    pub regressions: Vec<String>,
    /// Metrics that got at least `1/tolerance` faster (informational).
    pub improvements: Vec<String>,
    /// Metrics in the baseline but absent from the fresh snapshot.
    pub missing: Vec<String>,
    /// Metrics in the fresh snapshot but absent from the baseline.
    pub added: Vec<String>,
}

impl Comparison {
    /// True when the gate should fail: a metric regressed or vanished.
    pub fn failed(&self) -> bool {
        !self.regressions.is_empty() || !self.missing.is_empty()
    }
}

/// Median of timing `f` for `iters` iterations, `samples` times over.
/// Returns nanoseconds per iteration.
pub fn time_median_ns(samples: usize, iters: u32, mut f: impl FnMut()) -> f64 {
    assert!(samples > 0 && iters > 0);
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// The fixed calibration workload: integer multiply-xor chain, long
/// enough to dominate timer overhead, independent of the code under
/// test. Returns its median nanoseconds.
pub fn calibrate() -> f64 {
    time_median_ns(9, 50, || {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..20_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            x ^= x >> 29;
        }
        std::hint::black_box(x);
    })
}

fn micro_benches() -> BTreeMap<String, f64> {
    use emptcp::predictor::HoltWinters;
    use emptcp::{EmptcpConfig, PathUsageController};
    use emptcp_energy::{Eib, EnergyModel};
    use emptcp_expr::scenario::{Scenario, Workload};
    use emptcp_expr::{host, Strategy};
    use emptcp_sim::{EventQueue, SimDuration, SimRng, SimTime};
    use std::hint::black_box;

    let mut micro = BTreeMap::new();

    let mut q: EventQueue<u64> = EventQueue::new();
    let mut t = 0u64;
    micro.insert(
        "event_queue_push_pop".to_string(),
        time_median_ns(9, 200_000, || {
            t += 1;
            q.schedule(SimTime::from_nanos(t * 1000), t);
            if t.is_multiple_of(2) {
                black_box(q.pop());
            }
        }),
    );

    let mut q: EventQueue<u64> = EventQueue::new();
    let mut t = 0u64;
    micro.insert(
        "event_queue_schedule_cancel".to_string(),
        time_median_ns(9, 200_000, || {
            t += 1;
            let h = q.schedule(SimTime::from_nanos(t * 1000), t);
            q.cancel(black_box(h));
        }),
    );

    // The host-timer pattern: cancel the previous deadline and arm a
    // replacement on every iteration, with pops dragging the wheel cursor
    // so re-arms land across slot and level seams, not one hot slot.
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut t = 0u64;
    let mut armed = q.schedule(SimTime::from_nanos(1_000), 0);
    micro.insert(
        "timing_wheel_rearm".to_string(),
        time_median_ns(9, 200_000, || {
            t += 1;
            q.cancel(armed);
            armed = q.schedule(SimTime::from_nanos(t * 1_000 + 500_000), t);
            if t.is_multiple_of(8) {
                black_box(q.pop());
            }
        }),
    );

    // Steady-state segment parking: one insert + take round trip, which
    // after warm-up recycles a single slot without touching the allocator.
    {
        use emptcp_tcp::{Segment, SegmentSlab};
        let mut slab = SegmentSlab::new();
        let mut p = 0u32;
        micro.insert(
            "segment_slab_recycle".to_string(),
            time_median_ns(9, 500_000, || {
                p = p.wrapping_add(1);
                let mut seg = Segment::empty(SimTime::ZERO);
                seg.payload = p;
                let r = slab.insert(seg);
                black_box(slab.take(r));
            }),
        );
    }

    let mut rng = SimRng::new(crate::BENCH_SEED);
    micro.insert(
        "rng_exponential".to_string(),
        time_median_ns(9, 500_000, || {
            black_box(rng.exponential(0.05));
        }),
    );

    let mut hw = HoltWinters::new(0.4, 0.2);
    let mut x = 1.0;
    micro.insert(
        "holt_winters_observe".to_string(),
        time_median_ns(9, 500_000, || {
            x = (x * 1.1) % 20.0;
            hw.observe(black_box(x));
            black_box(hw.forecast());
        }),
    );

    let model = EnergyModel::galaxy_s3_lte();
    let eib = Eib::generate_default(&model);
    let mut w = 0.1;
    micro.insert(
        "eib_lookup_choose".to_string(),
        time_median_ns(9, 200_000, || {
            w = (w + 0.37) % 12.0;
            black_box(eib.choose(black_box(w), black_box(4.0)));
        }),
    );

    let mut ctl = PathUsageController::new(EmptcpConfig::default().controller);
    let mut w = 0.1;
    let mut now = SimTime::ZERO;
    micro.insert(
        "controller_decide".to_string(),
        time_median_ns(9, 200_000, || {
            w = (w + 0.29) % 10.0;
            now += SimDuration::from_secs(5);
            black_box(ctl.decide(now, &eib, black_box(w), black_box(3.0)));
        }),
    );

    micro.insert(
        "end_to_end_4mb_download".to_string(),
        time_median_ns(3, 1, || {
            let mut s = Scenario::static_good_wifi();
            s.workload = Workload::Download { size: 4 << 20 };
            black_box(host::run(s, Strategy::TcpWifi, crate::BENCH_SEED));
        }),
    );

    micro.insert(
        "end_to_end_4mb_emptcp".to_string(),
        time_median_ns(3, 1, || {
            let mut s = Scenario::static_bad_wifi();
            s.workload = Workload::Download { size: 4 << 20 };
            black_box(host::run(s, Strategy::emptcp_default(), crate::BENCH_SEED));
        }),
    );

    {
        use emptcp_net::{NodeId, Port, PortOutcome};
        use emptcp_phy::LinkConfig;
        use emptcp_telemetry::Telemetry;
        let mut port = Port::new(
            NodeId(0),
            NodeId(1),
            LinkConfig {
                rate_bps: 1_000_000_000,
                prop_delay: SimDuration::from_micros(50),
                queue_capacity: 256 * 1024,
                loss_prob: 0.0,
            },
        );
        let scope = Telemetry::disabled().scope(0);
        let mut rng = SimRng::new(crate::BENCH_SEED);
        let mut now = SimTime::ZERO;
        micro.insert(
            "router_enqueue".to_string(),
            time_median_ns(9, 200_000, || {
                // Offered just under line rate, so the queue breathes
                // around the ECN threshold instead of saturating.
                now += SimDuration::from_micros(13);
                black_box(port.transmit(now, 1500, &mut rng, 0, 0, &scope));
            }),
        );
        // Keep the outcome type alive for the optimizer.
        black_box(matches!(
            port.transmit(now, 1, &mut rng, 0, 0, &scope),
            PortOutcome::Forwarded { .. }
        ));
    }

    {
        use emptcp_net::{FleetConfig, FleetSim};
        micro.insert(
            "fabric_fleet".to_string(),
            time_median_ns(5, 1, || {
                let mut cfg = FleetConfig::contended(8, crate::BENCH_SEED);
                cfg.duration = SimDuration::from_secs(2);
                black_box(FleetSim::new(cfg).run());
            }),
        );
    }

    {
        // The same fleet with telemetry enabled but discarding events
        // (NullSink): the delta against `fabric_fleet` is the pre-existing
        // cost of the telemetry machinery itself (event construction,
        // metric updates), independent of this tap.
        use emptcp_net::{FleetConfig, FleetSim};
        use emptcp_obsv::{Pipeline, PipelineConfig, PipelineSink};
        use emptcp_telemetry::Telemetry;
        use std::sync::{Arc, Mutex};
        micro.insert(
            "fabric_fleet_traced_null".to_string(),
            time_median_ns(5, 1, || {
                let telemetry = Telemetry::builder().build();
                let mut cfg = FleetConfig::contended(8, crate::BENCH_SEED);
                cfg.duration = SimDuration::from_secs(2);
                black_box(FleetSim::new_with_telemetry(cfg, telemetry).run());
            }),
        );

        // The same fleet with the streaming observability tap attached —
        // the delta against `fabric_fleet_traced_null` is the cost of live
        // ingest (events folded into rolling aggregates), which is the
        // overhead the tap itself adds to an already-instrumented run.
        micro.insert(
            "fabric_fleet_monitored".to_string(),
            time_median_ns(5, 1, || {
                let pipeline = Arc::new(Mutex::new(Pipeline::new(PipelineConfig::default())));
                let telemetry = Telemetry::builder()
                    .sink(Box::new(PipelineSink::new(pipeline)))
                    .build();
                let mut cfg = FleetConfig::contended(8, crate::BENCH_SEED);
                cfg.duration = SimDuration::from_secs(2);
                black_box(FleetSim::new_with_telemetry(cfg, telemetry).run());
            }),
        );
    }

    {
        // `.scenario` parse + validate, one corpus file per iteration:
        // the loader runs once per scenario at CLI startup and corpus
        // replay, so it must stay microseconds, not milliseconds.
        use emptcp_scenario::{corpus, io};
        let host_text = corpus::raw("ap-vanish").expect("corpus entry");
        let fleet_text = corpus::raw("fleet-contended").expect("corpus entry");
        let mut flip = false;
        micro.insert(
            "scenario_parse_load".to_string(),
            time_median_ns(9, 2_000, || {
                flip = !flip;
                let text = if flip { host_text } else { fleet_text };
                black_box(io::from_json_str(black_box(text)).expect("corpus parses"));
            }),
        );
    }

    {
        // One frame through the duplex transport: encode, shape, queue,
        // dequeue, decode — the per-segment cost the live backend adds on
        // top of the protocol cores.
        use emptcp_live::ChaosPath;
        use emptcp_live::{DuplexTransport, Transport};
        use emptcp_tcp::Segment;
        let mut t = DuplexTransport::new(
            crate::BENCH_SEED,
            vec![ChaosPath::new(0.0, SimDuration::ZERO, 0)],
        );
        let mut seg = Segment::empty(SimTime::ZERO);
        seg.payload = 1428;
        let mut now = SimTime::ZERO;
        micro.insert(
            "live_duplex_echo".to_string(),
            time_median_ns(9, 100_000, || {
                now += SimDuration::from_micros(10);
                t.send(now, 0, 0, black_box(&seg));
                black_box(t.poll_recv(now).expect("frame crossed"));
            }),
        );
    }

    {
        // One quiescent reactor iteration on the wall path: deadline
        // sweep, clock-driven side-effect replay, transmit drain — the
        // per-tick floor of a live connection that has nothing to do.
        use emptcp_live::ChaosPath;
        use emptcp_live::{ConnWorker, DuplexTransport, Reactor};
        use emptcp_mptcp::{MpConnection, Role};
        use emptcp_phy::IfaceKind;
        use emptcp_tcp::TcpConfig;
        let paths = vec![
            ChaosPath::new(0.0, SimDuration::from_millis(1), 0),
            ChaosPath::new(0.0, SimDuration::from_millis(1), 0),
        ];
        let mut conn = MpConnection::new(Role::Client, TcpConfig::default());
        conn.add_subflow(SimTime::ZERO, IfaceKind::Wifi);
        conn.add_subflow(SimTime::ZERO, IfaceKind::CellularLte);
        let mut reactor = Reactor::new(
            emptcp_live::ClockSource::scripted(),
            DuplexTransport::new(crate::BENCH_SEED, paths),
        );
        reactor.register(ConnWorker::new(conn, 0));
        let mut ticks = 0u64;
        micro.insert(
            "live_reactor_tick".to_string(),
            time_median_ns(9, 100_000, || {
                ticks += 1;
                // A done-immediately run executes exactly the prologue:
                // fault poll + transmit drain over every worker.
                black_box(reactor.run_until(|_| true));
            }),
        );
        black_box(ticks);
    }

    {
        // Pure pipeline ingest: one representative event folded into the
        // rolling aggregates (the per-event cost of the live tap).
        use emptcp_obsv::{Pipeline, PipelineConfig};
        use emptcp_telemetry::TraceEvent;
        let mut pipeline = Pipeline::new(PipelineConfig::default());
        let ev = TraceEvent::Delivered {
            conn: 3,
            subflow: 1,
            bytes: 64 * 1024,
        };
        let mut t_ns = 0u64;
        micro.insert(
            "obsv_ingest_event".to_string(),
            time_median_ns(9, 200_000, || {
                t_ns += 100_000;
                pipeline.ingest(SimTime::from_nanos(t_ns), black_box(&ev));
            }),
        );
        black_box(pipeline.events);
    }

    micro
}

fn rate_benches() -> BTreeMap<String, f64> {
    use emptcp_net::{FleetConfig, ShardedFleetSim};
    use emptcp_sim::SimDuration;
    let mut rates = BTreeMap::new();
    // Simulator throughput: packets the sharded fleet engine forwards per
    // wall-clock second, on a contended 64-client fleet split 4 ways. The
    // packet count is deterministic (it is part of the FleetReport); only
    // the wall clock varies, so the best of three runs is the measurement
    // least polluted by scheduler noise.
    let mut cfg = FleetConfig::contended(64, crate::BENCH_SEED);
    cfg.duration = SimDuration::from_secs(2);
    let mut best = 0.0f64;
    for _ in 0..3 {
        let mut sim = ShardedFleetSim::new(cfg.clone(), 4);
        let start = Instant::now();
        let report = sim.run();
        let secs = start.elapsed().as_secs_f64();
        if secs > 0.0 {
            best = best.max(report.packets_forwarded as f64 / secs);
        }
    }
    rates.insert("sim_pkts_per_sec".to_string(), best);

    // Live-backend goodput: a full scripted transfer through the reactor
    // and duplex transport (codec and shaping included), in delivered
    // bytes per wall-clock second. The decision log is deterministic;
    // only the wall clock varies, so best-of-three again.
    {
        use emptcp_live::{run_script, Backend, ParityScript};
        let script = ParityScript::two_path(crate::BENCH_SEED, 4 << 20);
        let mut best = 0.0f64;
        for _ in 0..3 {
            let start = Instant::now();
            let out = run_script(Backend::Live, &script);
            let secs = start.elapsed().as_secs_f64();
            if secs > 0.0 {
                best = best.max(out.delivered as f64 / secs);
            }
        }
        rates.insert("live_duplex_bytes_per_sec".to_string(), best);
    }
    rates
}

fn exhibit_benches(out_dir: &std::path::Path) -> std::io::Result<BTreeMap<String, f64>> {
    let ids: Vec<String> = repro::IDS.iter().map(|s| s.to_string()).collect();
    let opts = ReproOptions {
        cfg: Config::quick(),
        out_dir: out_dir.to_path_buf(),
        trace: false,
        trace_path: None,
    };
    // Serial on purpose: per-job wall times are only stable when jobs
    // don't contend for cores.
    let reports = Runner::serial().install(|| repro::run_exhibits(&ids, &opts))?;
    Ok(reports
        .iter()
        .map(|r| (r.ids.join("+"), r.wall_s * 1e3))
        .collect())
}

/// Measure everything and assemble a [`Snapshot`]. Exhibit outputs are
/// written to `scratch_dir` (they are a side effect, not the product).
pub fn collect(scratch_dir: &std::path::Path) -> std::io::Result<Snapshot> {
    Ok(Snapshot {
        schema: SCHEMA,
        calibration_ns: calibrate(),
        exhibits: exhibit_benches(scratch_dir)?,
        micro: micro_benches(),
        rates: rate_benches(),
    })
}

/// Which way a metric family points: `Time` regresses when the new value
/// grows, `Rate` regresses when it shrinks.
#[derive(Clone, Copy)]
enum Direction {
    Time,
    Rate,
}

fn compare_family(
    family: &str,
    direction: Direction,
    base: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    scale: f64,
    tolerance: f64,
    out: &mut Comparison,
) {
    for (name, &base_val) in base {
        let metric = format!("{family}.{name}");
        match fresh.get(name) {
            None => out.missing.push(metric),
            Some(&new_val) if base_val > 0.0 && new_val > 0.0 => {
                // Both ratios are "worseness": >1 means the fresh snapshot
                // is slower. A rate on a 2x-slower machine is expected to
                // halve, and `scale` (base_calib/fresh_calib) halves too,
                // so the same factor normalizes both directions.
                let ratio = match direction {
                    Direction::Time => (new_val / base_val) * scale,
                    Direction::Rate => (base_val / new_val) * scale,
                };
                let line =
                    format!("{metric}: {base_val:.1} -> {new_val:.1} (x{ratio:.2} normalized)");
                if ratio > tolerance {
                    out.regressions.push(line);
                } else if ratio < 1.0 / tolerance {
                    out.improvements.push(line);
                }
            }
            Some(_) => {}
        }
    }
    for name in fresh.keys() {
        if !base.contains_key(name) {
            out.added.push(format!("{family}.{name}"));
        }
    }
}

/// Compare a fresh snapshot against the committed baseline. Each ratio
/// is normalized by the two snapshots' calibration measurements before
/// the tolerance test, so a slower CI machine doesn't read as a
/// regression.
pub fn compare(base: &Snapshot, fresh: &Snapshot, tolerance: f64) -> Comparison {
    assert!(tolerance > 1.0, "tolerance must exceed 1.0");
    // new_val/new_calib vs base_val/base_calib, rearranged so the
    // per-metric loop does one multiply.
    let scale = if fresh.calibration_ns > 0.0 && base.calibration_ns > 0.0 {
        base.calibration_ns / fresh.calibration_ns
    } else {
        1.0
    };
    let mut out = Comparison::default();
    compare_family(
        "exhibits",
        Direction::Time,
        &base.exhibits,
        &fresh.exhibits,
        scale,
        tolerance,
        &mut out,
    );
    compare_family(
        "micro",
        Direction::Time,
        &base.micro,
        &fresh.micro,
        scale,
        tolerance,
        &mut out,
    );
    compare_family(
        "rates",
        Direction::Rate,
        &base.rates,
        &fresh.rates,
        scale,
        tolerance,
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(calib: f64, pairs: &[(&str, f64)]) -> Snapshot {
        Snapshot {
            schema: SCHEMA,
            calibration_ns: calib,
            exhibits: BTreeMap::new(),
            micro: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            rates: BTreeMap::new(),
        }
    }

    fn rate_snap(calib: f64, pairs: &[(&str, f64)]) -> Snapshot {
        Snapshot {
            schema: SCHEMA,
            calibration_ns: calib,
            exhibits: BTreeMap::new(),
            micro: BTreeMap::new(),
            rates: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn identical_snapshots_pass() {
        let s = snap(100.0, &[("a", 10.0), ("b", 2000.0)]);
        let cmp = compare(&s, &s, DEFAULT_TOLERANCE);
        assert!(!cmp.failed(), "{cmp:?}");
        assert!(cmp.improvements.is_empty());
    }

    #[test]
    fn large_regression_fails() {
        let base = snap(100.0, &[("a", 10.0)]);
        let fresh = snap(100.0, &[("a", 25.0)]);
        let cmp = compare(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(cmp.regressions.len(), 1, "{cmp:?}");
        assert!(cmp.failed());
    }

    #[test]
    fn calibration_excuses_a_slow_machine() {
        // Metric 3x slower, but the machine itself measured 3x slower:
        // normalized ratio is 1.0.
        let base = snap(100.0, &[("a", 10.0)]);
        let fresh = snap(300.0, &[("a", 30.0)]);
        let cmp = compare(&base, &fresh, DEFAULT_TOLERANCE);
        assert!(!cmp.failed(), "{cmp:?}");
    }

    #[test]
    fn missing_metric_fails_and_added_is_informational() {
        let base = snap(100.0, &[("gone", 10.0)]);
        let fresh = snap(100.0, &[("new", 10.0)]);
        let cmp = compare(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(cmp.missing, vec!["micro.gone"]);
        assert_eq!(cmp.added, vec!["micro.new"]);
        assert!(cmp.failed());
    }

    #[test]
    fn improvements_are_reported() {
        let base = snap(100.0, &[("a", 100.0)]);
        let fresh = snap(100.0, &[("a", 10.0)]);
        let cmp = compare(&base, &fresh, DEFAULT_TOLERANCE);
        assert!(!cmp.failed());
        assert_eq!(cmp.improvements.len(), 1);
    }

    #[test]
    fn rate_regressions_invert_the_ratio() {
        // Rate halved on the same machine: 2x worse, at the gate's edge —
        // push slightly past to trip it.
        let base = rate_snap(100.0, &[("pkts", 1000.0)]);
        let fresh = rate_snap(100.0, &[("pkts", 450.0)]);
        let cmp = compare(&base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(cmp.regressions.len(), 1, "{cmp:?}");
        // Rate doubled-plus: an improvement, not a regression.
        let faster = rate_snap(100.0, &[("pkts", 2500.0)]);
        let cmp = compare(&base, &faster, DEFAULT_TOLERANCE);
        assert!(!cmp.failed(), "{cmp:?}");
        assert_eq!(cmp.improvements.len(), 1);
    }

    #[test]
    fn calibration_excuses_a_slow_machine_for_rates_too() {
        // Machine 3x slower (calibration 3x bigger), rate 3x smaller:
        // normalized ratio is 1.0.
        let base = rate_snap(100.0, &[("pkts", 900.0)]);
        let fresh = rate_snap(300.0, &[("pkts", 300.0)]);
        let cmp = compare(&base, &fresh, DEFAULT_TOLERANCE);
        assert!(!cmp.failed(), "{cmp:?}");
    }

    #[test]
    fn schema_one_baselines_parse_without_rates() {
        let old = r#"{"schema":1,"calibration_ns":100.0,"exhibits":{},"micro":{"a":1.0}}"#;
        let snap: Snapshot = serde_json::from_str(old).expect("schema-1 parses");
        assert!(snap.rates.is_empty());
        // A fresh snapshot's rates then surface as "added", not a crash.
        let fresh = rate_snap(100.0, &[("pkts", 10.0)]);
        let cmp = compare(&snap, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(cmp.added, vec!["rates.pkts"]);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let s = snap(123.5, &[("a", 10.25)]);
        let text = serde_json::to_string_pretty(&s).unwrap();
        let back: Snapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back.schema, SCHEMA);
        assert_eq!(back.calibration_ns, 123.5);
        assert_eq!(back.micro["a"], 10.25);
    }

    #[test]
    fn calibration_is_stable_enough() {
        let a = calibrate();
        let b = calibrate();
        assert!(a > 0.0 && b > 0.0);
        let ratio = if a > b { a / b } else { b / a };
        assert!(ratio < 1.5, "calibration medians diverged: {a} vs {b}");
    }
}
