#![warn(missing_docs)]
//! Criterion benchmark crate for the eMPTCP reproduction.
//!
//! Two families of benches live under `benches/`:
//!
//! * `figures.rs` — one benchmark per paper table/figure, timing the
//!   regeneration of each exhibit at [`emptcp_expr::figures::Config::quick`]
//!   scale (same code paths as the full-scale `repro` binary);
//! * `hotpaths.rs` — micro-benchmarks of the algorithmic building blocks:
//!   Holt-Winters updates, EIB generation and lookup, the minRTT scheduler
//!   decision, LIA alpha, SACK processing and raw simulator throughput;
//! * `ablations.rs` — design-choice ablations called out in DESIGN.md:
//!   coupled vs uncoupled congestion control, hysteresis on/off, resume
//!   tweaks on/off.
//!
//! The [`snapshot`] module plus the `bench` binary turn a subset of these
//! measurements into the machine-readable `BENCH.json` regression gate:
//! `bench snapshot` writes a fresh snapshot, `bench snapshot --check`
//! compares against the committed baseline and fails on regressions
//! beyond tolerance (normalized by a per-machine calibration loop).

pub mod snapshot;

pub use emptcp_expr::figures::Config;

/// The seed all benches run with, so numbers are comparable across runs.
pub const BENCH_SEED: u64 = 0xBE7C4;
