//! Benchmark snapshots and the regression gate.
//!
//! ```text
//! bench snapshot                    measure and write BENCH.json
//! bench snapshot --out fresh.json   write elsewhere
//! bench snapshot --check            measure, compare against BENCH.json,
//!                                   exit 1 past tolerance
//! bench snapshot --check --baseline BENCH.json --tolerance 2.5
//! ```
//!
//! A snapshot regenerates every exhibit at quick scale (serially, so
//! per-exhibit wall times don't contend) and medians the hot-path
//! micro-benchmarks, all normalized at compare time by a fixed
//! calibration workload recorded in the file. See
//! `emptcp_bench::snapshot` for the format and the normalization math.

use emptcp_bench::snapshot::{self, DEFAULT_TOLERANCE};
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: bench snapshot [--check] [--baseline PATH] [--out PATH] [--tolerance X]");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    match it.next().as_deref() {
        Some("snapshot") => {}
        _ => usage(),
    }
    let mut check = false;
    let mut baseline = PathBuf::from("BENCH.json");
    let mut out: Option<PathBuf> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--baseline" => {
                baseline = PathBuf::from(it.next().unwrap_or_else(|| usage()));
            }
            "--out" => out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t > 1.0)
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }

    let scratch = std::env::temp_dir().join("emptcp-bench-scratch");
    eprintln!(
        "measuring snapshot (quick scale, serial; scratch in {})",
        scratch.display()
    );
    let fresh = match snapshot::collect(&scratch) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench: collecting snapshot: {e}");
            exit(1);
        }
    };

    let out_path = out.unwrap_or_else(|| {
        if check {
            PathBuf::from("BENCH.fresh.json")
        } else {
            PathBuf::from("BENCH.json")
        }
    });
    let text = serde_json::to_string_pretty(&fresh).expect("snapshot serializes");
    if let Err(e) = std::fs::write(&out_path, text + "\n") {
        eprintln!("bench: writing {}: {e}", out_path.display());
        exit(1);
    }
    eprintln!("wrote {}", out_path.display());

    if !check {
        return;
    }
    let base_text = match std::fs::read_to_string(&baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench: reading baseline {}: {e}", baseline.display());
            exit(1);
        }
    };
    let base: snapshot::Snapshot = match serde_json::from_str(&base_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench: parsing baseline {}: {e:?}", baseline.display());
            exit(1);
        }
    };
    let cmp = snapshot::compare(&base, &fresh, tolerance);
    println!(
        "calibration: baseline {:.0} ns, fresh {:.0} ns (machine factor x{:.2})",
        base.calibration_ns,
        fresh.calibration_ns,
        fresh.calibration_ns / base.calibration_ns
    );
    for line in &cmp.improvements {
        println!("improved: {line}");
    }
    for name in &cmp.added {
        println!("new metric (not gated): {name}");
    }
    for name in &cmp.missing {
        println!("MISSING: {name} (in baseline, not measured — re-snapshot?)");
    }
    for line in &cmp.regressions {
        println!("REGRESSION: {line}");
    }
    if cmp.failed() {
        eprintln!(
            "bench: {} regression(s), {} missing metric(s) at tolerance x{tolerance}",
            cmp.regressions.len(),
            cmp.missing.len()
        );
        exit(1);
    }
    println!("bench: all metrics within x{tolerance} of baseline");
}
