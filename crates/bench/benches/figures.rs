//! One benchmark per paper table/figure.
//!
//! Each bench regenerates the corresponding exhibit at quick scale — the
//! identical code path the full-scale `repro` binary runs, so these double
//! as end-to-end regression checks on experiment runtime. Model-only
//! exhibits (Fig 1/3/4, Tables 1/2, eq. 1) run at full fidelity.

use criterion::{criterion_group, criterion_main, Criterion};
use emptcp_bench::BENCH_SEED;
use emptcp_expr::figures::{self, Config};
use std::hint::black_box;

fn quick() -> Config {
    let mut cfg = Config::quick();
    cfg.runs = 1;
    cfg.seed = BENCH_SEED;
    cfg
}

fn model_exhibits(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_exhibits");
    g.sample_size(10);
    g.bench_function("table1_devices", |b| {
        b.iter(|| black_box(figures::table1()))
    });
    g.bench_function("fig01_fixed_overhead", |b| {
        b.iter(|| black_box(figures::fig1()))
    });
    g.bench_function("table2_eib", |b| b.iter(|| black_box(figures::table2())));
    g.bench_function("fig03_heatmap", |b| b.iter(|| black_box(figures::fig3())));
    g.bench_function("fig04_region", |b| b.iter(|| black_box(figures::fig4())));
    g.bench_function("eq1_tau_bound", |b| b.iter(|| black_box(figures::eq1())));
    g.finish();
}

fn lab_experiments(c: &mut Criterion) {
    let cfg = quick();
    let mut g = c.benchmark_group("lab_experiments");
    g.sample_size(10);
    g.bench_function("fig05_static_good", |b| {
        b.iter(|| black_box(figures::fig5(&cfg)))
    });
    g.bench_function("fig06_static_bad", |b| {
        b.iter(|| black_box(figures::fig6(&cfg)))
    });
    g.bench_function("fig07_bwchange_trace", |b| {
        b.iter(|| black_box(figures::fig7(&cfg)))
    });
    g.bench_function("fig08_bwchange", |b| {
        b.iter(|| black_box(figures::fig8(&cfg)))
    });
    g.bench_function("fig09_background_trace", |b| {
        b.iter(|| black_box(figures::fig9(&cfg)))
    });
    g.bench_function("fig10_background", |b| {
        b.iter(|| black_box(figures::fig10(&cfg)))
    });
    g.finish();
}

fn mobility_experiments(c: &mut Criterion) {
    let cfg = quick();
    let mut g = c.benchmark_group("mobility_experiments");
    g.sample_size(10);
    g.bench_function("fig12_mobility_trace", |b| {
        b.iter(|| black_box(figures::fig12(&cfg)))
    });
    g.bench_function("fig13_mobility", |b| {
        b.iter(|| black_box(figures::fig13(&cfg)))
    });
    g.bench_function("sec46_baselines", |b| {
        b.iter(|| black_box(figures::sec46(&cfg)))
    });
    g.finish();
}

fn wild_experiments(c: &mut Criterion) {
    let cfg = quick();
    let mut g = c.benchmark_group("wild_experiments");
    g.sample_size(10);
    g.bench_function("fig15_small_transfers", |b| {
        b.iter(|| black_box(figures::fig15(&cfg)))
    });
    g.bench_function("fig16_fig14_large_transfers", |b| {
        b.iter(|| {
            let (out, traces) = figures::fig16(&cfg);
            black_box(figures::fig14(&traces));
            black_box(out)
        })
    });
    g.bench_function("fig17_web_browsing", |b| {
        b.iter(|| black_box(figures::fig17(&cfg)))
    });
    g.finish();
}

criterion_group!(
    benches,
    model_exhibits,
    lab_experiments,
    mobility_experiments,
    wild_experiments
);
criterion_main!(benches);
