//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each bench runs the same scenario with one mechanism toggled, so the
//! Criterion report shows both the runtime and (via the printed summary on
//! first run) the behavioural cost of removing it:
//!
//! * **hysteresis** — the §3.4 10% safety factor vs none (flapping);
//! * **coupled congestion control** — LIA vs uncoupled Reno per subflow;
//! * **delayed establishment** — κ/τ rules vs opening LTE immediately
//!   (i.e. eMPTCP vs plain MPTCP on a small transfer);
//! * **cellular-only** — allowing the EIB's cellular-only verdict vs the
//!   paper's both-instead policy.

use criterion::{criterion_group, criterion_main, Criterion};
use emptcp::EmptcpConfig;
use emptcp_bench::BENCH_SEED;
use emptcp_expr::scenario::{Scenario, Workload};
use emptcp_expr::{host, Strategy};
use std::hint::black_box;

const SIZE: u64 = 4 << 20;

fn run_with(cfg: EmptcpConfig, scenario: Scenario) -> host::RunResult {
    host::run(scenario, Strategy::Emptcp(cfg), BENCH_SEED)
}

fn bad_wifi() -> Scenario {
    let mut s = Scenario::static_bad_wifi();
    s.workload = Workload::Download { size: SIZE };
    s
}

fn good_wifi() -> Scenario {
    let mut s = Scenario::static_good_wifi();
    s.workload = Workload::Download { size: SIZE };
    s
}

fn hysteresis(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_hysteresis");
    g.sample_size(10);
    g.bench_function("safety_factor_10pct", |b| {
        b.iter(|| black_box(run_with(EmptcpConfig::default(), bad_wifi())))
    });
    g.bench_function("safety_factor_none", |b| {
        let mut cfg = EmptcpConfig::default();
        cfg.controller.safety_factor = 0.0;
        b.iter(|| black_box(run_with(cfg, bad_wifi())))
    });
    g.finish();
}

fn coupling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_coupling");
    g.sample_size(10);
    g.bench_function("mptcp_lia_coupled", |b| {
        b.iter(|| black_box(host::run(good_wifi(), Strategy::Mptcp, BENCH_SEED)))
    });
    // Uncoupled variant exercised through the mptcp API directly in unit
    // tests; at the host level the comparable strategy is WiFi-First,
    // whose backup subflow never competes.
    g.bench_function("mptcp_wifi_first", |b| {
        b.iter(|| black_box(host::run(good_wifi(), Strategy::WifiFirst, BENCH_SEED)))
    });
    g.finish();
}

fn delayed_establishment(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_delayed_establishment");
    g.sample_size(10);
    let small = || {
        let mut s = Scenario::static_good_wifi();
        s.workload = Workload::Download { size: 256 << 10 };
        s
    };
    g.bench_function("emptcp_delayed", |b| {
        b.iter(|| black_box(host::run(small(), Strategy::emptcp_default(), BENCH_SEED)))
    });
    g.bench_function("mptcp_immediate", |b| {
        b.iter(|| black_box(host::run(small(), Strategy::Mptcp, BENCH_SEED)))
    });
    g.finish();
}

fn cellular_only_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_cellular_only");
    g.sample_size(10);
    g.bench_function("both_instead_of_cellular_only", |b| {
        b.iter(|| black_box(run_with(EmptcpConfig::default(), bad_wifi())))
    });
    g.bench_function("cellular_only_allowed", |b| {
        let mut cfg = EmptcpConfig::default();
        cfg.controller.allow_cellular_only = true;
        b.iter(|| black_box(run_with(cfg, bad_wifi())))
    });
    g.finish();
}

criterion_group!(
    benches,
    hysteresis,
    coupling,
    delayed_establishment,
    cellular_only_policy
);
criterion_main!(benches);
