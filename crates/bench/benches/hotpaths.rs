//! Micro-benchmarks of the algorithmic building blocks.
//!
//! These are the operations eMPTCP adds to the kernel fast path — the paper
//! argues (contra the MDP approach of §4.6) that its decisions are cheap
//! enough to run at line rate on a phone. The numbers here back that up:
//! every control-plane operation is nanoseconds-to-microseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use emptcp::predictor::{BandwidthPredictor, HoltWinters};
use emptcp::{EmptcpConfig, PathUsageController};
use emptcp_bench::BENCH_SEED;
use emptcp_energy::{Eib, EnergyModel, PathUsage};
use emptcp_expr::scenario::{Scenario, Workload};
use emptcp_expr::{host, Strategy};
use emptcp_phy::IfaceKind;
use emptcp_sim::{EventQueue, SimDuration, SimRng, SimTime};
use emptcp_tcp::cc::lia_alpha;
use std::hint::black_box;

fn predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.bench_function("holt_winters_observe", |b| {
        let mut hw = HoltWinters::new(0.4, 0.2);
        let mut x = 1.0;
        b.iter(|| {
            x = (x * 1.1) % 20.0;
            hw.observe(black_box(x));
            black_box(hw.forecast())
        })
    });
    g.bench_function("predictor_offer_and_predict", |b| {
        let mut p = BandwidthPredictor::new();
        let mut now = SimTime::ZERO;
        p.register_iface(now, IfaceKind::Wifi, Some(SimDuration::from_millis(250)));
        let mut bytes = 0u64;
        b.iter(|| {
            now += SimDuration::from_millis(250);
            bytes += 300_000;
            p.offer(now, IfaceKind::Wifi, bytes);
            black_box(p.predict(IfaceKind::Wifi))
        })
    });
    g.finish();
}

fn eib(c: &mut Criterion) {
    let model = EnergyModel::galaxy_s3_lte();
    let mut g = c.benchmark_group("eib");
    g.sample_size(20);
    g.bench_function("generate_default_grid", |b| {
        b.iter(|| black_box(Eib::generate_default(&model)))
    });
    let eib = Eib::generate_default(&model);
    g.bench_function("lookup_choose", |b| {
        let mut w = 0.1;
        b.iter(|| {
            w = (w + 0.37) % 12.0;
            black_box(eib.choose(black_box(w), black_box(4.0)))
        })
    });
    g.bench_function("model_best_usage", |b| {
        b.iter(|| black_box(model.best_usage(black_box(1.3), black_box(6.0))))
    });
    g.finish();
}

fn controller(c: &mut Criterion) {
    let model = EnergyModel::galaxy_s3_lte();
    let eib = Eib::generate_default(&model);
    let mut g = c.benchmark_group("controller");
    g.bench_function("decide_with_hysteresis", |b| {
        let mut ctl = PathUsageController::new(EmptcpConfig::default().controller);
        let mut w = 0.1;
        let mut now = SimTime::ZERO;
        b.iter(|| {
            w = (w + 0.29) % 10.0;
            now += SimDuration::from_secs(5);
            black_box(ctl.decide(now, &eib, black_box(w), black_box(3.0)))
        })
    });
    g.bench_function("lia_alpha_two_paths", |b| {
        b.iter(|| {
            black_box(lia_alpha(&[
                (black_box(200_000), 0.025),
                (black_box(150_000), 0.06),
            ]))
        })
    });
    g.finish();
}

fn simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.bench_function("event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            q.schedule(SimTime::from_nanos(t * 1000), t);
            if t.is_multiple_of(2) {
                black_box(q.pop());
            }
        })
    });
    g.bench_function("rng_exponential", |b| {
        let mut rng = SimRng::new(BENCH_SEED);
        b.iter(|| black_box(rng.exponential(0.05)))
    });
    g.sample_size(10);
    g.bench_function("end_to_end_4mb_download", |b| {
        b.iter(|| {
            let mut s = Scenario::static_good_wifi();
            s.workload = Workload::Download { size: 4 << 20 };
            black_box(host::run(s, Strategy::TcpWifi, BENCH_SEED))
        })
    });
    g.bench_function("end_to_end_4mb_emptcp", |b| {
        b.iter(|| {
            let mut s = Scenario::static_bad_wifi();
            s.workload = Workload::Download { size: 4 << 20 };
            black_box(host::run(s, Strategy::emptcp_default(), BENCH_SEED))
        })
    });
    g.finish();
}

fn scenario_io(c: &mut Criterion) {
    use emptcp_scenario::{corpus, io};
    let mut g = c.benchmark_group("scenario");
    let host_text = corpus::raw("ap-vanish").expect("corpus entry");
    let fleet_text = corpus::raw("fleet-contended").expect("corpus entry");
    g.bench_function("scenario_parse_load", |b| {
        // Alternate a host and a fleet file so both world arms stay
        // measured.
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let text = if flip { host_text } else { fleet_text };
            black_box(io::from_json_str(black_box(text)).expect("corpus parses"))
        })
    });
    g.finish();
}

fn usage_enum(c: &mut Criterion) {
    // Keep PathUsage in the measured set so regressions in the enum's
    // dispatch (used on every decision) are visible.
    c.bench_function("path_usage_predicates", |b| {
        b.iter(|| {
            for u in PathUsage::ALL {
                black_box(u.uses_wifi());
                black_box(u.uses_cellular());
            }
        })
    });
}

criterion_group!(
    benches,
    predictor,
    eib,
    controller,
    simulator,
    scenario_io,
    usage_enum
);
criterion_main!(benches);
