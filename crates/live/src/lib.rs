//! `emptcp-live`: the real-traffic backend.
//!
//! Everything below `crates/tcp` and `crates/mptcp` is a pure,
//! event-driven state machine: segments in, segments out, timers in
//! between. The simulator is one engine that drives those machines; this
//! crate is the second. A purpose-built poll-loop [`Reactor`] (the
//! workspace is offline-vendored, so there is no tokio — the timer wheel
//! is `crates/sim`'s [`EventQueue`](emptcp_sim::EventQueue) keyed on
//! monotonic nanoseconds) feeds the *same* [`MpConnection`] cores from
//! real I/O:
//!
//! * [`UdpTransport`] — non-blocking `std::net::UdpSocket` encapsulation,
//!   one socket per path, for cross-process traffic (`simulate serve` /
//!   `simulate connect`);
//! * [`DuplexTransport`] — an in-process byte-pair channel carrying the
//!   same wire frames through the same codec, for hermetic tests and the
//!   parity harness.
//!
//! Both transports shape traffic with [`ChaosPath`]s — the very loss /
//! delay / blackhole vocabulary the simulator's chaos rigs use — so a
//! [`FaultPlan`](emptcp_faults::FaultPlan) replays against a live
//! transfer exactly as it replays against a simulated one.
//!
//! The headline property is **parity**: [`backend::run_script`] pushes an
//! identical scripted input (arrivals, ACK timings, fault windows)
//! through [`Backend::Sim`] (the existing deterministic engine,
//! [`MpChaosRig`](emptcp_faults::MpChaosRig), untouched) and
//! [`Backend::Live`] (the reactor on a virtual clock over the duplex
//! transport), and [`parity::certify`] asserts the transport decisions —
//! scheduler picks, subflow state transitions, cwnd trajectory,
//! delivered-byte accounting — match event-for-event. What the live
//! engine adds on top of the sim (frame codec round trips, readiness
//! polling, per-connection worker pumping, wall-clock scheduling) is
//! thereby certified not to perturb protocol behavior.
//!
//! [`MpConnection`]: emptcp_mptcp::MpConnection

pub mod backend;
pub mod clock;
pub mod codec;
pub mod parity;
pub mod reactor;
pub mod session;
pub mod transport;
pub mod udp;

pub use backend::{run_script, Backend, ParityScript, ScriptOutcome};
pub use clock::ClockSource;
pub use codec::{decode_frame, encode_frame, CodecError};
pub use emptcp_faults::ChaosPath;
pub use parity::{certify, ParityDiff, ParityReport};
pub use reactor::{ConnWorker, Reactor, ReactorStats};
pub use session::{run_connect, run_serve, SessionConfig, TransferReport};
pub use transport::{DuplexTransport, Transport};
pub use udp::UdpTransport;
