//! The two engines behind one protocol core.
//!
//! [`Backend::Sim`] is the existing deterministic engine — the
//! [`MpChaosRig`] event loop every chaos and fault test already runs —
//! untouched. [`Backend::Live`] is the [`Reactor`] from this crate on a
//! virtual clock over the [`DuplexTransport`]: same state machines, but
//! every segment is encoded to wire bytes, carried through a shaped byte
//! channel, decoded, and pumped by the readiness/timer loop a real
//! deployment uses. [`run_script`] drives either backend from one
//! [`ParityScript`] — the scripted input (path delays and loss, fault
//! windows, transfer size, seed) that determines every arrival and ACK
//! timing — and returns the transport-decision log the run produced.

use crate::clock::ClockSource;
use crate::reactor::{ConnWorker, Reactor, ReactorStats};
use crate::transport::DuplexTransport;
use emptcp_faults::{ChaosPath, FaultInjector, FaultPlan, MpChaosRig};
use emptcp_mptcp::{MpConnection, Role};
use emptcp_phy::IfaceKind;
use emptcp_sim::{SimDuration, SimTime};
use emptcp_tcp::TcpConfig;
use emptcp_telemetry::{MemorySink, Telemetry, TraceEvent};
use std::sync::{Arc, Mutex};

/// Which engine drives the stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The deterministic simulator loop ([`MpChaosRig`]).
    Sim,
    /// The reactor on a virtual clock over the duplex transport.
    Live,
}

/// One scripted input, sufficient to determine both backends' runs
/// completely: every arrival time, ACK timing and fault window follows
/// from these fields plus the seeded RNG streams.
#[derive(Clone, Debug)]
pub struct ParityScript {
    /// Seed for the shaping draws (split identically by both backends).
    pub seed: u64,
    /// Paths: WiFi first, then cellular — loss, one-way delay, jitter.
    pub paths: Vec<ChaosPath>,
    /// Bytes the server pushes to the client.
    pub total_bytes: u64,
    /// Fault windows replayed against the shaped paths as time passes.
    pub faults: FaultPlan,
    /// Whether interface faults notify the stacks (link-layer visibility)
    /// or must be discovered through RTOs.
    pub notify_link_down: bool,
    /// Absolute cut-off.
    pub wall_limit: SimTime,
}

impl ParityScript {
    /// A clean two-path script: 12 ms WiFi, 35 ms cellular, no loss.
    pub fn two_path(seed: u64, total_bytes: u64) -> ParityScript {
        ParityScript {
            seed,
            paths: vec![
                ChaosPath::new(0.0, SimDuration::from_millis(12), 0),
                ChaosPath::new(0.0, SimDuration::from_millis(35), 0),
            ],
            total_bytes,
            faults: FaultPlan::new(),
            notify_link_down: true,
            wall_limit: SimTime::from_secs(900),
        }
    }
}

/// What a scripted run produced: the accounting and the decision log.
#[derive(Debug)]
pub struct ScriptOutcome {
    /// Connection-level bytes the client delivered to the application.
    pub delivered: u64,
    /// Delivered bytes that rode the WiFi subflow.
    pub delivered_wifi: u64,
    /// Delivered bytes that rode the cellular subflow.
    pub delivered_cellular: u64,
    /// Every trace event both stacks emitted, in emission order — the
    /// transport-decision log (scheduler picks, subflow transitions, cwnd
    /// trajectory, retransmissions, delivered-byte coalescing).
    pub decisions: Vec<(SimTime, TraceEvent)>,
    /// Reactor stats (live backend only).
    pub stats: Option<ReactorStats>,
}

/// Build the connection pair exactly as [`MpChaosRig::new`] does: one
/// subflow per path, WiFi first, default TCP config.
fn build_pair(paths: usize) -> (MpConnection, MpConnection) {
    let mut client = MpConnection::new(Role::Client, TcpConfig::default());
    let mut server = MpConnection::new(Role::Server, TcpConfig::default());
    for idx in 0..paths {
        let iface = if idx == 0 {
            IfaceKind::Wifi
        } else {
            IfaceKind::CellularLte
        };
        client.add_subflow(SimTime::ZERO, iface);
        server.add_subflow(SimTime::ZERO, iface);
    }
    (client, server)
}

fn drain_sink(sink: Arc<Mutex<MemorySink>>) -> Vec<(SimTime, TraceEvent)> {
    std::mem::take(&mut sink.lock().expect("sink poisoned").records)
}

/// Run `script` on `backend`, capturing the decision log through a
/// [`MemorySink`]. Client is telemetry conn 0, server conn 1, in both
/// backends — the logs are directly comparable.
pub fn run_script(backend: Backend, script: &ParityScript) -> ScriptOutcome {
    let sink = Arc::new(Mutex::new(MemorySink::new()));
    let telemetry = Telemetry::builder()
        .sink(Box::new(Arc::clone(&sink)))
        .invariants(true)
        .build();
    match backend {
        Backend::Sim => {
            let mut rig = MpChaosRig::new(script.seed, script.paths.clone());
            rig.client.set_telemetry(telemetry.scope(0));
            rig.server.set_telemetry(telemetry.scope(1));
            rig.notify_link_down = script.notify_link_down;
            rig.wall_limit = script.wall_limit;
            if !script.faults.is_empty() {
                rig.attach_faults(script.faults.clone());
            }
            let delivered = rig.run(script.total_bytes);
            ScriptOutcome {
                delivered,
                delivered_wifi: rig.client.delivered_by_iface(IfaceKind::Wifi),
                delivered_cellular: rig.client.delivered_by_iface(IfaceKind::CellularLte),
                decisions: drain_sink(sink),
                stats: None,
            }
        }
        Backend::Live => {
            let (mut client, mut server) = build_pair(script.paths.len());
            client.set_telemetry(telemetry.scope(0));
            server.set_telemetry(telemetry.scope(1));
            server.write(script.total_bytes);
            let transport = DuplexTransport::new(script.seed, script.paths.clone());
            let mut reactor = Reactor::new(ClockSource::scripted(), transport);
            reactor.notify_link_down = script.notify_link_down;
            reactor.wall_limit = script.wall_limit;
            if !script.faults.is_empty() {
                reactor.injector = Some(FaultInjector::new(script.faults.clone()));
            }
            // Registration order is settle order: client first, matching
            // the rig's transmit(client) / transmit(server) sequence.
            reactor.register(ConnWorker::new(client, 0));
            reactor.register(ConnWorker::new(server, 1));
            let total = script.total_bytes;
            let stats = reactor.run_until(|workers| workers[0].conn.bytes_delivered() >= total);
            let client = &reactor.workers[0].conn;
            ScriptOutcome {
                delivered: client.bytes_delivered(),
                delivered_wifi: client.delivered_by_iface(IfaceKind::Wifi),
                delivered_cellular: client.delivered_by_iface(IfaceKind::CellularLte),
                decisions: drain_sink(sink),
                stats: Some(stats),
            }
        }
    }
}
