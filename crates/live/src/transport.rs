//! Transports: how encoded frames move between endpoints.
//!
//! A [`Transport`] carries wire frames (see [`crate::codec`]) between the
//! reactor's endpoints over a set of shaped paths. The shaping state is
//! [`ChaosPath`] — the simulator's own loss/delay/blackhole vocabulary —
//! so a [`FaultPlan`](emptcp_faults::FaultPlan) applies to a live
//! transfer through exactly the machinery it applies to a simulated one.
//!
//! [`DuplexTransport`] is the hermetic, in-process flavor: a paired byte
//! channel whose delivery queue is the sim's
//! [`EventQueue`](emptcp_sim::EventQueue). Its shaping draws are
//! *call-for-call identical* to [`ChaosNet`](emptcp_faults::ChaosNet)'s
//! (same seed split, same draw order: loss, duplication, per-copy
//! jitter), which is a load-bearing property — it is what lets the parity
//! harness demand event-for-event equality between the two backends
//! rather than merely statistical agreement.

use crate::codec::{decode_frame, encode_frame};
use emptcp_faults::ChaosPath;
use emptcp_sim::{EventQueue, SimDuration, SimRng, SimTime};
use emptcp_tcp::Segment;

/// Frame movement between reactor endpoints over shaped paths.
pub trait Transport {
    /// Number of endpoints this transport connects locally (a duplex pair
    /// hosts both ends; a UDP transport hosts one, the peer being another
    /// process).
    fn endpoints(&self) -> usize;

    /// Offer `seg` from endpoint `from` onto `path`. The transport
    /// encodes, shapes (loss / delay / blackhole) and queues or emits the
    /// frame; a shaped-away frame disappears silently, exactly like a
    /// lost datagram.
    fn send(&mut self, now: SimTime, from: usize, path: u8, seg: &Segment);

    /// At most one frame deliverable at `now`: `(endpoint, path,
    /// segment)`. One frame per call by design — the reactor settles all
    /// connections between arrivals, matching the simulator's
    /// one-packet-per-iteration drain discipline.
    fn poll_recv(&mut self, now: SimTime) -> Option<(usize, u8, Segment)>;

    /// Earliest instant at which the transport knows it will have work
    /// (in-flight frame arrival or a delayed egress flush). `None` for
    /// transports that cannot know (real sockets). Takes `&mut self`
    /// because the timing wheel settles its cursor on peek.
    fn next_wakeup(&mut self) -> Option<SimTime>;

    /// The shaped paths, for fault application.
    fn paths_mut(&mut self) -> &mut [ChaosPath];
}

/// In-process duplex byte pair: endpoint 0 and endpoint 1, connected by
/// shaped paths, frames carried through the real codec.
pub struct DuplexTransport {
    /// `(to_endpoint, path, frame)` keyed by arrival time.
    queue: EventQueue<(usize, u8, Vec<u8>)>,
    /// The seed RNG; only forked by label, never drawn from (mirrors
    /// [`ChaosNet`](emptcp_faults::ChaosNet)'s stream discipline).
    root: SimRng,
    /// The `"traffic"` stream: loss, duplication and jitter draws.
    rng: SimRng,
    paths: Vec<ChaosPath>,
    /// Frames accepted onto a path (post-shaping copies included).
    pub frames_queued: u64,
    /// Frames shaped away (loss draw or downed path).
    pub frames_dropped: u64,
    /// Bytes of frame payload carried end to end.
    pub bytes_carried: u64,
}

impl DuplexTransport {
    /// A duplex pair over `paths`, seeded exactly like a
    /// [`ChaosNet`](emptcp_faults::ChaosNet) with the same seed — the
    /// parity contract depends on the identical fork labels.
    pub fn new(seed: u64, paths: Vec<ChaosPath>) -> DuplexTransport {
        let root = SimRng::new(seed);
        let rng = root.fork_labeled("traffic");
        DuplexTransport {
            queue: EventQueue::new(),
            root,
            rng,
            paths,
            frames_queued: 0,
            frames_dropped: 0,
            bytes_carried: 0,
        }
    }

    /// An independent RNG stream derived from the transport seed.
    pub fn fork(&self, label: &str) -> SimRng {
        self.root.fork_labeled(label)
    }

    /// Frames currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

impl Transport for DuplexTransport {
    fn endpoints(&self) -> usize {
        2
    }

    fn send(&mut self, now: SimTime, from: usize, path: u8, seg: &Segment) {
        debug_assert!(from < 2, "duplex endpoints are 0 and 1");
        let to = 1 - from;
        // Draw order mirrors ChaosNet::send exactly: pass/loss gate,
        // duplication gate, then one jitter draw per accepted copy.
        let p = &mut self.paths[path as usize];
        if !p.passes_traffic() || p.loss.lost(&mut self.rng) {
            self.frames_dropped += 1;
            return;
        }
        let copies = if p.dup > 0.0 && self.rng.chance(p.dup) {
            2
        } else {
            1
        };
        let frame = encode_frame(path, seg);
        for _ in 0..copies {
            let p = &self.paths[path as usize];
            let jitter = SimDuration::from_millis(self.rng.below(p.jitter_ms + 1));
            self.queue.schedule(
                now + p.base_delay + p.extra_delay + jitter,
                (to, path, frame.clone()),
            );
            self.frames_queued += 1;
        }
    }

    fn poll_recv(&mut self, now: SimTime) -> Option<(usize, u8, Segment)> {
        if self.queue.peek_time()? > now {
            return None;
        }
        let (_, (to, path, frame)) = self.queue.pop().expect("peeked");
        self.bytes_carried += frame.len() as u64;
        // A duplex channel is a private interface: a frame that fails to
        // decode is a codec bug, not peer hostility.
        let (decoded_path, seg) = decode_frame(&frame).expect("duplex frame decodes");
        debug_assert_eq!(decoded_path, path);
        Some((to, path, seg))
    }

    fn next_wakeup(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    fn paths_mut(&mut self) -> &mut [ChaosPath] {
        &mut self.paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paths() -> Vec<ChaosPath> {
        vec![
            ChaosPath::new(0.0, SimDuration::from_millis(10), 0),
            ChaosPath::new(0.0, SimDuration::from_millis(30), 0),
        ]
    }

    #[test]
    fn frames_cross_with_path_delay() {
        let mut t = DuplexTransport::new(7, paths());
        let mut seg = Segment::empty(SimTime::ZERO);
        seg.payload = 99;
        t.send(SimTime::ZERO, 0, 1, &seg);
        assert_eq!(t.next_wakeup(), Some(SimTime::from_millis(30)));
        assert!(t.poll_recv(SimTime::from_millis(29)).is_none());
        let (to, path, got) = t.poll_recv(SimTime::from_millis(30)).expect("arrived");
        assert_eq!((to, path, got.payload), (1, 1, 99));
    }

    #[test]
    fn downed_path_drops_silently() {
        let mut t = DuplexTransport::new(7, paths());
        t.paths_mut()[0].set_up(false);
        t.send(SimTime::ZERO, 1, 0, &Segment::empty(SimTime::ZERO));
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.frames_dropped, 1);
    }

    #[test]
    fn traffic_stream_matches_chaos_net_discipline() {
        // Same seed ⇒ the duplex traffic stream is the same RNG sequence
        // a ChaosNet derives (root seed split by the "traffic" label).
        // This is the parity linchpin: shaping draws line up draw-for-draw.
        let t = DuplexTransport::new(1234, paths());
        let mut a = t.rng.clone();
        let mut b = SimRng::new(1234).fork_labeled("traffic");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
