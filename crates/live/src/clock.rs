//! Where "now" comes from.
//!
//! The reactor is generic over its notion of time so the same loop runs
//! two ways:
//!
//! * **Wall** — `now` is monotonic nanoseconds since the reactor's epoch
//!   (`std::time::Instant`), mapped into [`SimTime`] so the protocol
//!   cores never learn which engine is driving them. Advancing the clock
//!   really sleeps.
//! * **Virtual** — `now` is a number the loop jumps to the next known
//!   deadline, exactly like the simulator. This is what makes the parity
//!   harness hermetic and deterministic: same script, same instants,
//!   same decisions.

use emptcp_sim::{SimDuration, SimTime};
use std::time::Instant;

/// Longest single sleep the wall clock takes per advance, so socket
/// readiness is re-checked at a bounded cadence even when the next
/// protocol deadline is far away.
pub const MAX_WALL_SLEEP: SimDuration = SimDuration::from_millis(1);

/// A source of monotonic [`SimTime`] the reactor advances through.
#[derive(Debug)]
pub enum ClockSource {
    /// Real time: nanoseconds since `epoch`.
    Wall { epoch: Instant },
    /// Scripted time: jumps wherever the loop steers it.
    Virtual { now: SimTime },
}

impl ClockSource {
    /// A wall clock whose epoch is this instant.
    pub fn wall() -> ClockSource {
        ClockSource::Wall {
            epoch: Instant::now(),
        }
    }

    /// A virtual clock starting at zero.
    pub fn scripted() -> ClockSource {
        ClockSource::Virtual { now: SimTime::ZERO }
    }

    /// True when driven by real time.
    pub fn is_wall(&self) -> bool {
        matches!(self, ClockSource::Wall { .. })
    }

    /// The current instant.
    pub fn now(&self) -> SimTime {
        match self {
            ClockSource::Wall { epoch } => SimTime::from_nanos(epoch.elapsed().as_nanos() as u64),
            ClockSource::Virtual { now } => *now,
        }
    }

    /// Advance toward `target` and return the instant actually reached.
    ///
    /// The virtual clock jumps exactly to `target`. The wall clock sleeps
    /// at most [`MAX_WALL_SLEEP`] (or until `target`, whichever is
    /// sooner) and reports where it woke up — the reactor loops back to
    /// check readiness rather than sleeping blind through I/O.
    pub fn advance_to(&mut self, target: SimTime) -> SimTime {
        match self {
            ClockSource::Virtual { now } => {
                if target > *now {
                    *now = target;
                }
                *now
            }
            ClockSource::Wall { .. } => {
                let now = self.now();
                if target > now {
                    let gap = target.saturating_since(now).min(MAX_WALL_SLEEP);
                    std::thread::sleep(std::time::Duration::from_nanos(gap.as_nanos()));
                }
                self.now()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_jumps_and_never_rewinds() {
        let mut c = ClockSource::scripted();
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(
            c.advance_to(SimTime::from_millis(5)),
            SimTime::from_millis(5)
        );
        // A stale (earlier) target leaves the clock where it is.
        assert_eq!(
            c.advance_to(SimTime::from_millis(1)),
            SimTime::from_millis(5)
        );
    }

    #[test]
    fn wall_clock_moves_forward() {
        let mut c = ClockSource::wall();
        let a = c.now();
        let b = c.advance_to(a + SimDuration::from_micros(200));
        assert!(b >= a);
    }
}
