//! Serve/connect sessions: a real eMPTCP transfer between two processes.
//!
//! [`run_serve`] hosts the data *sender* (the `Role::Server` stack that
//! pushes `size` bytes), [`run_connect`] the *receiver* (the
//! `Role::Client` stack that initiates the subflow handshakes — its SYN
//! retransmissions double as rendezvous retries if the server process is
//! slower to start). Both sides run the same [`Reactor`] the parity
//! harness certifies, on a wall clock over [`UdpTransport`] — path *i*
//! rides local port `port_base + i`, so each subflow is separately
//! observable with ordinary packet tools.
//!
//! Telemetry flows through the ordinary [`TraceSink`] machinery: pass a
//! trace path and every transport decision lands in the same JSONL format
//! the simulator writes, flushed at a bounded cadence so `repro monitor
//! --follow` can dashboard the transfer while it runs.
//!
//! [`TraceSink`]: emptcp_telemetry::TraceSink

use crate::clock::ClockSource;
use crate::reactor::{ConnWorker, Reactor, ReactorStats};
use crate::udp::UdpTransport;
use emptcp_faults::{ChaosPath, FaultInjector, FaultPlan};
use emptcp_mptcp::{MpConnection, Role};
use emptcp_phy::IfaceKind;
use emptcp_sim::{SimDuration, SimTime};
use emptcp_tcp::TcpConfig;
use emptcp_telemetry::{JsonlSink, Telemetry, TraceSink};
use std::fs::File;
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often the trace sink is flushed mid-run so a follower sees events
/// promptly.
const TRACE_FLUSH_EVERY: Duration = Duration::from_millis(100);

/// Everything a serve or connect session needs.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// First local UDP port; path `i` binds `port_base + i`.
    pub port_base: u16,
    /// The serving side's first port (connect side only; path `i` targets
    /// `peer + i`).
    pub peer: Option<SocketAddr>,
    /// Sender-side shaping per path, WiFi first.
    pub paths: Vec<ChaosPath>,
    /// Seed for the shaping draws.
    pub seed: u64,
    /// Bytes the server pushes.
    pub size: u64,
    /// Fault windows applied to the shaped paths as wall time passes.
    pub faults: FaultPlan,
    /// JSONL trace destination, follow-friendly (flushed every ~100 ms).
    pub trace: Option<PathBuf>,
    /// Give up after this much wall time.
    pub wall_limit: SimTime,
    /// Keep reacting this long after completion so the peer's final
    /// retransmissions still get answered.
    pub linger: SimDuration,
}

impl SessionConfig {
    /// A plain two-path localhost session.
    pub fn new(port_base: u16, size: u64) -> SessionConfig {
        SessionConfig {
            port_base,
            peer: None,
            paths: vec![
                ChaosPath::new(0.0, SimDuration::ZERO, 0),
                ChaosPath::new(0.0, SimDuration::ZERO, 0),
            ],
            seed: 1,
            size,
            faults: FaultPlan::new(),
            trace: None,
            wall_limit: SimTime::from_secs(60),
            linger: SimDuration::from_millis(200),
        }
    }
}

/// What a session accomplished, for summaries and CI greps.
#[derive(Debug, Clone, Copy)]
pub struct TransferReport {
    /// Bytes moved (delivered on connect, cumulatively ACKed on serve).
    pub bytes: u64,
    /// Of those, bytes that rode the WiFi path.
    pub wifi: u64,
    /// Of those, bytes that rode the cellular path.
    pub cellular: u64,
    /// Whether the transfer completed before the wall limit.
    pub complete: bool,
    /// Wall time from reactor start to completion check.
    pub elapsed: Duration,
    /// Reactor counters.
    pub stats: ReactorStats,
    /// Datagrams actually put on the wire.
    pub datagrams_sent: u64,
    /// Datagrams received and decoded.
    pub datagrams_received: u64,
}

fn reactor_for(
    cfg: &SessionConfig,
    conn: MpConnection,
    transport: UdpTransport,
) -> Reactor<UdpTransport> {
    let mut reactor = Reactor::new(ClockSource::wall(), transport);
    reactor.wall_limit = cfg.wall_limit;
    if !cfg.faults.is_empty() {
        reactor.injector = Some(FaultInjector::new(cfg.faults.clone()));
    }
    reactor.register(ConnWorker::new(conn, 0));
    reactor
}

/// Wire the connection's telemetry to a follow-friendly JSONL sink; the
/// returned handle lets the run loop flush at a bounded cadence.
type SharedSink = Arc<Mutex<JsonlSink<File>>>;

fn attach_trace(cfg: &SessionConfig, conn: &mut MpConnection) -> io::Result<Option<SharedSink>> {
    let Some(path) = &cfg.trace else {
        return Ok(None);
    };
    let sink = Arc::new(Mutex::new(JsonlSink::new(File::create(path)?)));
    let telemetry = Telemetry::builder()
        .sink(Box::new(Arc::clone(&sink)))
        .invariants(true)
        .build();
    conn.set_telemetry(telemetry.scope(0));
    Ok(Some(sink))
}

/// Run the reactor until `finished` (or the wall limit), flushing the
/// trace on a timer, then linger to answer the peer's final
/// retransmissions.
fn drive(
    reactor: &mut Reactor<UdpTransport>,
    sink: Option<SharedSink>,
    linger: SimDuration,
    finished: impl Fn(&MpConnection) -> bool,
) -> ReactorStats {
    let mut last_flush = Instant::now();
    let mut flush = move |sink: &Option<SharedSink>| {
        if let Some(s) = sink {
            if last_flush.elapsed() >= TRACE_FLUSH_EVERY {
                last_flush = Instant::now();
                s.lock()
                    .expect("sink poisoned")
                    .flush()
                    .expect("trace flush");
            }
        }
    };
    let stats = reactor.run_until(|workers| {
        flush(&sink);
        finished(&workers[0].conn)
    });
    // Completion on our side does not mean the peer heard about it; keep
    // reacting briefly so its retransmissions get answered.
    let until = Instant::now() + Duration::from_nanos(linger.as_nanos());
    reactor.run_until(|_| {
        flush(&sink);
        Instant::now() >= until
    });
    if let Some(s) = &sink {
        s.lock()
            .expect("sink poisoned")
            .flush()
            .expect("trace flush");
    }
    stats
}

fn report(
    reactor: &Reactor<UdpTransport>,
    stats: ReactorStats,
    bytes: u64,
    wifi: u64,
    cellular: u64,
    complete: bool,
) -> TransferReport {
    TransferReport {
        bytes,
        wifi,
        cellular,
        complete,
        elapsed: Duration::from_nanos(stats.finished_at.as_nanos()),
        stats,
        datagrams_sent: reactor.transport.datagrams_sent,
        datagrams_received: reactor.transport.datagrams_received,
    }
}

/// Host the data sender: bind `port_base + i` per path, learn peers from
/// the client's handshakes, push `cfg.size` bytes, finish when every byte
/// is cumulatively ACKed.
pub fn run_serve(cfg: &SessionConfig) -> io::Result<TransferReport> {
    let mut conn = MpConnection::new(Role::Server, TcpConfig::default());
    for (idx, _) in cfg.paths.iter().enumerate() {
        let iface = if idx == 0 {
            IfaceKind::Wifi
        } else {
            IfaceKind::CellularLte
        };
        conn.add_subflow(SimTime::ZERO, iface);
    }
    let sink = attach_trace(cfg, &mut conn)?;
    conn.write(cfg.size);
    let transport = UdpTransport::bind(cfg.port_base, cfg.paths.clone(), cfg.seed)?;
    let mut reactor = reactor_for(cfg, conn, transport);
    let size = cfg.size;
    let stats = drive(&mut reactor, sink, cfg.linger, |c| c.bytes_acked() >= size);
    let conn = &reactor.workers[0].conn;
    let (bytes, wifi, cellular) = (
        conn.bytes_acked(),
        conn.acked_by_iface(IfaceKind::Wifi),
        conn.acked_by_iface(IfaceKind::CellularLte),
    );
    let complete = bytes >= size;
    Ok(report(&reactor, stats, bytes, wifi, cellular, complete))
}

/// Run the receiver: preset peers at `cfg.peer + i`, initiate the subflow
/// handshakes (SYN retransmission doubles as rendezvous retry), finish
/// when `cfg.size` bytes are delivered in order.
pub fn run_connect(cfg: &SessionConfig) -> io::Result<TransferReport> {
    let peer = cfg.peer.ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "connect needs a peer address")
    })?;
    let mut conn = MpConnection::new(Role::Client, TcpConfig::default());
    for (idx, _) in cfg.paths.iter().enumerate() {
        let iface = if idx == 0 {
            IfaceKind::Wifi
        } else {
            IfaceKind::CellularLte
        };
        conn.add_subflow(SimTime::ZERO, iface);
    }
    let sink = attach_trace(cfg, &mut conn)?;
    let mut transport = UdpTransport::bind(cfg.port_base, cfg.paths.clone(), cfg.seed)?;
    for i in 0..cfg.paths.len() {
        let mut addr = peer;
        addr.set_port(peer.port() + i as u16);
        transport.set_peer(i, addr);
    }
    let mut reactor = reactor_for(cfg, conn, transport);
    let size = cfg.size;
    let stats = drive(&mut reactor, sink, cfg.linger, |c| {
        c.bytes_delivered() >= size
    });
    // Emit the final coalesced Delivered remainder so trace totals match
    // connection totals.
    reactor.workers[0]
        .conn
        .flush_delivered_trace(stats.finished_at);
    let conn = &reactor.workers[0].conn;
    let (bytes, wifi, cellular) = (
        conn.bytes_delivered(),
        conn.delivered_by_iface(IfaceKind::Wifi),
        conn.delivered_by_iface(IfaceKind::CellularLte),
    );
    let complete = bytes >= size;
    Ok(report(&reactor, stats, bytes, wifi, cellular, complete))
}
