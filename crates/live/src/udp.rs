//! Real-socket transport: one non-blocking UDP socket per path.
//!
//! This is the cross-process flavor of [`Transport`]: each eMPTCP path
//! rides its own UDP 4-tuple (path *i* binds local port `port_base + i`),
//! so the two subflows of a transfer are separately visible to tcpdump,
//! netem, or a real bottleneck. Frames are the same codec frames the
//! duplex transport carries, padded to the modeled wire size.
//!
//! Shaping happens **sender-side**: the loss/dup/jitter draws and the
//! base-delay holdback run against the same [`ChaosPath`] vocabulary the
//! simulator uses, with delayed egress parked in an
//! [`EventQueue`](emptcp_sim::EventQueue) until the wall clock passes the
//! departure instant. A `FaultPlan` therefore shapes a live localhost
//! transfer through exactly the machinery that shapes a simulated one.
//!
//! Peers are preset (client) or learned from the source address of the
//! first datagram per path (server) — the usual UDP rendezvous. Malformed
//! datagrams are counted and skipped, never panicked on: a socket is a
//! public interface.

use crate::codec::{decode_frame, encode_frame};
use crate::transport::Transport;
use emptcp_faults::ChaosPath;
use emptcp_sim::{EventQueue, SimDuration, SimRng, SimTime};
use emptcp_tcp::Segment;
use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Largest datagram we accept; comfortably above the modeled MTU.
const RECV_BUF: usize = 2048;

/// One local endpoint of a live transfer: a socket per path plus
/// sender-side shaping state.
pub struct UdpTransport {
    /// Socket for path `i`, bound to `port_base + i`.
    sockets: Vec<UdpSocket>,
    /// Peer address per path: preset for the connecting side, learned
    /// from the first arrival for the serving side.
    peers: Vec<Option<SocketAddr>>,
    /// Shaped-egress holdback: `(path, frame)` keyed by departure time.
    egress: EventQueue<(u8, Vec<u8>)>,
    paths: Vec<ChaosPath>,
    rng: SimRng,
    /// Round-robin receive cursor so one busy path cannot starve another.
    rr: usize,
    /// Datagrams sent on the wire (post-shaping).
    pub datagrams_sent: u64,
    /// Datagrams received and decoded.
    pub datagrams_received: u64,
    /// Frames shaped away before the wire (loss draw or downed path).
    pub frames_shaped_away: u64,
    /// Arrivals that failed to decode (skipped, never fatal).
    pub malformed: u64,
    /// Egress frames dropped because no peer was known yet.
    pub unroutable: u64,
}

impl UdpTransport {
    /// Bind one non-blocking socket per path at `port_base`, `port_base +
    /// 1`, ... on localhost.
    pub fn bind(port_base: u16, paths: Vec<ChaosPath>, seed: u64) -> io::Result<UdpTransport> {
        let mut sockets = Vec::with_capacity(paths.len());
        for i in 0..paths.len() {
            let sock = UdpSocket::bind(("127.0.0.1", port_base + i as u16))?;
            sock.set_nonblocking(true)?;
            sockets.push(sock);
        }
        let peers = vec![None; paths.len()];
        Ok(UdpTransport {
            sockets,
            peers,
            egress: EventQueue::new(),
            paths,
            rng: SimRng::new(seed).fork_labeled("traffic"),
            rr: 0,
            datagrams_sent: 0,
            datagrams_received: 0,
            frames_shaped_away: 0,
            malformed: 0,
            unroutable: 0,
        })
    }

    /// Preset the peer for `path` (the connecting side knows the server).
    pub fn set_peer(&mut self, path: usize, addr: SocketAddr) {
        self.peers[path] = Some(addr);
    }

    /// True once every path has a peer (all rendezvous complete).
    pub fn all_peers_known(&self) -> bool {
        self.peers.iter().all(Option::is_some)
    }

    /// Push every egress frame whose departure time has passed onto its
    /// socket.
    fn flush_egress(&mut self, now: SimTime) {
        while self.egress.peek_time().is_some_and(|t| t <= now) {
            let (_, (path, frame)) = self.egress.pop().expect("peeked");
            let Some(peer) = self.peers[path as usize] else {
                // No rendezvous on this path yet; the stack will
                // retransmit, so dropping here is safe and simple.
                self.unroutable += 1;
                continue;
            };
            match self.sockets[path as usize].send_to(&frame, peer) {
                Ok(_) => self.datagrams_sent += 1,
                // A full socket buffer behaves like a droptail queue;
                // the protocol's loss recovery owns this case.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => self.frames_shaped_away += 1,
                Err(e) => panic!("udp send_to failed: {e}"),
            }
        }
    }
}

impl Transport for UdpTransport {
    fn endpoints(&self) -> usize {
        1
    }

    fn send(&mut self, now: SimTime, _from: usize, path: u8, seg: &Segment) {
        let p = &mut self.paths[path as usize];
        if !p.passes_traffic() || p.loss.lost(&mut self.rng) {
            self.frames_shaped_away += 1;
            return;
        }
        let copies = if p.dup > 0.0 && self.rng.chance(p.dup) {
            2
        } else {
            1
        };
        let frame = encode_frame(path, seg);
        for _ in 0..copies {
            let p = &self.paths[path as usize];
            let jitter = SimDuration::from_millis(self.rng.below(p.jitter_ms + 1));
            self.egress.schedule(
                now + p.base_delay + p.extra_delay + jitter,
                (path, frame.clone()),
            );
        }
        self.flush_egress(now);
    }

    fn poll_recv(&mut self, now: SimTime) -> Option<(usize, u8, Segment)> {
        self.flush_egress(now);
        let mut buf = [0u8; RECV_BUF];
        // One sweep over the sockets starting at the cursor; at most one
        // frame returned, keeping the reactor's settle discipline.
        for off in 0..self.sockets.len() {
            let idx = (self.rr + off) % self.sockets.len();
            match self.sockets[idx].recv_from(&mut buf) {
                Ok((n, from)) => {
                    self.rr = (idx + 1) % self.sockets.len();
                    if self.peers[idx].is_none() {
                        self.peers[idx] = Some(from);
                    }
                    match decode_frame(&buf[..n]) {
                        Ok((path, seg)) => {
                            self.datagrams_received += 1;
                            return Some((0, path, seg));
                        }
                        Err(_) => {
                            self.malformed += 1;
                            continue;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                // Linux may surface async ICMP errors (e.g. port
                // unreachable before the peer binds) on the next call;
                // treat like loss and let retransmission cover it.
                Err(_) => continue,
            }
        }
        None
    }

    fn next_wakeup(&mut self) -> Option<SimTime> {
        // Only the shaped-egress flush is knowable; socket arrivals are
        // covered by the reactor's bounded wall sleep.
        self.egress.peek_time()
    }

    fn paths_mut(&mut self) -> &mut [ChaosPath] {
        &mut self.paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_paths() -> Vec<ChaosPath> {
        vec![
            ChaosPath::new(0.0, SimDuration::ZERO, 0),
            ChaosPath::new(0.0, SimDuration::ZERO, 0),
        ]
    }

    #[test]
    fn localhost_round_trip_and_peer_learning() {
        let mut a = UdpTransport::bind(46200, two_paths(), 1).expect("bind a");
        let mut b = UdpTransport::bind(46210, two_paths(), 2).expect("bind b");
        // a knows b; b learns a from the first datagram.
        a.set_peer(0, "127.0.0.1:46210".parse().unwrap());
        a.set_peer(1, "127.0.0.1:46211".parse().unwrap());
        let mut seg = Segment::empty(SimTime::ZERO);
        seg.payload = 7;
        a.send(SimTime::ZERO, 0, 1, &seg);
        let got = (0..200).find_map(|_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            b.poll_recv(SimTime::ZERO)
        });
        let (_, path, seg) = got.expect("datagram crossed localhost");
        assert_eq!((path, seg.payload), (1, 7));
        assert!(b.peers[1].is_some(), "server learned the peer");
        // And the learned peer routes the reply back.
        b.send(SimTime::ZERO, 0, 1, &Segment::empty(SimTime::ZERO));
        let reply = (0..200).find_map(|_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            a.poll_recv(SimTime::ZERO)
        });
        assert!(reply.is_some(), "reply arrived");
    }

    #[test]
    fn malformed_datagrams_are_skipped() {
        let mut t = UdpTransport::bind(46220, two_paths(), 3).expect("bind");
        let raw = UdpSocket::bind("127.0.0.1:0").expect("bind raw");
        raw.send_to(&[0xAB; 32], "127.0.0.1:46220").expect("send");
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(t.poll_recv(SimTime::ZERO).is_none());
        assert_eq!(t.malformed, 1);
    }

    #[test]
    fn shaped_egress_holds_frames_until_departure() {
        let mut t = UdpTransport::bind(46230, two_paths(), 4).expect("bind");
        t.paths_mut()[0].base_delay = SimDuration::from_millis(50);
        t.set_peer(0, "127.0.0.1:46231".parse().unwrap());
        t.send(SimTime::ZERO, 0, 0, &Segment::empty(SimTime::ZERO));
        assert_eq!(t.datagrams_sent, 0, "held back");
        assert_eq!(t.next_wakeup(), Some(SimTime::from_millis(50)));
        t.flush_egress(SimTime::from_millis(50));
        assert_eq!(t.datagrams_sent, 1, "departed on time");
    }
}
