//! Sim/live parity certification.
//!
//! [`certify`] runs one [`ParityScript`] through both backends and
//! demands the transport-decision logs match **event-for-event**:
//! scheduler picks, subflow state transitions, cwnd trajectory points,
//! retransmissions, delivered-byte accounting — every trace event, in
//! order, with identical virtual timestamps. This is deliberately much
//! stronger than comparing final goodput: two engines can agree on the
//! total while disagreeing on every decision along the way, and it is
//! the decisions the simulator's conclusions rest on.
//!
//! What must match: the full `(SimTime, TraceEvent)` sequence and the
//! per-path delivered-byte accounting. What may differ: nothing, under
//! the virtual clock — wall-clock timestamps only enter in `Wall` mode,
//! which is exactly why certification runs the live backend on
//! [`ClockSource::scripted`](crate::clock::ClockSource::scripted).

use crate::backend::{run_script, Backend, ParityScript};
use emptcp_sim::SimTime;
use emptcp_telemetry::TraceEvent;

/// Context lines shown around the first divergence.
const DIFF_CONTEXT: usize = 3;

/// A certified run: both logs were equal.
#[derive(Debug, Clone, Copy)]
pub struct ParityReport {
    /// Events in the (shared) decision log.
    pub events: usize,
    /// Bytes delivered to the client application (equal on both sides).
    pub delivered: u64,
    /// Delivered bytes that rode the WiFi path.
    pub delivered_wifi: u64,
    /// Delivered bytes that rode the cellular path.
    pub delivered_cellular: u64,
}

/// The first point where the two decision logs disagree.
#[derive(Debug, Clone)]
pub struct ParityDiff {
    /// Index of the first differing event (== common length when one log
    /// is a strict prefix of the other).
    pub index: usize,
    /// The simulator's event at `index`, if any.
    pub sim: Option<(SimTime, TraceEvent)>,
    /// The live backend's event at `index`, if any.
    pub live: Option<(SimTime, TraceEvent)>,
    /// Events leading up to the divergence (shared prefix tail).
    pub context: Vec<(SimTime, TraceEvent)>,
    /// Log lengths, for prefix diagnoses.
    pub sim_len: usize,
    /// See `sim_len`.
    pub live_len: usize,
}

impl std::fmt::Display for ParityDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "sim/live decision logs diverge at event {} (sim has {}, live has {})",
            self.index, self.sim_len, self.live_len
        )?;
        for (t, ev) in &self.context {
            writeln!(f, "    ... {t:?} {ev:?}")?;
        }
        match &self.sim {
            Some((t, ev)) => writeln!(f, "    sim : {t:?} {ev:?}")?,
            None => writeln!(f, "    sim : <log ended>")?,
        }
        match &self.live {
            Some((t, ev)) => writeln!(f, "    live: {t:?} {ev:?}")?,
            None => writeln!(f, "    live: <log ended>")?,
        }
        Ok(())
    }
}

/// Run `script` on both backends and compare decision logs. `Ok` means
/// every event matched (and so did the byte accounting); `Err` pinpoints
/// the first divergence with context.
pub fn certify(script: &ParityScript) -> Result<ParityReport, Box<ParityDiff>> {
    let sim = run_script(Backend::Sim, script);
    let live = run_script(Backend::Live, script);
    let common = sim.decisions.len().min(live.decisions.len());
    for i in 0..common {
        if sim.decisions[i] != live.decisions[i] {
            return Err(diff_at(i, &sim.decisions, &live.decisions));
        }
    }
    if sim.decisions.len() != live.decisions.len() {
        return Err(diff_at(common, &sim.decisions, &live.decisions));
    }
    // Decision logs matched; the accounting is derived from the same
    // events, so these are invariants, not additional tolerance knobs.
    assert_eq!(sim.delivered, live.delivered, "delivered bytes diverge");
    assert_eq!(
        (sim.delivered_wifi, sim.delivered_cellular),
        (live.delivered_wifi, live.delivered_cellular),
        "per-path accounting diverges"
    );
    Ok(ParityReport {
        events: sim.decisions.len(),
        delivered: sim.delivered,
        delivered_wifi: sim.delivered_wifi,
        delivered_cellular: sim.delivered_cellular,
    })
}

fn diff_at(
    index: usize,
    sim: &[(SimTime, TraceEvent)],
    live: &[(SimTime, TraceEvent)],
) -> Box<ParityDiff> {
    Box::new(ParityDiff {
        index,
        sim: sim.get(index).cloned(),
        live: live.get(index).cloned(),
        context: sim[index.saturating_sub(DIFF_CONTEXT)..index].to_vec(),
        sim_len: sim.len(),
        live_len: live.len(),
    })
}
