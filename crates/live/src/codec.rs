//! Wire framing for live transports.
//!
//! One frame = one [`Segment`] plus the path index it rides on. The
//! layout is a hand-rolled little-endian binary format (the vendored
//! serde stand-ins are for JSON tooling, not datagrams): a fixed header,
//! optional fields gated by a presence byte, then zero padding out to the
//! segment's modeled [`Segment::wire_bytes`] size. The padding matters:
//! the simulator charges links for realistic Ethernet/IP/TCP(+options)
//! byte counts, and padding the UDP datagram to the same size means live
//! goodput over a real NIC is directly comparable to simulated goodput.
//!
//! Every frame the duplex transport carries round-trips through
//! [`encode_frame`]/[`decode_frame`], so the parity harness certifies the
//! codec as a side effect: a single mis-encoded field would desynchronize
//! the two backends' decision logs immediately.

use emptcp_sim::SimTime;
use emptcp_tcp::segment::MAX_SACK_BLOCKS;
use emptcp_tcp::{Dss, SegFlags, Segment};

/// Frame magic: "eM" little-endian, versioned separately.
const MAGIC: u16 = 0x4d65;
/// Bump when the layout changes; decoders reject mismatches.
const VERSION: u8 = 1;

/// Presence/flag bits packed into one byte.
const F_SYN: u16 = 1 << 0;
const F_ACK: u16 = 1 << 1;
const F_FIN: u16 = 1 << 2;
const F_TS_ECR: u16 = 1 << 3;
const F_DSS: u16 = 1 << 4;
const F_MP_PRIO: u16 = 1 << 5;
const F_MP_PRIO_BACKUP: u16 = 1 << 6;
const F_RETRANSMIT: u16 = 1 << 7;
/// SACK block count occupies two bits above the flag byte.
const SACK_SHIFT: u16 = 8;

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Shorter than the fixed header, or an optional field ran off the end.
    Truncated,
    /// Magic bytes wrong — not one of our frames.
    BadMagic,
    /// Frame from an incompatible codec version.
    BadVersion(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated frame"),
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.at.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

/// Encode `seg` riding on `path` into one datagram-sized frame, padded
/// with zeros to at least the segment's modeled wire size.
pub fn encode_frame(path: u8, seg: &Segment) -> Vec<u8> {
    let mut out = Vec::with_capacity(seg.wire_bytes() as usize + 32);
    put_u16(&mut out, MAGIC);
    out.push(VERSION);
    out.push(path);
    let mut flags: u16 = 0;
    if seg.flags.syn {
        flags |= F_SYN;
    }
    if seg.flags.ack {
        flags |= F_ACK;
    }
    if seg.flags.fin {
        flags |= F_FIN;
    }
    if seg.ts_ecr.is_some() {
        flags |= F_TS_ECR;
    }
    if seg.dss.is_some() {
        flags |= F_DSS;
    }
    match seg.mp_prio {
        Some(true) => flags |= F_MP_PRIO | F_MP_PRIO_BACKUP,
        Some(false) => flags |= F_MP_PRIO,
        None => {}
    }
    if seg.retransmit {
        flags |= F_RETRANSMIT;
    }
    let sack_blocks = seg.sack.iter().flatten().count() as u16;
    flags |= sack_blocks << SACK_SHIFT;
    put_u16(&mut out, flags);
    put_u64(&mut out, seg.seq);
    put_u32(&mut out, seg.payload);
    put_u64(&mut out, seg.ack);
    put_u64(&mut out, seg.rwnd);
    put_u64(&mut out, seg.ts_val.as_nanos());
    if let Some(ecr) = seg.ts_ecr {
        put_u64(&mut out, ecr.as_nanos());
    }
    if let Some(dss) = seg.dss {
        put_u64(&mut out, dss.data_seq);
        put_u32(&mut out, dss.len);
        put_u64(&mut out, dss.data_ack);
    }
    for (start, end) in seg.sack.iter().flatten() {
        put_u64(&mut out, *start);
        put_u64(&mut out, *end);
    }
    // Pad out to the modeled on-the-wire size so a live datagram costs
    // the network what the simulator charged its links. Headers larger
    // than the modeled size (possible for option-dense pure ACKs) are
    // left as-is.
    let wire = seg.wire_bytes() as usize;
    if out.len() < wire {
        out.resize(wire, 0);
    }
    out
}

/// Decode one frame back into `(path, segment)`. Trailing padding is
/// ignored; anything structurally wrong is an error, not a panic — a UDP
/// socket is a public interface.
pub fn decode_frame(frame: &[u8]) -> Result<(u8, Segment), CodecError> {
    let mut r = Reader { buf: frame, at: 0 };
    if r.u16()? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let path = r.u8()?;
    let flags = r.u16()?;
    let mut seg = Segment::empty(SimTime::ZERO);
    seg.flags = SegFlags {
        syn: flags & F_SYN != 0,
        ack: flags & F_ACK != 0,
        fin: flags & F_FIN != 0,
    };
    seg.retransmit = flags & F_RETRANSMIT != 0;
    seg.seq = r.u64()?;
    seg.payload = r.u32()?;
    seg.ack = r.u64()?;
    seg.rwnd = r.u64()?;
    seg.ts_val = SimTime::from_nanos(r.u64()?);
    if flags & F_TS_ECR != 0 {
        seg.ts_ecr = Some(SimTime::from_nanos(r.u64()?));
    }
    if flags & F_DSS != 0 {
        seg.dss = Some(Dss {
            data_seq: r.u64()?,
            len: r.u32()?,
            data_ack: r.u64()?,
        });
    }
    if flags & F_MP_PRIO != 0 {
        seg.mp_prio = Some(flags & F_MP_PRIO_BACKUP != 0);
    }
    let sack_blocks = ((flags >> SACK_SHIFT) & 0b11) as usize;
    for i in 0..sack_blocks.min(MAX_SACK_BLOCKS) {
        seg.sack[i] = Some((r.u64()?, r.u64()?));
    }
    Ok((path, seg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emptcp_sim::SimRng;

    fn arbitrary_segment(rng: &mut SimRng) -> Segment {
        let mut seg = Segment::empty(SimTime::from_nanos(rng.below(1 << 40)));
        seg.seq = rng.next_u64() >> 20;
        seg.payload = rng.below(1500) as u32;
        seg.ack = rng.next_u64() >> 20;
        seg.flags = SegFlags {
            syn: rng.chance(0.2),
            ack: rng.chance(0.8),
            fin: rng.chance(0.1),
        };
        seg.rwnd = rng.below(1 << 30);
        if rng.chance(0.7) {
            seg.ts_ecr = Some(SimTime::from_nanos(rng.below(1 << 40)));
        }
        if rng.chance(0.5) {
            seg.dss = Some(Dss {
                data_seq: rng.next_u64() >> 20,
                len: seg.payload,
                data_ack: rng.next_u64() >> 20,
            });
        }
        if rng.chance(0.3) {
            seg.mp_prio = Some(rng.chance(0.5));
        }
        let blocks = rng.below(MAX_SACK_BLOCKS as u64 + 1) as usize;
        for i in 0..blocks {
            let s = rng.below(1 << 30);
            seg.sack[i] = Some((s, s + 1 + rng.below(1 << 16)));
        }
        seg.retransmit = rng.chance(0.2);
        seg
    }

    #[test]
    fn round_trips_exactly() {
        let mut rng = SimRng::new(0xC0DEC);
        for i in 0..2000 {
            let seg = arbitrary_segment(&mut rng);
            let path = (i % 3) as u8;
            let frame = encode_frame(path, &seg);
            let (p, got) = decode_frame(&frame).expect("decodes");
            assert_eq!(p, path);
            assert_eq!(got, seg, "iteration {i}");
        }
    }

    #[test]
    fn frames_carry_modeled_wire_size() {
        let mut seg = Segment::empty(SimTime::ZERO);
        seg.payload = 1428;
        seg.dss = Some(Dss {
            data_seq: 0,
            len: 1428,
            data_ack: 0,
        });
        let frame = encode_frame(0, &seg);
        assert!(frame.len() as u64 >= seg.wire_bytes());
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert_eq!(decode_frame(&[]), Err(CodecError::Truncated));
        assert_eq!(decode_frame(&[0xff; 64]).unwrap_err(), CodecError::BadMagic);
        let mut frame = encode_frame(0, &Segment::empty(SimTime::ZERO));
        frame[2] = 99;
        assert_eq!(decode_frame(&frame), Err(CodecError::BadVersion(99)));
        // Truncation mid-header.
        let frame = encode_frame(1, &Segment::empty(SimTime::ZERO));
        for cut in 0..16 {
            assert!(decode_frame(&frame[..cut]).is_err());
        }
    }
}
