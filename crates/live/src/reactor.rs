//! The poll-loop reactor: the live engine under the protocol cores.
//!
//! There is no async runtime in this workspace (offline-vendored, no
//! tokio), and none is needed: the protocol cores are synchronous state
//! machines, so the engine under them is a classic reactor — a readiness
//! sweep over the transport, a timer sweep over per-connection deadlines,
//! and per-connection workers that feed arrivals into [`MpConnection`]
//! and drain its `poll_transmit` output back to the wire. The timer wheel
//! is `crates/sim`'s [`EventQueue`](emptcp_sim::EventQueue) living inside
//! the shaped transports, keyed on the same monotonic nanoseconds the
//! wall clock produces.
//!
//! **The drain discipline is load-bearing.** Each iteration advances the
//! clock to the next known instant, applies due faults, delivers *at most
//! one* frame, then runs every worker's deadline sweep and transmit drain
//! in registration order. That is, deliberately, the exact event loop of
//! [`MpChaosRig`](emptcp_faults::MpChaosRig) — the simulator's engine —
//! which is what makes event-for-event decision parity between the two
//! backends a theorem about code structure rather than a hope. A
//! dirty-set optimization (only settling touched connections) would be
//! faster for thousands of connections per reactor, but would perturb the
//! clock-coupled replay cadence ([`Clocked`]) and break exact parity; it
//! is explicitly out of scope until the determinism contract moves to
//! delivered-byte accounting (see DESIGN §17).
//!
//! On a wall clock the same loop sleeps in bounded slices
//! ([`MAX_WALL_SLEEP`](crate::clock::MAX_WALL_SLEEP)) so socket readiness
//! is re-checked at a steady cadence, and each iteration drives
//! [`Clocked::clock_tick`] — live wall ticks and sim virtual ticks reach
//! the identical side-effect replay.
//!
//! [`MpConnection`]: emptcp_mptcp::MpConnection

use crate::clock::{ClockSource, MAX_WALL_SLEEP};
use crate::transport::Transport;
use emptcp_faults::{FaultInjector, FaultTarget};
use emptcp_mptcp::{MpConnection, SubflowId};
use emptcp_phy::LossModel;
use emptcp_sim::{Clocked, SimDuration, SimTime};

/// Iteration cap, matching the simulator rig's runaway guard.
const GUARD_MAX: u64 = 3_000_000;

/// One connection plus its transport endpoint: the unit the reactor
/// pumps. Workers are plain structs driven by the loop (not threads) so
/// the whole engine stays deterministic under a virtual clock.
pub struct ConnWorker {
    /// The protocol core — the exact type the simulator drives.
    pub conn: MpConnection,
    /// Which transport endpoint this worker's frames enter and leave by.
    pub endpoint: usize,
}

impl ConnWorker {
    pub fn new(conn: MpConnection, endpoint: usize) -> ConnWorker {
        ConnWorker { conn, endpoint }
    }
}

/// What a reactor run did, for reports and assertions.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReactorStats {
    /// Loop iterations executed.
    pub iterations: u64,
    /// Frames delivered into workers.
    pub arrivals: u64,
    /// Segments drained from workers onto the transport.
    pub sends: u64,
    /// Fault-plan events applied.
    pub fault_events: u64,
    /// Clock reading when the run ended.
    pub finished_at: SimTime,
}

/// The engine: clock + transport + workers (+ an optional fault plan).
pub struct Reactor<T: Transport> {
    pub clock: ClockSource,
    pub transport: T,
    pub workers: Vec<ConnWorker>,
    /// Replays a [`FaultPlan`](emptcp_faults::FaultPlan) against the
    /// transport's shaped paths as the clock passes each event.
    pub injector: Option<FaultInjector>,
    /// Deliver link-layer up/down notifications to the stacks on
    /// interface faults (a real de-association is visible to the kernel);
    /// disable to force detection through RTOs alone.
    pub notify_link_down: bool,
    /// Absolute clock cut-off for [`Reactor::run_until`].
    pub wall_limit: SimTime,
    stats: ReactorStats,
}

impl<T: Transport> Reactor<T> {
    pub fn new(clock: ClockSource, transport: T) -> Reactor<T> {
        Reactor {
            clock,
            transport,
            workers: Vec::new(),
            injector: None,
            notify_link_down: true,
            wall_limit: SimTime::from_secs(900),
            stats: ReactorStats::default(),
        }
    }

    /// Register a worker; returns its index. Registration order is the
    /// settle order, which parity-sensitive callers must keep identical
    /// to the simulator's drain order (client first).
    pub fn register(&mut self, worker: ConnWorker) -> usize {
        self.workers.push(worker);
        self.workers.len() - 1
    }

    fn poll_faults(&mut self, now: SimTime) {
        if let Some(mut inj) = self.injector.take() {
            self.stats.fault_events += inj.poll(now, self) as u64;
            self.injector = Some(inj);
        }
    }

    /// Drain every worker's pending transmissions onto the transport, in
    /// registration order (the simulator's client-then-server order).
    fn pump_transmit(&mut self, now: SimTime) {
        let Reactor {
            workers,
            transport,
            stats,
            ..
        } = self;
        for w in workers.iter_mut() {
            while let Some((sf, seg)) = w.conn.poll_transmit(now) {
                transport.send(now, w.endpoint, sf.0, &seg);
                stats.sends += 1;
            }
        }
    }

    /// Deliver at most one due frame into its worker.
    fn deliver_one(&mut self, now: SimTime) -> bool {
        let Some((ep, path, seg)) = self.transport.poll_recv(now) else {
            return false;
        };
        self.stats.arrivals += 1;
        let w = self
            .workers
            .iter_mut()
            .find(|w| w.endpoint == ep)
            .expect("frame for an unregistered endpoint");
        w.conn.on_segment(now, SubflowId(path), seg);
        true
    }

    /// Earliest pending protocol or fault deadline across all workers.
    fn next_deadline(&mut self) -> Option<SimTime> {
        self.workers
            .iter_mut()
            .filter_map(|w| w.conn.next_deadline())
            .chain(self.injector.as_ref().and_then(|i| i.next_deadline()))
            .min()
    }

    /// Run the loop until `done` says so, no event source has anything
    /// left (virtual clock), or the wall limit passes. Returns the run's
    /// stats; cumulative stats stay on the reactor.
    pub fn run_until(&mut self, mut done: impl FnMut(&[ConnWorker]) -> bool) -> ReactorStats {
        let start = self.clock.now();
        // Prologue, as the simulator rig does it: apply faults due at the
        // start instant and drain the initial transmissions (SYNs, the
        // first data the sender already queued) — no deadline sweep yet.
        self.poll_faults(start);
        self.pump_transmit(start);
        if self.clock.is_wall() {
            self.run_wall(&mut done)
        } else {
            self.run_virtual(&mut done)
        }
    }

    /// Virtual-clock flavor: jump instant-to-instant, mirroring
    /// `MpChaosRig::run` iteration-for-iteration.
    fn run_virtual(&mut self, done: &mut impl FnMut(&[ConnWorker]) -> bool) -> ReactorStats {
        let mut guard = 0u64;
        loop {
            guard += 1;
            if guard > GUARD_MAX || done(&self.workers) {
                break;
            }
            let timer = self.next_deadline();
            let pkt = self.transport.next_wakeup();
            let next = match (pkt, timer) {
                (Some(p), Some(t)) => p.min(t),
                (Some(p), None) => p,
                (None, Some(t)) => t,
                (None, None) => break,
            };
            if next > self.wall_limit {
                break;
            }
            let now = self.clock.advance_to(next);
            self.stats.iterations += 1;
            self.poll_faults(now);
            self.deliver_one(now);
            for w in &mut self.workers {
                w.conn.on_deadline(now);
            }
            self.pump_transmit(now);
        }
        self.stats.finished_at = self.clock.now();
        self.stats
    }

    /// Wall-clock flavor: the same settle discipline, but readiness is
    /// polled at a bounded sleep cadence (sockets can't announce their
    /// next arrival) and every iteration drives the [`Clocked`] replay —
    /// wall ticks and virtual ticks land in the identical code path.
    fn run_wall(&mut self, done: &mut impl FnMut(&[ConnWorker]) -> bool) -> ReactorStats {
        loop {
            if done(&self.workers) {
                break;
            }
            let now = self.clock.now();
            if now > self.wall_limit {
                break;
            }
            self.stats.iterations += 1;
            self.poll_faults(now);
            let progressed = self.deliver_one(now);
            for w in &mut self.workers {
                w.conn.clock_tick(now);
                w.conn.on_deadline(now);
            }
            self.pump_transmit(now);
            if !progressed {
                // Nothing arrived: sleep toward the next known deadline,
                // capped so socket readiness is re-checked promptly.
                let target = self
                    .next_deadline()
                    .into_iter()
                    .chain(self.transport.next_wakeup())
                    .min()
                    .unwrap_or(now + MAX_WALL_SLEEP)
                    .min(now + MAX_WALL_SLEEP)
                    .max(now + SimDuration::from_micros(50));
                self.clock.advance_to(target);
            }
        }
        self.stats.finished_at = self.clock.now();
        self.stats
    }

    /// Stats accumulated so far.
    pub fn stats(&self) -> ReactorStats {
        self.stats
    }
}

/// Fault application: plan targets map to transport paths by the
/// WiFi-first convention ([`FaultTarget::path_index`]), interface faults
/// optionally notify every stack — the same semantics `MpChaosRig` gives
/// the simulator.
impl<T: Transport> Reactor<T> {
    fn target_paths(&mut self, target: FaultTarget) -> std::ops::Range<usize> {
        let n = self.transport.paths_mut().len();
        match target.path_index() {
            Some(idx) if idx < n => idx..idx + 1,
            Some(_) => 0..0,
            None => 0..n,
        }
    }
}

impl<T: Transport> emptcp_faults::FaultSurface for Reactor<T> {
    fn set_iface_up(&mut self, now: SimTime, target: FaultTarget, up: bool) {
        for idx in self.target_paths(target) {
            self.transport.paths_mut()[idx].set_up(up);
            if self.notify_link_down {
                for w in &mut self.workers {
                    w.conn.set_subflow_link_up(now, SubflowId(idx as u8), up);
                }
            }
        }
    }

    fn set_rate(&mut self, _now: SimTime, target: FaultTarget, rate_bps: Option<u64>) {
        // Shaped paths are delay-based (no serializer): only the
        // rate-zero silent blackhole is meaningful, as in the sim rig.
        for idx in self.target_paths(target) {
            self.transport.paths_mut()[idx].set_rate_zero(rate_bps == Some(0));
        }
    }

    fn set_loss(&mut self, _now: SimTime, target: FaultTarget, model: Option<LossModel>) {
        for idx in self.target_paths(target) {
            let path = &mut self.transport.paths_mut()[idx];
            let nominal = path.nominal_loss();
            path.loss.set_model(model.unwrap_or(nominal));
        }
    }

    fn set_extra_delay(&mut self, _now: SimTime, target: FaultTarget, extra: Option<SimDuration>) {
        for idx in self.target_paths(target) {
            self.transport.paths_mut()[idx].extra_delay = extra.unwrap_or(SimDuration::ZERO);
        }
    }
}
