//! In-process UDP smoke: a serve/connect pair over real localhost
//! sockets, one thread per side — the same code path the `simulate
//! serve`/`simulate connect` CLI runs across two processes.

use emptcp_live::{run_connect, run_serve, SessionConfig};
use emptcp_sim::SimTime;

const SIZE: u64 = 256 * 1024;

#[test]
fn serve_connect_transfer_over_localhost_udp() {
    let mut serve_cfg = SessionConfig::new(47310, SIZE);
    serve_cfg.wall_limit = SimTime::from_secs(20);
    let server = std::thread::spawn(move || run_serve(&serve_cfg));

    let mut connect_cfg = SessionConfig::new(47320, SIZE);
    connect_cfg.peer = Some("127.0.0.1:47310".parse().unwrap());
    connect_cfg.wall_limit = SimTime::from_secs(20);
    let client = run_connect(&connect_cfg).expect("connect side ran");
    let server = server
        .join()
        .expect("serve thread")
        .expect("serve side ran");

    assert!(client.complete, "client delivered everything: {client:?}");
    assert!(server.complete, "server saw everything ACKed: {server:?}");
    assert_eq!(client.bytes, SIZE);
    assert!(
        client.wifi > 0 && client.cellular > 0,
        "both subflows carried data (wifi {}, cellular {})",
        client.wifi,
        client.cellular
    );
    assert!(client.datagrams_received > 0 && server.datagrams_received > 0);
}
