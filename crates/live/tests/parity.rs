//! Sim/live parity certification — the tier-1 contract of this crate.
//!
//! Each test scripts identical input into both backends (the simulator's
//! `MpChaosRig` loop and the live reactor over the duplex transport) and
//! demands the transport-decision logs match event-for-event. A parity
//! failure prints the first divergence with context, which in practice
//! names the exact protocol decision one engine made differently.

use emptcp_faults::{FaultAction, FaultPlan, FaultTarget};
use emptcp_live::{certify, run_script, Backend, ChaosPath, ParityScript};
use emptcp_sim::{SimDuration, SimTime};

fn assert_parity(script: &ParityScript) -> emptcp_live::ParityReport {
    match certify(script) {
        Ok(report) => report,
        Err(diff) => panic!("parity broken:\n{diff}"),
    }
}

#[test]
fn clean_transfer_matches_event_for_event() {
    let report = assert_parity(&ParityScript::two_path(42, 512 * 1024));
    assert_eq!(report.delivered, 512 * 1024);
    assert!(report.events > 100, "decision log is non-trivial");
    assert!(report.delivered_wifi > 0, "wifi subflow carried data");
    assert!(
        report.delivered_cellular > 0,
        "cellular subflow carried data"
    );
}

#[test]
fn lossy_jittery_paths_match_event_for_event() {
    // Loss and jitter exercise the RNG-coupled shaping draws — the
    // draw-order contract between ChaosNet and DuplexTransport — plus
    // retransmission and SACK paths in the stacks.
    let mut script = ParityScript::two_path(7, 256 * 1024);
    script.paths = vec![
        ChaosPath::new(0.02, SimDuration::from_millis(12), 3),
        ChaosPath::new(0.05, SimDuration::from_millis(35), 8),
    ];
    let report = assert_parity(&script);
    assert_eq!(report.delivered, 256 * 1024);
    assert!(report.delivered_wifi > 0 && report.delivered_cellular > 0);
}

#[test]
fn faulted_run_matches_event_for_event() {
    // A WiFi blackout mid-transfer plus a cellular blackhole window:
    // exercises the FaultSurface implementations on both engines,
    // including link-down notification and silent rate-zero drops.
    let mut script = ParityScript::two_path(1234, 384 * 1024);
    script.faults = FaultPlan::new()
        .blackout(
            FaultTarget::Wifi,
            SimTime::from_millis(150),
            SimDuration::from_millis(400),
        )
        .at(
            SimTime::from_millis(900),
            FaultTarget::Cellular,
            FaultAction::Rate(Some(0)),
        )
        .at(
            SimTime::from_millis(1100),
            FaultTarget::Cellular,
            FaultAction::Rate(None),
        );
    let report = assert_parity(&script);
    assert_eq!(report.delivered, 384 * 1024);
}

#[test]
fn unnotified_blackout_matches_via_rto_discovery() {
    // With link notifications off, both engines must discover the dead
    // path the hard way (RTO backoff) on exactly the same schedule.
    let mut script = ParityScript::two_path(99, 128 * 1024);
    script.notify_link_down = false;
    script.faults = FaultPlan::new().blackout(
        FaultTarget::Wifi,
        SimTime::from_millis(100),
        SimDuration::from_millis(600),
    );
    let report = assert_parity(&script);
    assert_eq!(report.delivered, 128 * 1024);
}

#[test]
fn live_backend_alone_is_deterministic() {
    // Same script, two live runs: byte-identical decision logs. This is
    // weaker than parity but pins the reactor itself (not just its
    // agreement with the rig).
    let script = ParityScript::two_path(5, 64 * 1024);
    let a = run_script(Backend::Live, &script);
    let b = run_script(Backend::Live, &script);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.delivered, b.delivered);
}
