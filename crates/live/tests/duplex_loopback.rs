//! Duplex-transport loopback suite: the live engine exercised end to end
//! in-process — connection setup, loss recovery, subflow failover — plus
//! a property test that scripted runs are exactly reproducible.

use emptcp_faults::{FaultPlan, FaultTarget};
use emptcp_live::{run_script, Backend, ChaosPath, ParityScript};
use emptcp_sim::{SimDuration, SimTime};
use proptest::prelude::*;

#[test]
fn connection_setup_over_duplex() {
    // A tiny transfer forces both subflow handshakes to complete.
    let script = ParityScript::two_path(11, 4 * 1428);
    let out = run_script(Backend::Live, &script);
    assert_eq!(out.delivered, 4 * 1428);
    let stats = out.stats.expect("live run has stats");
    assert!(stats.arrivals > 0 && stats.sends > 0);
}

#[test]
fn retransmits_recover_injected_loss() {
    // 8% loss on WiFi: completion is only possible if RTO/SACK recovery
    // actually replaces the shaped-away frames.
    let mut script = ParityScript::two_path(21, 128 * 1024);
    script.paths = vec![
        ChaosPath::new(0.08, SimDuration::from_millis(10), 2),
        ChaosPath::new(0.0, SimDuration::from_millis(30), 0),
    ];
    let out = run_script(Backend::Live, &script);
    assert_eq!(
        out.delivered,
        128 * 1024,
        "loss recovery completed the transfer"
    );
}

#[test]
fn failover_survives_a_dead_wifi_path() {
    // WiFi dies early and never comes back: the remaining bytes must ride
    // cellular alone.
    let mut script = ParityScript::two_path(31, 96 * 1024);
    script.faults = FaultPlan::new().at(
        SimTime::from_millis(80),
        FaultTarget::Wifi,
        emptcp_faults::FaultAction::IfaceDown,
    );
    let out = run_script(Backend::Live, &script);
    assert_eq!(out.delivered, 96 * 1024, "transfer survived the failover");
    assert!(
        out.delivered_cellular > out.delivered_wifi,
        "cellular carried the bulk after the wifi death \
         (wifi {} vs cellular {})",
        out.delivered_wifi,
        out.delivered_cellular
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any scripted duplex run is exactly reproducible: same timing
    /// script, same decision log — byte-for-byte, timestamp-for-
    /// timestamp. This is the determinism contract the live backend
    /// inherits from the simulator.
    #[test]
    fn scripted_runs_are_reproducible(
        seed in 0u64..1_000_000,
        loss_a in 0.0f64..0.1,
        loss_b in 0.0f64..0.1,
        delay_a_ms in 1u64..40,
        delay_b_ms in 1u64..80,
        jitter_ms in 0u64..6,
        kib in 8u64..128,
    ) {
        let mut script = ParityScript::two_path(seed, kib * 1024);
        script.paths = vec![
            ChaosPath::new(loss_a, SimDuration::from_millis(delay_a_ms), jitter_ms),
            ChaosPath::new(loss_b, SimDuration::from_millis(delay_b_ms), jitter_ms),
        ];
        let a = run_script(Backend::Live, &script);
        let b = run_script(Backend::Live, &script);
        prop_assert_eq!(a.delivered, b.delivered);
        prop_assert_eq!(a.decisions.len(), b.decisions.len());
        prop_assert!(a.decisions == b.decisions, "decision logs diverge");
    }
}
