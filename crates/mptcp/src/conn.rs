//! The MPTCP connection: DSS reassembly, scheduling, coupling, reinjection.
//!
//! One [`MpConnection`] is one side (client or server) of one MPTCP
//! connection. It owns its subflows and exposes the same poll-style surface
//! they do:
//!
//! * [`MpConnection::write`] — append connection-level data to send,
//! * [`MpConnection::poll_transmit`] — next `(subflow, segment)` to emit
//!   (the minRTT scheduler maps fresh data onto subflows here),
//! * [`MpConnection::on_segment`] — feed an arriving segment to its
//!   subflow, translate newly delivered subflow bytes back to data-sequence
//!   space, and reassemble the connection stream,
//! * [`MpConnection::on_deadline`] / [`MpConnection::next_deadline`] —
//!   subflow timers; a subflow RTO triggers opportunistic reinjection of
//!   its unacknowledged data onto the surviving subflows.
//!
//! LIA coupling (RFC 6356) is refreshed on every poll: the connection
//! computes `alpha` across its established subflows and pushes it into each
//! subflow's congestion controller.

use crate::sched::{pick_subflow, pick_subflow_detailed};
use crate::subflow::{Subflow, SubflowId};
use emptcp_phy::IfaceKind;
use emptcp_sim::{Clocked, SimDuration, SimTime};
use emptcp_tcp::cc::lia_alpha;
use emptcp_tcp::{Segment, TcpConfig, TcpState};
use emptcp_telemetry::{TelemetryScope, TraceEvent, DELIVERED_EMIT_BYTES};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Which side of the connection this object is.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Role {
    /// The mobile device: initiates subflows, mostly receives.
    Client,
    /// The wired server: accepts subflows, mostly sends.
    Server,
}

/// Summary of a connection's failure-recovery activity: how often subflows
/// failed, how much data was rescued onto surviving paths, and how quickly
/// the connection-level stream resumed after a failure.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Subflows declared dead by the consecutive-RTO detector.
    pub subflow_failures: u64,
    /// Link-down notifications received from the host.
    pub link_down_events: u64,
    /// Times a batch of unacked data was queued for reinjection.
    pub reinjection_events: u64,
    /// Total data-level bytes queued for reinjection on surviving subflows.
    pub bytes_reinjected: u64,
    /// Backup subflows promoted to regular because no regular path survived.
    pub backup_promotions: u64,
    /// Dead subflows that came back (link restored or acks resumed).
    pub revivals: u64,
    /// Worst observed failure-to-progress latency: from a failure event to
    /// the next connection-level stream advance, in nanoseconds.
    pub worst_recovery_latency_ns: Option<u64>,
}

impl RecoveryStats {
    /// The worst observed recovery latency, if any failure happened.
    pub fn worst_recovery_latency(&self) -> Option<SimDuration> {
        self.worst_recovery_latency_ns.map(SimDuration::from_nanos)
    }

    fn note_latency(&mut self, latency: SimDuration) {
        let ns = latency.as_nanos();
        if self.worst_recovery_latency_ns.is_none_or(|w| ns > w) {
            self.worst_recovery_latency_ns = Some(ns);
        }
    }

    /// Merge another side's stats (latency keeps the worst of the two).
    pub fn absorb(&mut self, other: &RecoveryStats) {
        self.subflow_failures += other.subflow_failures;
        self.link_down_events += other.link_down_events;
        self.reinjection_events += other.reinjection_events;
        self.bytes_reinjected += other.bytes_reinjected;
        self.backup_promotions += other.backup_promotions;
        self.revivals += other.revivals;
        if let Some(ns) = other.worst_recovery_latency_ns {
            self.note_latency(SimDuration::from_nanos(ns));
        }
    }
}

/// What [`MpConnection::on_segment`] produced.
#[derive(Clone, Debug, Default)]
pub struct MpSegmentOutcome {
    /// Connection-level bytes newly delivered in order.
    pub delivered_bytes: u64,
    /// The subflow's handshake completed during this call.
    pub established_now: bool,
    /// MP_PRIO received on this subflow (`Some(backup)`).
    pub mp_prio: Option<bool>,
}

/// One side of an MPTCP connection.
#[derive(Clone, Debug)]
pub struct MpConnection {
    role: Role,
    tcp_cfg: TcpConfig,
    subflows: Vec<Subflow>,

    // --- connection-level send state ---
    data_written: u64,
    data_next: u64,
    reinject: VecDeque<(u64, u32)>,
    data_acked: u64,

    // --- connection-level receive state ---
    data_rcv_nxt: u64,
    data_ooo: BTreeMap<u64, u32>,
    data_delivered: u64,
    /// Delivered bytes not yet reported as a [`TraceEvent::Delivered`];
    /// drained every [`DELIVERED_EMIT_BYTES`] and by
    /// [`flush_delivered_trace`](Self::flush_delivered_trace).
    delivered_since_emit: u64,

    /// Graceful close requested: once every written byte is scheduled and
    /// acknowledged, FINs go out on all subflows (the DATA_FIN analogue).
    closing: bool,
    /// Couple subflow congestion windows with LIA (true = standard MPTCP).
    coupled: bool,
    /// Opportunistic reinjection (Raiciu et al. [29]): when a subflow's
    /// oldest unacked data stalls for ~2 RTT while another subflow could
    /// carry it, re-map it there instead of waiting for the RTO.
    opportunistic: bool,
    /// Last LIA recomputation (rate-limited: alpha moves on RTT timescales,
    /// recomputing per segment is pure overhead).
    lia_refreshed_at: SimTime,
    /// The last [`poll_transmit`](Self::poll_transmit) pass came up empty
    /// and nothing has touched the connection since. A repeat poll can
    /// replay only the clock-driven effects of a full pass (LIA refresh
    /// and RFC 2861 idle validation) and return `None` directly; every
    /// mutating entry point clears this.
    quiescent: bool,
    /// Consecutive RTO expirations (without `snd_una` progress) after which
    /// a subflow is declared dead.
    failure_threshold: u64,
    /// Failure-recovery bookkeeping.
    recovery: RecoveryStats,
    /// An unresolved failure: when it happened and the connection-level
    /// progress mark (`max(data_acked, data_delivered)`) at that instant.
    /// Resolved — and the latency recorded — when the mark advances.
    recovery_pending: Option<(SimTime, u64)>,
    /// Telemetry scope for connection-level events; propagated to subflow
    /// TCP endpoints (labelled with their subflow id) when attached.
    scope: TelemetryScope,
}

impl MpConnection {
    /// Create one side of a connection. `tcp_cfg` applies to every subflow.
    pub fn new(role: Role, tcp_cfg: TcpConfig) -> Self {
        MpConnection {
            role,
            tcp_cfg,
            subflows: Vec::new(),
            data_written: 0,
            data_next: 0,
            reinject: VecDeque::new(),
            data_acked: 0,
            data_rcv_nxt: 0,
            data_ooo: BTreeMap::new(),
            data_delivered: 0,
            delivered_since_emit: 0,
            closing: false,
            coupled: true,
            opportunistic: true,
            lia_refreshed_at: SimTime::ZERO,
            quiescent: false,
            failure_threshold: 3,
            recovery: RecoveryStats::default(),
            recovery_pending: None,
            scope: TelemetryScope::disabled(),
        }
    }

    /// Consecutive RTO expirations after which a subflow is declared dead
    /// (default 3; Linux's TCP-level equivalent is conceptually
    /// `net.ipv4.tcp_retries2`, scaled down to simulation timescales).
    pub fn set_failure_threshold(&mut self, rtos: u64) {
        self.quiescent = false;
        self.failure_threshold = rtos.max(1);
    }

    /// Failure-recovery summary for this side of the connection.
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Attach a telemetry scope. Connection-level events (scheduler picks,
    /// subflow lifecycle, MP_PRIO) report under it; each subflow's TCP
    /// endpoint gets a copy labelled with its subflow id.
    pub fn set_telemetry(&mut self, scope: TelemetryScope) {
        self.quiescent = false;
        for sf in &mut self.subflows {
            sf.tcp.set_telemetry(scope.with_subflow(sf.id.0));
        }
        self.scope = scope;
    }

    /// Disable LIA coupling (each subflow runs plain Reno). Used by
    /// ablation benches.
    pub fn set_coupled(&mut self, coupled: bool) {
        self.quiescent = false;
        self.coupled = coupled;
    }

    /// Toggle opportunistic reinjection (on by default, as in Linux MPTCP).
    pub fn set_opportunistic(&mut self, enabled: bool) {
        self.quiescent = false;
        self.opportunistic = enabled;
    }

    /// This side's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Add a subflow on `iface`. The client actively opens it (SYN emitted
    /// on the next poll); the server side listens. Returns its id.
    pub fn add_subflow(&mut self, now: SimTime, iface: IfaceKind) -> SubflowId {
        self.quiescent = false;
        let id = SubflowId(self.subflows.len() as u8);
        let mut sf = match self.role {
            Role::Client => Subflow::client(id, iface, self.tcp_cfg),
            Role::Server => Subflow::listener(id, iface, self.tcp_cfg),
        };
        sf.tcp.set_telemetry(self.scope.with_subflow(id.0));
        if self.role == Role::Client {
            sf.tcp.connect(now);
        }
        self.subflows.push(sf);
        id
    }

    /// All subflows.
    pub fn subflows(&self) -> &[Subflow] {
        &self.subflows
    }

    /// A subflow by id.
    pub fn subflow(&self, id: SubflowId) -> &Subflow {
        &self.subflows[id.0 as usize]
    }

    /// A subflow by id, mutable.
    pub fn subflow_mut(&mut self, id: SubflowId) -> &mut Subflow {
        self.quiescent = false;
        &mut self.subflows[id.0 as usize]
    }

    /// True once at least one subflow finished its handshake.
    pub fn established(&self) -> bool {
        self.subflows
            .iter()
            .any(|sf| sf.tcp.state() == TcpState::Established)
    }

    /// Append `bytes` to the connection-level send stream.
    pub fn write(&mut self, bytes: u64) {
        self.quiescent = false;
        assert!(!self.closing, "write after close");
        self.data_written += bytes;
    }

    /// Request a graceful close: once all written data is scheduled and
    /// acknowledged, every subflow sends its FIN.
    pub fn close(&mut self) {
        self.quiescent = false;
        self.closing = true;
    }

    /// True once this side requested close, everything it wrote was
    /// acknowledged, and its FINs are queued on every subflow.
    pub fn close_sent(&self) -> bool {
        self.closing && self.data_acked >= self.data_written && self.all_data_scheduled()
    }

    /// True once every subflow has received the peer's FIN (the peer is
    /// done sending).
    pub fn peer_closed(&self) -> bool {
        !self.subflows.is_empty()
            && self
                .subflows
                .iter()
                .all(|sf| sf.tcp.fin_received() || sf.tcp.state() != TcpState::Established)
    }

    /// Total connection-level bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.data_written
    }

    /// Connection-level bytes delivered in order to the application.
    pub fn bytes_delivered(&self) -> u64 {
        self.data_delivered
    }

    /// Emit any delivered bytes still below the coalescing threshold as a
    /// final [`TraceEvent::Delivered`], so trace totals match
    /// [`bytes_delivered`](Self::bytes_delivered) exactly. Hosts call this
    /// once when a run ends; subflow 0 stands in for "whole connection".
    pub fn flush_delivered_trace(&mut self, now: SimTime) {
        self.quiescent = false;
        if self.delivered_since_emit > 0 {
            let bytes = self.delivered_since_emit;
            self.delivered_since_emit = 0;
            self.scope.emit(now, |s| TraceEvent::Delivered {
                conn: s.conn,
                subflow: 0,
                bytes,
            });
        }
    }

    /// Highest cumulative data-level acknowledgment seen from the peer.
    pub fn bytes_acked(&self) -> u64 {
        self.data_acked
    }

    /// Bytes delivered in order over subflows riding `iface` — the
    /// per-interface counters the bandwidth predictor samples (§3.2).
    pub fn delivered_by_iface(&self, iface: IfaceKind) -> u64 {
        self.subflows
            .iter()
            .filter(|sf| sf.iface == iface)
            .map(|sf| sf.tcp.bytes_delivered_total())
            .sum()
    }

    /// Bytes this side sent and had acknowledged over subflows riding
    /// `iface` — the upload-direction counterpart of
    /// [`delivered_by_iface`](Self::delivered_by_iface).
    pub fn acked_by_iface(&self, iface: IfaceKind) -> u64 {
        self.subflows
            .iter()
            .filter(|sf| sf.iface == iface)
            .map(|sf| sf.tcp.bytes_acked_total())
            .sum()
    }

    /// Locally set a subflow's priority and tell the peer via MP_PRIO
    /// (§3.6: "eMPTCP adds an MP_PRIO option, which changes the priority of
    /// subflows, to the next packet to be transmitted").
    pub fn set_subflow_priority(&mut self, now: SimTime, id: SubflowId, backup: bool) {
        self.quiescent = false;
        let sf = &mut self.subflows[id.0 as usize];
        if sf.backup == backup {
            return;
        }
        sf.backup = backup;
        sf.tcp.send_mp_prio(now, backup);
        self.scope.emit(now, |s| TraceEvent::MpPrio {
            conn: s.conn,
            subflow: id.0,
            backup,
        });
    }

    /// Apply the §3.6 resume tweaks to a subflow being re-enabled.
    pub fn prepare_subflow_resume(&mut self, id: SubflowId) {
        self.quiescent = false;
        self.subflows[id.0 as usize].prepare_resume();
    }

    /// Mark a subflow's underlying link up or down (interface loss, e.g. a
    /// WiFi disassociation). Going down immediately queues its unacked data
    /// for reinjection on the surviving subflows and, if no regular subflow
    /// survives, promotes the best backup. Coming back up clears failure
    /// state so the subflow is immediately schedulable again.
    pub fn set_subflow_link_up(&mut self, now: SimTime, id: SubflowId, up: bool) {
        self.quiescent = false;
        let idx = id.0 as usize;
        if self.subflows[idx].link_down != up {
            return;
        }
        self.subflows[idx].link_down = !up;
        if !up {
            self.scope.emit(now, |s| TraceEvent::SubflowClosed {
                conn: s.conn,
                subflow: id.0,
                reason: "link_down",
            });
            self.recovery.link_down_events += 1;
            self.reinject_unacked(idx);
            self.begin_recovery(now);
            self.promote_backup_if_stranded(now);
        } else {
            self.subflows[idx].consecutive_rtos = 0;
            if self.subflows[idx].dead {
                self.revive(now, idx, "link_restored");
            }
        }
    }

    /// Queue subflow `idx`'s unacknowledged data ranges for reinjection on
    /// the surviving subflows; returns the bytes queued. A single-subflow
    /// connection has nowhere to reinject to.
    fn reinject_unacked(&mut self, idx: usize) -> u64 {
        if self.subflows.len() < 2 {
            return 0;
        }
        let mut bytes = 0u64;
        for range in self.subflows[idx].unacked_data_ranges() {
            bytes += range.1 as u64;
            self.reinject.push_back(range);
        }
        if bytes > 0 {
            self.recovery.reinjection_events += 1;
            self.recovery.bytes_reinjected += bytes;
        }
        bytes
    }

    /// Start the recovery-latency clock unless a failure is already pending.
    fn begin_recovery(&mut self, now: SimTime) {
        if self.recovery_pending.is_none() {
            let progress = self.data_acked.max(self.data_delivered);
            self.recovery_pending = Some((now, progress));
        }
    }

    /// If no regular subflow is usable but a backup is, promote the best
    /// backup (lowest RTT, then lowest id) to regular and tell the peer via
    /// MP_PRIO — graceful degradation instead of riding the scheduler's
    /// backup fallback with a peer that still believes the path is backup.
    fn promote_backup_if_stranded(&mut self, now: SimTime) {
        if self.subflows.iter().any(|sf| !sf.backup && sf.usable()) {
            return;
        }
        let Some(idx) = self
            .subflows
            .iter()
            .enumerate()
            .filter(|(_, sf)| sf.backup && sf.usable())
            .min_by_key(|(i, sf)| (sf.tcp.rtt().srtt_or_zero(), *i))
            .map(|(i, _)| i)
        else {
            return;
        };
        let id = self.subflows[idx].id;
        self.set_subflow_priority(now, id, false);
        self.recovery.backup_promotions += 1;
        self.scope.emit(now, |s| TraceEvent::BackupPromoted {
            conn: s.conn,
            subflow: id.0,
        });
    }

    /// Declare subflow `idx` dead after crossing the consecutive-RTO
    /// threshold. Its stranded data was already queued by the caller.
    fn declare_dead(&mut self, now: SimTime, idx: usize, reinjected_bytes: u64) {
        self.subflows[idx].dead = true;
        let (id, rtos) = (self.subflows[idx].id, self.subflows[idx].consecutive_rtos);
        self.scope.emit(now, |s| TraceEvent::SubflowDead {
            conn: s.conn,
            subflow: id.0,
            reason: "rto_threshold",
            consecutive_rtos: rtos,
            reinjected_bytes,
        });
        self.recovery.subflow_failures += 1;
        self.begin_recovery(now);
        self.promote_backup_if_stranded(now);
    }

    /// A dead subflow produced evidence of life; put it back in service.
    fn revive(&mut self, now: SimTime, idx: usize, reason: &'static str) {
        self.subflows[idx].dead = false;
        self.subflows[idx].consecutive_rtos = 0;
        self.recovery.revivals += 1;
        let id = self.subflows[idx].id;
        self.scope.emit(now, |s| TraceEvent::SubflowRevived {
            conn: s.conn,
            subflow: id.0,
            reason,
        });
    }

    /// The earliest pending timer across subflows.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.subflows
            .iter()
            .filter_map(|sf| sf.tcp.next_deadline())
            .min()
    }

    /// Fire due subflow timers; RTOs trigger reinjection of the victim's
    /// unacknowledged data so another subflow can carry it, and stalled
    /// subflows trigger opportunistic reinjection a couple of RTTs earlier.
    /// Crossing the consecutive-RTO threshold declares the subflow dead.
    pub fn on_deadline(&mut self, now: SimTime) {
        self.quiescent = false;
        for idx in 0..self.subflows.len() {
            self.subflows[idx].tcp.on_deadline(now);
            let timeouts = self.subflows[idx].tcp.timeouts();
            if timeouts > self.subflows[idx].seen_timeouts {
                let fired = timeouts - self.subflows[idx].seen_timeouts;
                self.subflows[idx].seen_timeouts = timeouts;
                self.subflows[idx].consecutive_rtos += fired;
                let bytes = self.reinject_unacked(idx);
                if !self.subflows[idx].dead
                    && self.subflows.len() > 1
                    && self.subflows[idx].consecutive_rtos >= self.failure_threshold
                {
                    self.declare_dead(now, idx, bytes);
                }
            }
        }
        if self.opportunistic {
            self.check_stalls(now);
        }
    }

    /// Opportunistic reinjection: a subflow whose cumulative ack has not
    /// moved for roughly two of its RTTs while holding data, with another
    /// subflow able to take it, gets its unacked ranges re-mapped — once
    /// per stall.
    fn check_stalls(&mut self, now: SimTime) {
        if self.subflows.len() < 2 {
            return;
        }
        for idx in 0..self.subflows.len() {
            let sf = &mut self.subflows[idx];
            let una = sf.tcp.snd_una();
            if una != sf.stall_una {
                sf.stall_una = una;
                sf.stall_since = now;
                sf.reinjected_una = None;
                continue;
            }
            if sf.tcp.bytes_in_flight() == 0 || sf.reinjected_una == Some(una) {
                continue;
            }
            let rtt = sf.tcp.rtt().srtt_or_zero();
            let threshold = (rtt * 2).max(SimDuration::from_millis(300));
            if now.saturating_since(sf.stall_since) < threshold {
                continue;
            }
            let others_can_carry = self
                .subflows
                .iter()
                .enumerate()
                .any(|(j, other)| j != idx && other.can_take_data());
            if !others_can_carry {
                continue;
            }
            self.subflows[idx].reinjected_una = Some(una);
            self.reinject_unacked(idx);
        }
    }

    fn update_lia(&mut self, now: SimTime) {
        if !self.coupled || self.subflows.len() < 2 {
            return;
        }
        // Alpha changes on RTT timescales; refresh at most every 10 ms.
        if now.saturating_since(self.lia_refreshed_at) < SimDuration::from_millis(10)
            && self.lia_refreshed_at > SimTime::ZERO
        {
            return;
        }
        self.lia_refreshed_at = now;
        let mut flows: [(u64, f64); 8] = [(0, 0.0); 8];
        let mut n = 0;
        for sf in &self.subflows {
            if sf.tcp.state() == TcpState::Established && n < flows.len() {
                flows[n] = (
                    sf.tcp.cc().cwnd(),
                    sf.tcp.rtt().srtt_or_zero().as_secs_f64(),
                );
                n += 1;
            }
        }
        if n < 2 {
            return;
        }
        let alpha = lia_alpha(&flows[..n]);
        let total: u64 = flows[..n].iter().map(|&(c, _)| c).sum();
        for sf in &mut self.subflows {
            sf.tcp.set_lia(alpha, total);
        }
    }

    /// Next segment to put on the wire, tagged with its subflow.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<(SubflowId, Segment)> {
        if self.quiescent {
            // Nothing has touched the connection since a poll came up
            // empty: a full pass could only replay its clock-driven side
            // effects, which is exactly the `Clocked` contract.
            self.clock_tick(now);
            return None;
        }
        self.update_lia(now);
        // Graceful close: once the stream is fully scheduled and
        // acknowledged, queue FINs (idempotent at the TCP layer).
        if self.close_sent() {
            for sf in &mut self.subflows {
                if sf.tcp.state() == TcpState::Established && !sf.tcp.fin_queued() {
                    sf.tcp.close();
                }
            }
        }
        // 1. Anything the subflow TCP machines already want to say
        //    (handshake, ACKs, retransmissions, previously scheduled data).
        for idx in 0..self.subflows.len() {
            let data_ack = self.data_rcv_nxt;
            let sf = &mut self.subflows[idx];
            if let Some(mut seg) = sf.tcp.poll_transmit(now) {
                sf.decorate(&mut seg, data_ack);
                return Some((sf.id, seg));
            }
        }
        // 2. Schedule fresh (or reinjected) connection data.
        let Some((data_seq, len)) = self.next_chunk() else {
            // Clean empty pass: no pending chunk, and every subflow was
            // walked above without emitting. A repeat poll is a no-op
            // until the next event touches the connection.
            self.quiescent = true;
            return None;
        };
        // The detailed pick (candidate set + reason) is only computed
        // when someone is listening; otherwise take the cheap path.
        let idx = if self.scope.enabled() {
            pick_subflow_detailed(&self.subflows).map(|d| {
                self.scope.emit(now, |s| TraceEvent::SchedPick {
                    conn: s.conn,
                    picked: self.subflows[d.picked].id.0,
                    candidates: d.candidates.clone(),
                    reason: d.reason,
                    srtt_ns: d.srtt_ns,
                });
                d.picked
            })
        } else {
            pick_subflow(&self.subflows)
        };
        let Some(idx) = idx else {
            // Put an unconsumed reinjection chunk back. No subflow can
            // take data, and that can only change through an ack, timer,
            // or topology event — all of which clear the flag.
            self.unconsume_chunk(data_seq, len);
            self.quiescent = true;
            return None;
        };
        let data_ack = self.data_rcv_nxt;
        let sf = &mut self.subflows[idx];
        let take = (len as u64)
            .min(sf.tcp.config().mss as u64)
            .min(sf.send_room()) as u32;
        if take == 0 {
            self.unconsume_chunk(data_seq, len);
            return None;
        }
        if take < len {
            // Leave the remainder for the next pick.
            self.unconsume_chunk(data_seq + take as u64, len - take);
        }
        let sf = &mut self.subflows[idx];
        sf.push_data(data_seq, take);
        if let Some(mut seg) = sf.tcp.poll_transmit(now) {
            sf.decorate(&mut seg, data_ack);
            sf.gc_mappings();
            return Some((sf.id, seg));
        }
        // The subflow accepted the data but can't emit yet (shouldn't
        // happen given can_take_data); try other subflows next poll.
        None
    }

    /// The next chunk of data wanting transmission: reinjections first,
    /// then fresh stream bytes (up to one MSS).
    fn next_chunk(&mut self) -> Option<(u64, u32)> {
        while let Some((seq, len)) = self.reinject.pop_front() {
            // Skip reinjections the peer has since acknowledged.
            let end = seq + len as u64;
            if end <= self.data_acked {
                continue;
            }
            let start = seq.max(self.data_acked);
            return Some((start, (end - start) as u32));
        }
        if self.data_next < self.data_written {
            let len = (self.data_written - self.data_next).min(u32::MAX as u64) as u32;
            let seq = self.data_next;
            let take = len.min(65_535);
            self.data_next += take as u64;
            return Some((seq, take));
        }
        None
    }

    fn unconsume_chunk(&mut self, data_seq: u64, len: u32) {
        if data_seq + len as u64 == self.data_next && self.reinject.is_empty() {
            // Fresh data: simply rewind the cursor.
            self.data_next = data_seq;
        } else {
            self.reinject.push_front((data_seq, len));
        }
    }

    /// Feed an arriving segment to its subflow.
    pub fn on_segment(&mut self, now: SimTime, id: SubflowId, seg: Segment) -> MpSegmentOutcome {
        self.quiescent = false;
        let mut outcome = MpSegmentOutcome::default();
        let idx = id.0 as usize;
        assert!(idx < self.subflows.len(), "unknown subflow {id}");

        // Learn the data mapping before TCP-level processing so in-order
        // delivery can translate immediately.
        if let Some(dss) = seg.dss {
            self.subflows[idx].learn_mapping(seg.seq, dss);
            if dss.data_ack > self.data_acked {
                self.data_acked = dss.data_ack;
            }
        }
        let tcp_outcome = self.subflows[idx].tcp.on_segment(now, seg);
        outcome.established_now = tcp_outcome.established_now;
        outcome.mp_prio = tcp_outcome.mp_prio;

        // Any subflow-level ack progress resets failure detection; a dead
        // subflow producing progress is evidently alive again.
        let una = self.subflows[idx].tcp.snd_una();
        if una > self.subflows[idx].fd_una {
            self.subflows[idx].fd_una = una;
            self.subflows[idx].consecutive_rtos = 0;
            if self.subflows[idx].dead {
                self.revive(now, idx, "ack_progress");
            }
        }
        if outcome.established_now {
            let iface = self.subflows[idx].iface;
            self.scope.emit(now, |s| TraceEvent::SubflowEstablished {
                conn: s.conn,
                subflow: id.0,
                iface: iface.label(),
            });
        }
        if let Some(backup) = tcp_outcome.mp_prio {
            self.subflows[idx].backup = backup;
            self.scope.emit(now, |s| TraceEvent::MpPrio {
                conn: s.conn,
                subflow: id.0,
                backup,
            });
        }

        // Translate delivered subflow ranges to data space and reassemble.
        for range in &tcp_outcome.delivered {
            let translated = self.subflows[idx].translate_delivered(range.seq, range.len);
            debug_assert_eq!(
                translated.iter().map(|&(_, l)| l as u64).sum::<u64>(),
                range.len as u64,
                "delivered range with unmapped bytes"
            );
            for (data_seq, len) in translated {
                outcome.delivered_bytes += self.receive_data(data_seq, len);
            }
        }
        if outcome.delivered_bytes > 0 {
            let iface = self.subflows[idx].iface;
            self.scope.with_metrics(|s, m| {
                m.counter_add(
                    &format!("conn{}.iface.{}.rx_bytes", s.conn, iface.label()),
                    outcome.delivered_bytes,
                )
            });
            // Coalesced throughput signal for the observability pipeline:
            // one Delivered event per DELIVERED_EMIT_BYTES of progress,
            // attributed to the subflow whose segment completed the run.
            self.delivered_since_emit += outcome.delivered_bytes;
            if self.delivered_since_emit >= DELIVERED_EMIT_BYTES {
                let bytes = self.delivered_since_emit;
                self.delivered_since_emit = 0;
                self.scope.emit(now, |s| TraceEvent::Delivered {
                    conn: s.conn,
                    subflow: id.0,
                    bytes,
                });
            }
        }
        // DSS coverage: in-order delivery to the application must track the
        // data-level stream advance exactly (each byte exactly once).
        self.scope.check_invariants(now, |obs| {
            obs.check_dss_coverage(now, "mptcp", self.data_delivered, self.data_rcv_nxt);
        });
        // Resolve a pending failure once the connection-level stream moves
        // (on the sender that is a higher data-ack, on the receiver a
        // higher in-order delivery mark).
        if let Some((since, progress)) = self.recovery_pending {
            if self.data_acked.max(self.data_delivered) > progress {
                self.recovery.note_latency(now.saturating_since(since));
                self.recovery_pending = None;
            }
        }
        self.subflows[idx].gc_mappings();
        outcome
    }

    /// Insert `[data_seq, data_seq+len)` into the connection stream;
    /// returns bytes newly delivered in order.
    fn receive_data(&mut self, data_seq: u64, len: u32) -> u64 {
        let end = data_seq + len as u64;
        if end <= self.data_rcv_nxt {
            return 0; // duplicate (e.g. a reinjected copy)
        }
        let start = data_seq.max(self.data_rcv_nxt);
        if start > self.data_rcv_nxt {
            // Out of order at the data level: buffer (merging overlaps
            // conservatively by keeping the longer mapping).
            let keep = self.data_ooo.get(&start).map(|&l| l as u64).unwrap_or(0);
            if (end - start) > keep {
                self.data_ooo.insert(start, (end - start) as u32);
            }
            return 0;
        }
        let mut delivered = end - start;
        self.data_rcv_nxt = end;
        // Drain contiguous out-of-order data.
        while let Some((&s, &l)) = self.data_ooo.first_key_value() {
            if s > self.data_rcv_nxt {
                break;
            }
            self.data_ooo.remove(&s);
            let e = s + l as u64;
            if e > self.data_rcv_nxt {
                delivered += e - self.data_rcv_nxt;
                self.data_rcv_nxt = e;
            }
        }
        self.data_delivered += delivered;
        delivered
    }

    /// True when the sender side has pushed every written byte into some
    /// subflow.
    pub fn all_data_scheduled(&self) -> bool {
        self.data_next >= self.data_written && self.reinject.is_empty()
    }

    /// Idle test used by eMPTCP's §3.5: no subflow has sent or received
    /// anything within `window` of `now`.
    pub fn is_idle(&self, now: SimTime, window: SimDuration) -> bool {
        self.subflows
            .iter()
            .all(|sf| now.saturating_since(sf.last_activity()) > window)
    }
}

/// Clock-coupled side effects of an MPTCP connection: the LIA alpha
/// refresh (rate-limited to RTT timescales) and, per subflow, the TCP
/// endpoint's own [`Clocked`] replay (RFC 2861 idle validation). The
/// simulator reaches this through the quiescence fast path of
/// [`MpConnection::poll_transmit`]; the live reactor calls it directly on
/// wall-clock ticks — one code path, two engines.
impl Clocked for MpConnection {
    fn clock_tick(&mut self, now: SimTime) {
        self.update_lia(now);
        for sf in &mut self.subflows {
            sf.tcp.clock_tick(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HALF: SimDuration = SimDuration::from_millis(10);

    /// A loopback pair: client + server connections whose segments are
    /// carried with a fixed one-way delay per direction and optional drops.
    struct Pair {
        now: SimTime,
        client: MpConnection,
        server: MpConnection,
    }

    impl Pair {
        fn new(ifaces: &[IfaceKind]) -> Pair {
            let mut client = MpConnection::new(Role::Client, TcpConfig::default());
            let mut server = MpConnection::new(Role::Server, TcpConfig::default());
            let now = SimTime::ZERO;
            for &iface in ifaces {
                client.add_subflow(now, iface);
                server.add_subflow(now, iface);
            }
            Pair {
                now,
                client,
                server,
            }
        }

        /// One half-round: move every pending segment from `a` to `b`.
        fn flow(now: &mut SimTime, a: &mut MpConnection, b: &mut MpConnection) -> u64 {
            a.on_deadline(*now);
            let mut segs = Vec::new();
            while let Some(pair) = a.poll_transmit(*now) {
                segs.push(pair);
            }
            *now += HALF;
            b.on_deadline(*now);
            let mut delivered = 0;
            for (id, seg) in segs {
                delivered += b.on_segment(*now, id, seg).delivered_bytes;
            }
            delivered
        }

        /// Run rounds until the client delivered `total` bytes (or panic).
        fn run_until_delivered(&mut self, total: u64, max_rounds: usize) {
            for _ in 0..max_rounds {
                Pair::flow(&mut self.now, &mut self.server, &mut self.client);
                Pair::flow(&mut self.now, &mut self.client, &mut self.server);
                if self.client.bytes_delivered() >= total {
                    return;
                }
            }
            panic!(
                "stalled: delivered {} of {total}",
                self.client.bytes_delivered()
            );
        }
    }

    #[test]
    fn single_subflow_download() {
        let mut p = Pair::new(&[IfaceKind::Wifi]);
        p.server.write(500_000);
        p.run_until_delivered(500_000, 500);
        assert_eq!(p.client.bytes_delivered(), 500_000);
    }

    #[test]
    fn two_subflows_both_carry_data() {
        let mut p = Pair::new(&[IfaceKind::Wifi, IfaceKind::CellularLte]);
        p.server.write(3_000_000);
        p.run_until_delivered(3_000_000, 2000);
        let wifi = p.client.delivered_by_iface(IfaceKind::Wifi);
        let lte = p.client.delivered_by_iface(IfaceKind::CellularLte);
        assert!(wifi > 0, "wifi idle");
        assert!(lte > 0, "lte idle");
        assert_eq!(wifi + lte, 3_000_000);
    }

    #[test]
    fn data_ack_propagates_to_server() {
        let mut p = Pair::new(&[IfaceKind::Wifi]);
        p.server.write(100_000);
        p.run_until_delivered(100_000, 500);
        // A few more quiet rounds to flush the final data-ack.
        for _ in 0..4 {
            Pair::flow(&mut p.now, &mut p.client, &mut p.server);
            Pair::flow(&mut p.now, &mut p.server, &mut p.client);
        }
        assert_eq!(p.server.bytes_acked(), 100_000);
        assert!(p.server.all_data_scheduled());
    }

    #[test]
    fn mp_prio_suspends_subflow_at_sender() {
        let mut p = Pair::new(&[IfaceKind::Wifi, IfaceKind::CellularLte]);
        p.server.write(200_000);
        p.run_until_delivered(200_000, 1000);
        // Client marks LTE backup; a couple of rounds to propagate.
        p.client.set_subflow_priority(p.now, SubflowId(1), true);
        for _ in 0..4 {
            Pair::flow(&mut p.now, &mut p.client, &mut p.server);
            Pair::flow(&mut p.now, &mut p.server, &mut p.client);
        }
        assert!(p.server.subflow(SubflowId(1)).backup, "MP_PRIO not applied");
        // New data must ride WiFi exclusively.
        let lte_before = p.client.delivered_by_iface(IfaceKind::CellularLte);
        p.server.write(500_000);
        p.run_until_delivered(700_000, 1000);
        let lte_after = p.client.delivered_by_iface(IfaceKind::CellularLte);
        assert_eq!(lte_before, lte_after, "backup subflow carried new data");
    }

    #[test]
    fn idle_detection() {
        let mut p = Pair::new(&[IfaceKind::Wifi]);
        p.server.write(10_000);
        p.run_until_delivered(10_000, 200);
        assert!(!p.client.is_idle(p.now, SimDuration::from_secs(10)));
        let later = p.now + SimDuration::from_secs(60);
        assert!(p.client.is_idle(later, SimDuration::from_secs(10)));
    }

    #[test]
    fn uncoupled_mode_flag() {
        let mut c = MpConnection::new(Role::Client, TcpConfig::default());
        c.set_coupled(false);
        // Just exercising the flag; behaviour is covered by cc tests.
        assert_eq!(c.role(), Role::Client);
    }

    #[test]
    fn established_requires_handshake() {
        let mut p = Pair::new(&[IfaceKind::Wifi]);
        assert!(!p.client.established());
        Pair::flow(&mut p.now, &mut p.client, &mut p.server); // SYN
        Pair::flow(&mut p.now, &mut p.server, &mut p.client); // SYN-ACK
        assert!(p.client.established());
    }

    /// Blackhole subflow 1 after warm-up; return the completion time.
    fn blackhole_run(opportunistic: bool) -> SimTime {
        let mut p = Pair::new(&[IfaceKind::Wifi, IfaceKind::CellularLte]);
        p.client.set_opportunistic(opportunistic);
        p.server.set_opportunistic(opportunistic);
        p.server.write(1_000_000);
        for _ in 0..6 {
            Pair::flow(&mut p.now, &mut p.server, &mut p.client);
            Pair::flow(&mut p.now, &mut p.client, &mut p.server);
        }
        let mut rounds = 0;
        while p.client.bytes_delivered() < 1_000_000 && rounds < 6000 {
            rounds += 1;
            p.server.on_deadline(p.now);
            let mut segs = Vec::new();
            while let Some(pair) = p.server.poll_transmit(p.now) {
                segs.push(pair);
            }
            p.now += HALF;
            for (id, seg) in segs {
                if id != SubflowId(1) {
                    p.client.on_segment(p.now, id, seg);
                }
            }
            p.client.on_deadline(p.now);
            let mut acks = Vec::new();
            while let Some(pair) = p.client.poll_transmit(p.now) {
                acks.push(pair);
            }
            p.now += HALF;
            for (id, seg) in acks {
                if id != SubflowId(1) {
                    p.server.on_segment(p.now, id, seg);
                }
            }
        }
        assert_eq!(p.client.bytes_delivered(), 1_000_000, "stalled");
        p.now
    }

    #[test]
    fn opportunistic_reinjection_beats_rto_only() {
        let with = blackhole_run(true);
        let without = blackhole_run(false);
        assert!(
            with <= without,
            "opportunistic {with} should not be slower than RTO-only {without}"
        );
    }

    #[test]
    fn graceful_close_exchanges_fins() {
        let mut p = Pair::new(&[IfaceKind::Wifi, IfaceKind::CellularLte]);
        p.server.write(300_000);
        p.server.close();
        p.client.close();
        p.run_until_delivered(300_000, 1000);
        // A few extra rounds for the data-acks and FINs to settle.
        for _ in 0..30 {
            Pair::flow(&mut p.now, &mut p.client, &mut p.server);
            Pair::flow(&mut p.now, &mut p.server, &mut p.client);
        }
        assert!(p.server.close_sent());
        assert!(p.client.peer_closed(), "client never saw the server FINs");
        assert!(p.server.peer_closed(), "server never saw the client FINs");
    }

    #[test]
    #[should_panic(expected = "write after close")]
    fn write_after_close_rejected() {
        let mut c = MpConnection::new(Role::Server, TcpConfig::default());
        c.close();
        c.write(1);
    }

    #[test]
    fn rto_threshold_declares_subflow_dead_and_promotes_backup() {
        let mut p = Pair::new(&[IfaceKind::Wifi, IfaceKind::CellularLte]);
        // Two consecutive RTOs (~0.6 s with the default RTO schedule) must
        // land inside the transfer so promotion happens mid-stream.
        p.server.set_failure_threshold(2);
        // Handshake both subflows and mark LTE backup *before* any data
        // exists, so the whole transfer runs under the blackhole below.
        for _ in 0..3 {
            Pair::flow(&mut p.now, &mut p.client, &mut p.server);
            Pair::flow(&mut p.now, &mut p.server, &mut p.client);
        }
        p.client.set_subflow_priority(p.now, SubflowId(1), true);
        for _ in 0..3 {
            Pair::flow(&mut p.now, &mut p.client, &mut p.server);
            Pair::flow(&mut p.now, &mut p.server, &mut p.client);
        }
        assert!(p.server.subflow(SubflowId(1)).backup);
        p.server.write(2_000_000);
        // Blackhole WiFi in both directions: the server's RTOs pile up
        // until failure detection declares sf0 dead and promotes sf1.
        let mut rounds = 0;
        while p.client.bytes_delivered() < 2_000_000 && rounds < 8000 {
            rounds += 1;
            p.server.on_deadline(p.now);
            let mut segs = Vec::new();
            while let Some(pair) = p.server.poll_transmit(p.now) {
                segs.push(pair);
            }
            p.now += HALF;
            for (id, seg) in segs {
                if id != SubflowId(0) {
                    p.client.on_segment(p.now, id, seg);
                }
            }
            p.client.on_deadline(p.now);
            let mut acks = Vec::new();
            while let Some(pair) = p.client.poll_transmit(p.now) {
                acks.push(pair);
            }
            p.now += HALF;
            for (id, seg) in acks {
                if id != SubflowId(0) {
                    p.server.on_segment(p.now, id, seg);
                }
            }
        }
        assert_eq!(p.client.bytes_delivered(), 2_000_000, "transfer stalled");
        let stats = *p.server.recovery_stats();
        assert!(stats.subflow_failures >= 1, "sf0 never declared dead");
        assert_eq!(
            stats.backup_promotions, 1,
            "backup not promoted exactly once"
        );
        assert!(stats.bytes_reinjected > 0, "no bytes reinjected");
        assert!(
            stats.worst_recovery_latency().is_some(),
            "recovery latency not measured"
        );
        assert!(p.server.subflow(SubflowId(0)).dead);
        assert!(!p.server.subflow(SubflowId(1)).backup, "sf1 still backup");
    }

    #[test]
    fn link_down_promotes_backup_and_link_up_revives() {
        let mut p = Pair::new(&[IfaceKind::Wifi, IfaceKind::CellularLte]);
        p.server.write(200_000);
        for _ in 0..6 {
            Pair::flow(&mut p.now, &mut p.server, &mut p.client);
            Pair::flow(&mut p.now, &mut p.client, &mut p.server);
        }
        p.server.set_subflow_priority(p.now, SubflowId(1), true);
        // WiFi association lost: sf0 down, sf1 must be promoted locally.
        p.server.set_subflow_link_up(p.now, SubflowId(0), false);
        assert_eq!(p.server.recovery_stats().link_down_events, 1);
        assert_eq!(p.server.recovery_stats().backup_promotions, 1);
        assert!(!p.server.subflow(SubflowId(1)).backup);
        // Restoration clears the failure state.
        p.server.set_subflow_link_up(p.now, SubflowId(0), true);
        assert!(!p.server.subflow(SubflowId(0)).link_down);
        p.run_until_delivered(200_000, 2000);
    }

    #[test]
    fn recovery_stats_absorb_merges_and_keeps_worst_latency() {
        let mut a = RecoveryStats {
            subflow_failures: 1,
            bytes_reinjected: 100,
            worst_recovery_latency_ns: Some(5),
            ..RecoveryStats::default()
        };
        let b = RecoveryStats {
            subflow_failures: 2,
            backup_promotions: 1,
            worst_recovery_latency_ns: Some(9),
            ..RecoveryStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.subflow_failures, 3);
        assert_eq!(a.bytes_reinjected, 100);
        assert_eq!(a.backup_promotions, 1);
        assert_eq!(a.worst_recovery_latency_ns, Some(9));
    }

    #[test]
    fn reinjection_rescues_stuck_data() {
        let mut p = Pair::new(&[IfaceKind::Wifi, IfaceKind::CellularLte]);
        p.server.write(1_000_000);
        // Run a few rounds so both subflows carry data.
        for _ in 0..6 {
            Pair::flow(&mut p.now, &mut p.server, &mut p.client);
            Pair::flow(&mut p.now, &mut p.client, &mut p.server);
        }
        // Kill the LTE subflow: drop everything it emits from now on.
        let mut rounds = 0;
        while p.client.bytes_delivered() < 1_000_000 && rounds < 4000 {
            rounds += 1;
            p.server.on_deadline(p.now);
            let mut segs = Vec::new();
            while let Some(pair) = p.server.poll_transmit(p.now) {
                segs.push(pair);
            }
            p.now += HALF;
            for (id, seg) in segs {
                if id == SubflowId(1) {
                    continue; // blackhole LTE
                }
                p.client.on_segment(p.now, id, seg);
            }
            // Client replies (its LTE acks are also dropped).
            p.client.on_deadline(p.now);
            let mut acks = Vec::new();
            while let Some(pair) = p.client.poll_transmit(p.now) {
                acks.push(pair);
            }
            p.now += HALF;
            for (id, seg) in acks {
                if id == SubflowId(1) {
                    continue;
                }
                p.server.on_segment(p.now, id, seg);
            }
        }
        assert_eq!(
            p.client.bytes_delivered(),
            1_000_000,
            "reinjection failed to rescue LTE-stuck data after {rounds} rounds"
        );
    }
}
