#![warn(missing_docs)]
//! Multi-Path TCP over the `emptcp-tcp` subflow machinery.
//!
//! This crate implements the MPTCP mechanisms the paper's system builds on
//! (§2.1): per-interface **subflows** carrying data-sequence-signal (DSS)
//! mappings onto one connection-level byte stream, connection-level
//! reassembly, the Linux **minRTT scheduler** (pick the lowest-srtt subflow
//! with window space; an srtt of zero means "probe me first"), the **LIA
//! coupled congestion control** of RFC 6356, **MP_PRIO**/backup priorities
//! (how eMPTCP's path usage controller suspends a subflow remotely), the
//! three operating modes (Full-MPTCP / Single-Path / Backup), and
//! opportunistic **reinjection** of data stuck on a timed-out subflow.
//!
//! Failure recovery: a subflow whose retransmission timer expires a
//! configurable number of times in a row without ack progress is declared
//! **dead** — its stranded data-level ranges are reinjected on surviving
//! subflows and, if no regular subflow survives, the best backup is
//! **promoted** (MP_PRIO) so traffic keeps flowing. [`RecoveryStats`]
//! summarises the failure/recovery activity of one connection side.
//!
//! The connection is poll-style, like the TCP endpoints it owns: hosts feed
//! segments and deadlines in, and drain `(subflow, segment)` emissions out.

pub mod conn;
pub mod modes;
pub mod sched;
pub mod subflow;

pub use conn::{MpConnection, MpSegmentOutcome, RecoveryStats, Role};
pub use modes::OperatingMode;
pub use subflow::{Subflow, SubflowId};
