//! MPTCP operating modes (§2.1 of the paper).
//!
//! These govern *subflow establishment and usage policy* at the client:
//!
//! * **Full-MPTCP** — open subflows over every interface and let the
//!   scheduler use them all; the paper's "standard MPTCP" baseline.
//! * **Single-Path** — one subflow at a time; a new subflow is established
//!   only after the active subflow's interface goes down.
//! * **Backup** — open subflows over all interfaces but mark some backup;
//!   backup subflows carry data only when no regular subflow is available.
//!   "MPTCP with WiFi-First" (Raiciu et al., discussed in §4.6) is Backup
//!   mode with the cellular subflow marked backup.
//!
//! eMPTCP itself is none of these: it opens the cellular subflow lazily
//! (§3.5) and flips priorities dynamically from the EIB (§3.4).

use serde::{Deserialize, Serialize};

/// Subflow usage policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum OperatingMode {
    /// All interfaces, all subflows active (standard MPTCP).
    FullMptcp,
    /// One subflow at a time; failover on interface loss.
    SinglePath,
    /// All subflows open, some marked backup.
    Backup,
}

impl OperatingMode {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            OperatingMode::FullMptcp => "Full-MPTCP",
            OperatingMode::SinglePath => "Single-Path",
            OperatingMode::Backup => "Backup",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(OperatingMode::FullMptcp.label(), "Full-MPTCP");
        assert_eq!(OperatingMode::SinglePath.label(), "Single-Path");
        assert_eq!(OperatingMode::Backup.label(), "Backup");
    }
}
