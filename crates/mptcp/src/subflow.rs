//! One subflow: a TCP endpoint plus MPTCP bookkeeping.
//!
//! A subflow owns its [`TcpEndpoint`] and the two mapping tables that tie
//! the subflow byte stream to the connection-level data stream:
//!
//! * `tx_mappings` — mappings this side created when scheduling data onto
//!   the subflow (consulted when a segment is emitted, to attach its DSS);
//! * `rx_mappings` — mappings received in DSS options (consulted when the
//!   TCP layer delivers subflow bytes in order, to translate them back to
//!   data sequence space).

use emptcp_phy::IfaceKind;
use emptcp_sim::SimTime;
use emptcp_tcp::{Dss, Segment, TcpConfig, TcpEndpoint};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a subflow within one MPTCP connection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct SubflowId(pub u8);

impl fmt::Display for SubflowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sf{}", self.0)
    }
}

/// One side's view of one subflow.
#[derive(Clone, Debug)]
pub struct Subflow {
    /// Subflow identity (same on both ends).
    pub id: SubflowId,
    /// The interface this subflow rides on (device side).
    pub iface: IfaceKind,
    /// The TCP machinery.
    pub tcp: TcpEndpoint,
    /// Local view of the subflow's priority: backup subflows receive no new
    /// data while a regular subflow is available.
    pub backup: bool,
    /// The underlying interface is down (e.g. the WiFi association was
    /// lost). A down subflow is never scheduled; its in-flight data is
    /// rescued by RTO-triggered reinjection.
    pub link_down: bool,
    /// Failure detection declared this subflow dead: its retransmission
    /// timer expired [`MpConnection::set_failure_threshold`] times in a row
    /// without `snd_una` moving. A dead subflow is never scheduled, but its
    /// TCP machine keeps probing — an acknowledgement revives it.
    pub dead: bool,
    /// Sender-side: subflow-seq → (data-seq, len) for data scheduled here.
    tx_mappings: BTreeMap<u64, (u64, u32)>,
    /// Receiver-side: mappings learned from arriving DSS options.
    rx_mappings: BTreeMap<u64, (u64, u32)>,
    /// Next subflow stream position for newly scheduled data
    /// (1 = first byte after the SYN).
    push_seq: u64,
    /// Timeout count last observed by the connection (reinjection edge
    /// detector).
    pub(crate) seen_timeouts: u64,
    /// RTO expirations since `snd_una` last advanced (failure detection).
    pub(crate) consecutive_rtos: u64,
    /// The `snd_una` high-water mark the failure detector last saw.
    pub(crate) fd_una: u64,
    /// Stall tracking for opportunistic reinjection: the `snd_una` last
    /// observed, when it last advanced, and the `snd_una` at which a
    /// reinjection was already issued (once per stall).
    pub(crate) stall_una: u64,
    pub(crate) stall_since: SimTime,
    pub(crate) reinjected_una: Option<u64>,
}

impl Subflow {
    /// A client-side (active-open) subflow.
    pub fn client(id: SubflowId, iface: IfaceKind, cfg: TcpConfig) -> Self {
        Self::new(id, iface, TcpEndpoint::client(cfg))
    }

    /// A server-side (passive-open) subflow.
    pub fn listener(id: SubflowId, iface: IfaceKind, cfg: TcpConfig) -> Self {
        Self::new(id, iface, TcpEndpoint::listener(cfg))
    }

    fn new(id: SubflowId, iface: IfaceKind, tcp: TcpEndpoint) -> Self {
        Subflow {
            id,
            iface,
            tcp,
            backup: false,
            link_down: false,
            dead: false,
            tx_mappings: BTreeMap::new(),
            rx_mappings: BTreeMap::new(),
            push_seq: 1,
            seen_timeouts: 0,
            consecutive_rtos: 0,
            fd_una: 0,
            stall_una: 0,
            stall_since: SimTime::ZERO,
            reinjected_una: None,
        }
    }

    /// Schedule `len` connection bytes starting at `data_seq` onto this
    /// subflow; the TCP layer will emit them as soon as its window allows.
    pub fn push_data(&mut self, data_seq: u64, len: u32) {
        self.tx_mappings.insert(self.push_seq, (data_seq, len));
        self.push_seq += len as u64;
        self.tcp.write(len as u64);
    }

    /// Record a mapping received in a DSS option.
    pub fn learn_mapping(&mut self, subflow_seq: u64, dss: Dss) {
        if dss.len > 0 {
            self.rx_mappings
                .insert(subflow_seq, (dss.data_seq, dss.len));
        }
    }

    /// Translate a delivered subflow range into data-sequence space.
    /// Reassembly can coalesce adjacent segments, so one delivered range
    /// may span several mappings; the result is one data range per mapping
    /// crossed. Bytes with no known mapping are skipped (protocol error,
    /// reported by the caller's debug assertions).
    pub fn translate_delivered(&self, seq: u64, len: u32) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        let mut pos = seq;
        let end = seq + len as u64;
        while pos < end {
            let Some((&start, &(data_seq, map_len))) = self.rx_mappings.range(..=pos).next_back()
            else {
                break;
            };
            let map_end = start + map_len as u64;
            if pos >= map_end {
                break; // hole in the mapping table
            }
            let take = (end.min(map_end) - pos) as u32;
            out.push((data_seq + (pos - start), take));
            pos += take as u64;
        }
        out
    }

    /// The DSS for an outgoing data segment covering `[seq, seq+len)`.
    pub fn dss_for_tx(&self, seq: u64, len: u32, data_ack: u64) -> Option<Dss> {
        let (&start, &(data_seq, map_len)) = self.tx_mappings.range(..=seq).next_back()?;
        if seq + len as u64 > start + map_len as u64 {
            return None;
        }
        Some(Dss {
            data_seq: data_seq + (seq - start),
            len,
            data_ack,
        })
    }

    /// Data ranges scheduled here but not yet acknowledged at the subflow
    /// level — the candidates for reinjection when this subflow times out.
    pub fn unacked_data_ranges(&self) -> Vec<(u64, u32)> {
        let una = self.tcp.snd_una();
        self.tx_mappings
            .iter()
            .filter_map(|(&start, &(data_seq, len))| {
                let end = start + len as u64;
                if end <= una {
                    None
                } else if start >= una {
                    Some((data_seq, len))
                } else {
                    let skip = una - start;
                    Some((data_seq + skip, (len as u64 - skip) as u32))
                }
            })
            .collect()
    }

    /// Drop sender mappings fully acknowledged at the subflow level, and
    /// receiver mappings fully delivered.
    pub fn gc_mappings(&mut self) {
        let una = self.tcp.snd_una();
        while let Some((&start, &(_, len))) = self.tx_mappings.first_key_value() {
            if start + len as u64 <= una {
                self.tx_mappings.remove(&start);
            } else {
                break;
            }
        }
        let delivered_to = 1 + self.tcp.bytes_delivered_total();
        while let Some((&start, &(_, len))) = self.rx_mappings.first_key_value() {
            if start + len as u64 <= delivered_to {
                self.rx_mappings.remove(&start);
            } else {
                break;
            }
        }
    }

    /// Total bytes this side has scheduled onto the subflow.
    pub fn bytes_scheduled(&self) -> u64 {
        self.push_seq - 1
    }

    /// Window room: how many more bytes TCP could take right now.
    pub fn send_room(&self) -> u64 {
        let window = self.tcp.cc().cwnd();
        window.saturating_sub(self.tcp.bytes_in_flight())
    }

    /// The subflow is usable for traffic: established, link up, and not
    /// declared dead by failure detection.
    pub fn usable(&self) -> bool {
        !self.link_down && !self.dead && self.tcp.state() == emptcp_tcp::TcpState::Established
    }

    /// Eligible to be handed new data: usable, its scheduled backlog fully
    /// emitted, and window room available.
    pub fn can_take_data(&self) -> bool {
        self.usable() && self.tcp.send_backlog() == 0 && self.send_room() > 0
    }

    /// Apply the §3.6 resume tweaks to this side's endpoint.
    pub fn prepare_resume(&mut self) {
        self.tcp.prepare_resume();
    }

    /// Decorate an outgoing segment: attach the DSS (mapping for data, or a
    /// bare data-ack), honoring `mp_prio` already set by the TCP layer.
    pub fn decorate(&mut self, seg: &mut Segment, data_ack: u64) {
        if seg.payload > 0 {
            seg.dss = self.dss_for_tx(seg.seq, seg.payload, data_ack);
            debug_assert!(
                seg.dss.is_some() || seg.flags.syn,
                "data segment without a mapping: seq={} len={}",
                seg.seq,
                seg.payload
            );
        } else if !seg.flags.syn {
            // Pure ACKs still carry the connection-level data ack.
            seg.dss = Some(Dss {
                data_seq: 0,
                len: 0,
                data_ack,
            });
        }
    }

    /// Timestamp of the last TCP-level activity.
    pub fn last_activity(&self) -> SimTime {
        self.tcp.last_activity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subflow() -> Subflow {
        Subflow::client(SubflowId(0), IfaceKind::Wifi, TcpConfig::default())
    }

    #[test]
    fn push_creates_contiguous_mappings() {
        let mut sf = subflow();
        sf.push_data(0, 1000);
        sf.push_data(1000, 500);
        assert_eq!(sf.bytes_scheduled(), 1500);
        let dss = sf.dss_for_tx(1, 1000, 7).unwrap();
        assert_eq!(dss.data_seq, 0);
        assert_eq!(dss.data_ack, 7);
        let dss2 = sf.dss_for_tx(1001, 500, 7).unwrap();
        assert_eq!(dss2.data_seq, 1000);
    }

    #[test]
    fn tx_lookup_with_offset() {
        let mut sf = subflow();
        sf.push_data(5000, 1428);
        // A partial segment in the middle of the mapping.
        let dss = sf.dss_for_tx(1 + 400, 500, 0).unwrap();
        assert_eq!(dss.data_seq, 5400);
        assert_eq!(dss.len, 500);
        // Beyond the mapping: None.
        assert!(sf.dss_for_tx(1 + 1000, 1000, 0).is_none());
    }

    #[test]
    fn rx_translation() {
        let mut sf = subflow();
        sf.learn_mapping(
            1,
            Dss {
                data_seq: 9000,
                len: 1428,
                data_ack: 0,
            },
        );
        assert_eq!(sf.translate_delivered(1, 1428), vec![(9000, 1428)]);
        assert_eq!(sf.translate_delivered(101, 100), vec![(9100, 100)]);
        assert!(sf.translate_delivered(2000, 10).is_empty());
    }

    #[test]
    fn rx_translation_spans_mappings() {
        let mut sf = subflow();
        sf.learn_mapping(
            1,
            Dss {
                data_seq: 9000,
                len: 1000,
                data_ack: 0,
            },
        );
        // Non-contiguous data sequence for the adjacent subflow range
        // (e.g. a reinjected chunk).
        sf.learn_mapping(
            1001,
            Dss {
                data_seq: 50_000,
                len: 500,
                data_ack: 0,
            },
        );
        let ranges = sf.translate_delivered(1, 1500);
        assert_eq!(ranges, vec![(9000, 1000), (50_000, 500)]);
    }

    #[test]
    fn zero_length_dss_not_learned() {
        let mut sf = subflow();
        sf.learn_mapping(
            1,
            Dss {
                data_seq: 0,
                len: 0,
                data_ack: 55,
            },
        );
        assert!(sf.translate_delivered(1, 1).is_empty());
    }

    #[test]
    fn unacked_ranges_track_snd_una() {
        let mut sf = subflow();
        sf.push_data(0, 1000);
        sf.push_data(1000, 1000);
        // Nothing sent yet: snd_una = 0 (pre-handshake), everything unacked.
        let ranges = sf.unacked_data_ranges();
        assert_eq!(ranges, vec![(0, 1000), (1000, 1000)]);
    }

    #[test]
    fn decorate_pure_ack_carries_data_ack() {
        let mut sf = subflow();
        let mut seg = Segment::empty(SimTime::ZERO);
        seg.flags.ack = true;
        sf.decorate(&mut seg, 12345);
        assert_eq!(seg.dss.unwrap().data_ack, 12345);
        assert_eq!(seg.dss.unwrap().len, 0);
    }
}
