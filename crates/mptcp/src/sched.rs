//! The minRTT subflow scheduler.
//!
//! The Linux MPTCP scheduler picks, among subflows with congestion-window
//! space, the one with the lowest smoothed RTT (§2.1, \[29\]). Two details
//! matter to eMPTCP:
//!
//! * a subflow whose RTT estimate is zero/unknown sorts *first* — §3.6's
//!   resume tweak zeroes the RTT precisely to get a renewed subflow probed
//!   immediately;
//! * **backup** subflows (MP_PRIO) are only considered when no regular
//!   subflow is established at all — a window-full regular subflow does
//!   *not* spill traffic onto backups.

use crate::subflow::Subflow;

/// A scheduler decision with the evidence behind it, for trace emission:
/// which subflow won, who was in the running, and why the winner won.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedDecision {
    /// Index of the chosen subflow.
    pub picked: usize,
    /// Subflow ids that were eligible candidates (could take data).
    pub candidates: Vec<u8>,
    /// Why the winner won: `"min_rtt"`, `"only_candidate"`,
    /// `"unprobed_rtt"` (zero RTT sorts first, §3.6 resume), or
    /// `"backup_fallback"` (no regular subflow alive).
    pub reason: &'static str,
    /// The winner's smoothed RTT at decision time.
    pub srtt_ns: u64,
}

/// Index of the subflow the scheduler would hand the next chunk of data to,
/// or `None` if nothing can take data right now. Allocation-free twin of
/// [`pick_subflow_detailed`] for the untraced hot path — the candidate
/// filter and the `(srtt, index)` tie-break must stay identical.
pub fn pick_subflow(subflows: &[Subflow]) -> Option<usize> {
    let any_regular_alive = subflows.iter().any(|sf| !sf.backup && sf.usable());
    subflows
        .iter()
        .enumerate()
        .filter(|(_, sf)| sf.can_take_data() && (!sf.backup || !any_regular_alive))
        .min_by_key(|&(idx, sf)| (sf.tcp.rtt().srtt_or_zero(), idx))
        .map(|(idx, _)| idx)
}

/// Like [`pick_subflow`], but also reports the candidate set and the reason
/// for the choice so schedulers decisions can be traced.
pub fn pick_subflow_detailed(subflows: &[Subflow]) -> Option<SchedDecision> {
    let any_regular_alive = subflows.iter().any(|sf| !sf.backup && sf.usable());
    // A backup subflow is a candidate only when no regular subflow is alive.
    let candidates: Vec<usize> = subflows
        .iter()
        .enumerate()
        .filter(|(_, sf)| sf.can_take_data() && (!sf.backup || !any_regular_alive))
        .map(|(idx, _)| idx)
        .collect();
    let &picked = candidates
        .iter()
        .min_by_key(|&&idx| (subflows[idx].tcp.rtt().srtt_or_zero(), idx))?;
    let srtt = subflows[picked].tcp.rtt().srtt_or_zero();
    let reason = if subflows[picked].backup {
        "backup_fallback"
    } else if candidates.len() == 1 {
        "only_candidate"
    } else if srtt == emptcp_sim::SimDuration::ZERO {
        "unprobed_rtt"
    } else {
        "min_rtt"
    };
    Some(SchedDecision {
        picked,
        candidates: candidates.iter().map(|&i| subflows[i].id.0).collect(),
        reason,
        srtt_ns: srtt.as_nanos(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subflow::SubflowId;
    use emptcp_phy::IfaceKind;
    use emptcp_sim::{SimDuration, SimTime};
    use emptcp_tcp::{Segment, TcpConfig, TcpState};

    /// Build an established client subflow by replaying a handshake.
    fn established(id: u8, iface: IfaceKind, rtt_ms: u64) -> Subflow {
        let mut sf = Subflow::client(SubflowId(id), iface, TcpConfig::default());
        let t0 = SimTime::ZERO;
        sf.tcp.connect(t0);
        let _syn = sf.tcp.poll_transmit(t0).expect("syn");
        let mut synack = Segment::empty(t0);
        synack.flags.syn = true;
        synack.flags.ack = true;
        synack.ack = 1;
        synack.rwnd = 4 * 1024 * 1024;
        let arrival = t0 + SimDuration::from_millis(rtt_ms);
        sf.tcp.on_segment(arrival, synack);
        assert_eq!(sf.tcp.state(), TcpState::Established);
        while sf.tcp.poll_transmit(arrival).is_some() {}
        sf
    }

    #[test]
    fn picks_lowest_rtt() {
        let flows = vec![
            established(0, IfaceKind::Wifi, 20),
            established(1, IfaceKind::CellularLte, 60),
        ];
        assert_eq!(pick_subflow(&flows), Some(0));
    }

    #[test]
    fn zero_rtt_probed_first() {
        let mut flows = vec![
            established(0, IfaceKind::Wifi, 20),
            established(1, IfaceKind::CellularLte, 60),
        ];
        flows[1].prepare_resume(); // zeroes srtt
        assert_eq!(pick_subflow(&flows), Some(1));
    }

    #[test]
    fn backup_ignored_while_regular_alive() {
        let mut flows = vec![
            established(0, IfaceKind::Wifi, 60),
            established(1, IfaceKind::CellularLte, 10),
        ];
        flows[1].backup = true;
        assert_eq!(pick_subflow(&flows), Some(0));
    }

    #[test]
    fn backup_used_when_no_regular_established() {
        let mut flows = vec![
            Subflow::client(SubflowId(0), IfaceKind::Wifi, TcpConfig::default()),
            established(1, IfaceKind::CellularLte, 60),
        ];
        // Subflow 0 never completed its handshake; subflow 1 is backup.
        flows[1].backup = true;
        assert_eq!(pick_subflow(&flows), Some(1));
    }

    #[test]
    fn window_full_regular_does_not_spill_to_backup() {
        let mut flows = vec![
            established(0, IfaceKind::Wifi, 20),
            established(1, IfaceKind::CellularLte, 60),
        ];
        flows[1].backup = true;
        // Exhaust subflow 0's window.
        let room = flows[0].send_room();
        flows[0].push_data(0, room as u32);
        let now = SimTime::from_secs(1);
        while flows[0].tcp.poll_transmit(now).is_some() {}
        assert!(!flows[0].can_take_data());
        assert_eq!(pick_subflow(&flows), None, "must wait, not use backup");
    }

    #[test]
    fn nothing_pickable_when_all_closed() {
        let flows = vec![Subflow::client(
            SubflowId(0),
            IfaceKind::Wifi,
            TcpConfig::default(),
        )];
        assert_eq!(pick_subflow(&flows), None);
    }

    #[test]
    fn detailed_decision_reports_candidates_and_reason() {
        let flows = vec![
            established(0, IfaceKind::Wifi, 20),
            established(1, IfaceKind::CellularLte, 60),
        ];
        let d = pick_subflow_detailed(&flows).unwrap();
        assert_eq!(d.picked, 0);
        assert_eq!(d.candidates, vec![0, 1]);
        assert_eq!(d.reason, "min_rtt");
        assert!(d.srtt_ns > 0);

        let mut backup_only = vec![established(0, IfaceKind::CellularLte, 60)];
        backup_only[0].backup = true;
        let d = pick_subflow_detailed(&backup_only).unwrap();
        assert_eq!(d.reason, "backup_fallback");
    }

    #[test]
    fn dead_subflow_excluded_and_backup_takes_over() {
        let mut flows = vec![
            established(0, IfaceKind::Wifi, 20),
            established(1, IfaceKind::CellularLte, 60),
        ];
        flows[1].backup = true;
        // The regular subflow is declared dead by failure detection: the
        // backup becomes the fallback even though sf0's link is nominally up.
        flows[0].dead = true;
        let d = pick_subflow_detailed(&flows).unwrap();
        assert_eq!(d.picked, 1);
        assert_eq!(d.reason, "backup_fallback");
    }

    #[test]
    fn tie_breaks_by_index() {
        let flows = vec![
            established(0, IfaceKind::Wifi, 30),
            established(1, IfaceKind::CellularLte, 30),
        ];
        assert_eq!(pick_subflow(&flows), Some(0));
    }
}
