//! The minRTT subflow scheduler.
//!
//! The Linux MPTCP scheduler picks, among subflows with congestion-window
//! space, the one with the lowest smoothed RTT (§2.1, \[29\]). Two details
//! matter to eMPTCP:
//!
//! * a subflow whose RTT estimate is zero/unknown sorts *first* — §3.6's
//!   resume tweak zeroes the RTT precisely to get a renewed subflow probed
//!   immediately;
//! * **backup** subflows (MP_PRIO) are only considered when no regular
//!   subflow is established at all — a window-full regular subflow does
//!   *not* spill traffic onto backups.

use crate::subflow::Subflow;
use emptcp_tcp::TcpState;

/// Index of the subflow the scheduler would hand the next chunk of data to,
/// or `None` if nothing can take data right now.
pub fn pick_subflow(subflows: &[Subflow]) -> Option<usize> {
    let any_regular_alive = subflows
        .iter()
        .any(|sf| !sf.backup && !sf.link_down && sf.tcp.state() == TcpState::Established);
    // A backup subflow is a candidate only when no regular subflow is alive.
    subflows
        .iter()
        .enumerate()
        .filter(|(_, sf)| sf.can_take_data() && (!sf.backup || !any_regular_alive))
        .min_by_key(|(idx, sf)| (sf.tcp.rtt().srtt_or_zero(), *idx))
        .map(|(idx, _)| idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subflow::SubflowId;
    use emptcp_phy::IfaceKind;
    use emptcp_sim::{SimDuration, SimTime};
    use emptcp_tcp::{Segment, TcpConfig};

    /// Build an established client subflow by replaying a handshake.
    fn established(id: u8, iface: IfaceKind, rtt_ms: u64) -> Subflow {
        let mut sf = Subflow::client(SubflowId(id), iface, TcpConfig::default());
        let t0 = SimTime::ZERO;
        sf.tcp.connect(t0);
        let _syn = sf.tcp.poll_transmit(t0).expect("syn");
        let mut synack = Segment::empty(t0);
        synack.flags.syn = true;
        synack.flags.ack = true;
        synack.ack = 1;
        synack.rwnd = 4 * 1024 * 1024;
        let arrival = t0 + SimDuration::from_millis(rtt_ms);
        sf.tcp.on_segment(arrival, synack);
        assert_eq!(sf.tcp.state(), TcpState::Established);
        while sf.tcp.poll_transmit(arrival).is_some() {}
        sf
    }

    #[test]
    fn picks_lowest_rtt() {
        let flows = vec![
            established(0, IfaceKind::Wifi, 20),
            established(1, IfaceKind::CellularLte, 60),
        ];
        assert_eq!(pick_subflow(&flows), Some(0));
    }

    #[test]
    fn zero_rtt_probed_first() {
        let mut flows = vec![
            established(0, IfaceKind::Wifi, 20),
            established(1, IfaceKind::CellularLte, 60),
        ];
        flows[1].prepare_resume(); // zeroes srtt
        assert_eq!(pick_subflow(&flows), Some(1));
    }

    #[test]
    fn backup_ignored_while_regular_alive() {
        let mut flows = vec![
            established(0, IfaceKind::Wifi, 60),
            established(1, IfaceKind::CellularLte, 10),
        ];
        flows[1].backup = true;
        assert_eq!(pick_subflow(&flows), Some(0));
    }

    #[test]
    fn backup_used_when_no_regular_established() {
        let mut flows = vec![
            Subflow::client(SubflowId(0), IfaceKind::Wifi, TcpConfig::default()),
            established(1, IfaceKind::CellularLte, 60),
        ];
        // Subflow 0 never completed its handshake; subflow 1 is backup.
        flows[1].backup = true;
        assert_eq!(pick_subflow(&flows), Some(1));
    }

    #[test]
    fn window_full_regular_does_not_spill_to_backup() {
        let mut flows = vec![
            established(0, IfaceKind::Wifi, 20),
            established(1, IfaceKind::CellularLte, 60),
        ];
        flows[1].backup = true;
        // Exhaust subflow 0's window.
        let room = flows[0].send_room();
        flows[0].push_data(0, room as u32);
        let now = SimTime::from_secs(1);
        while flows[0].tcp.poll_transmit(now).is_some() {}
        assert!(!flows[0].can_take_data());
        assert_eq!(pick_subflow(&flows), None, "must wait, not use backup");
    }

    #[test]
    fn nothing_pickable_when_all_closed() {
        let flows = vec![Subflow::client(
            SubflowId(0),
            IfaceKind::Wifi,
            TcpConfig::default(),
        )];
        assert_eq!(pick_subflow(&flows), None);
    }

    #[test]
    fn tie_breaks_by_index() {
        let flows = vec![
            established(0, IfaceKind::Wifi, 30),
            established(1, IfaceKind::CellularLte, 30),
        ];
        assert_eq!(pick_subflow(&flows), Some(0));
    }
}
