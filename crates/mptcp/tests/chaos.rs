//! Chaos testing for MPTCP: two asymmetric lossy subflows must still
//! deliver the exact connection-level byte stream, with reinjection
//! rescuing data stranded on a dying path. The rig is the shared
//! `emptcp-faults::testnet::MpChaosRig`.

use emptcp_faults::testnet::{ChaosPath, MpChaosRig};
use emptcp_mptcp::SubflowId;
use emptcp_phy::IfaceKind;
use emptcp_sim::SimDuration;
use proptest::prelude::*;

fn rig(seed: u64, loss0: f64, loss1: f64, jitter_ms: u64) -> MpChaosRig {
    MpChaosRig::new(
        seed,
        vec![
            ChaosPath::new(loss0, SimDuration::from_millis(12), jitter_ms),
            ChaosPath::new(loss1, SimDuration::from_millis(35), jitter_ms),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn asymmetric_lossy_subflows_deliver_everything(
        total_kb in 32u64..256,
        loss0 in 0.0f64..0.12,
        loss1 in 0.0f64..0.12,
        jitter_ms in 0u64..25,
        seed in 0u64..u64::MAX,
    ) {
        let total = total_kb << 10;
        let mut r = rig(seed, loss0, loss1, jitter_ms);
        let delivered = r.run(total);
        prop_assert_eq!(delivered, total);
    }
}

#[test]
fn one_dead_subflow_from_the_start() {
    // Subflow 1 loses everything: the connection must still complete over
    // subflow 0 (subflow 1 never even finishes its handshake).
    let mut r = rig(3, 0.01, 1.0, 5);
    assert_eq!(r.run(128 << 10), 128 << 10);
}

#[test]
fn heavily_asymmetric_loss() {
    let mut r = rig(5, 0.002, 0.35, 10);
    assert_eq!(r.run(256 << 10), 256 << 10);
}

#[test]
fn backup_subflow_with_loss() {
    let mut r = rig(9, 0.05, 0.05, 10);
    r.client.subflow_mut(SubflowId(1)).backup = true;
    r.server.subflow_mut(SubflowId(1)).backup = true;
    let total = 64 << 10;
    assert_eq!(r.run(total), total);
    // Backup never carried data (subflow 0 stayed alive throughout).
    assert_eq!(r.client.delivered_by_iface(IfaceKind::CellularLte), 0);
}

/// The shared-bottleneck library scenario: `congested_core` collapses
/// every path at once (a silent blackhole — no link-layer notification),
/// so both subflows must be declared dead by the consecutive-RTO detector
/// and revived by ack progress once the core ramps back. The byte stream
/// must still arrive exactly, with the recovery visible in the stats.
#[test]
fn congested_core_scenario_recovers_with_stats() {
    // Long-ish RTTs keep a large transfer in flight through the scenario's
    // 5 s collapse window (the rig is delay-based, so throughput is
    // window-limited rather than rate-limited).
    let mut r = MpChaosRig::new(
        41,
        vec![
            ChaosPath::new(0.0, SimDuration::from_millis(100), 2),
            ChaosPath::new(0.0, SimDuration::from_millis(130), 2),
        ],
    );
    // The collapse is silent; detection must come from RTOs alone.
    r.notify_link_down = false;
    r.server.set_failure_threshold(2);
    r.attach_faults(emptcp_faults::scenarios::plan("congested_core").expect("library scenario"));
    // Window-limited at these RTTs the rig moves ~100 KB/s, so 8 MB keeps
    // the transfer in flight through the whole collapse and still finishes
    // far inside the wall limit.
    let total = 8 << 20;
    assert_eq!(r.run(total), total);
    let stats = r.server.recovery_stats();
    assert!(stats.subflow_failures >= 1, "{stats:?}");
    assert!(stats.revivals >= 1, "{stats:?}");
    assert!(
        stats.worst_recovery_latency().is_some(),
        "recovery latency never measured: {stats:?}"
    );
}
