//! Chaos testing for MPTCP: two asymmetric lossy subflows must still
//! deliver the exact connection-level byte stream, with reinjection
//! rescuing data stranded on a dying path.

use emptcp_mptcp::{MpConnection, Role, SubflowId};
use emptcp_phy::IfaceKind;
use emptcp_sim::{EventQueue, SimDuration, SimRng, SimTime};
use emptcp_tcp::{Segment, TcpConfig};
use proptest::prelude::*;

struct SubflowNet {
    loss: f64,
    delay: SimDuration,
    jitter_ms: u64,
}

struct Rig {
    queue: EventQueue<(bool, SubflowId, Segment)>,
    rng: SimRng,
    nets: [SubflowNet; 2],
    client: MpConnection,
    server: MpConnection,
}

impl Rig {
    fn new(seed: u64, loss0: f64, loss1: f64, jitter_ms: u64) -> Rig {
        let mut client = MpConnection::new(Role::Client, TcpConfig::default());
        let mut server = MpConnection::new(Role::Server, TcpConfig::default());
        for iface in [IfaceKind::Wifi, IfaceKind::CellularLte] {
            client.add_subflow(SimTime::ZERO, iface);
            server.add_subflow(SimTime::ZERO, iface);
        }
        Rig {
            queue: EventQueue::new(),
            rng: SimRng::new(seed),
            nets: [
                SubflowNet {
                    loss: loss0,
                    delay: SimDuration::from_millis(12),
                    jitter_ms,
                },
                SubflowNet {
                    loss: loss1,
                    delay: SimDuration::from_millis(35),
                    jitter_ms,
                },
            ],
            client,
            server,
        }
    }

    fn transmit(&mut self, now: SimTime, from_client: bool) {
        loop {
            let emission = if from_client {
                self.client.poll_transmit(now)
            } else {
                self.server.poll_transmit(now)
            };
            let Some((sf, seg)) = emission else { break };
            let net = &self.nets[sf.0 as usize];
            if self.rng.chance(net.loss) {
                continue;
            }
            let jitter = SimDuration::from_millis(self.rng.below(net.jitter_ms + 1));
            self.queue
                .schedule(now + net.delay + jitter, (!from_client, sf, seg));
        }
    }

    /// Run until the client has `total` bytes or progress stops.
    fn run(&mut self, total: u64) -> u64 {
        self.server.write(total);
        self.transmit(SimTime::ZERO, true);
        self.transmit(SimTime::ZERO, false);
        let mut guard = 0u64;
        loop {
            guard += 1;
            if guard > 3_000_000 {
                break;
            }
            let timer = self
                .client
                .next_deadline()
                .into_iter()
                .chain(self.server.next_deadline())
                .min();
            let next_packet = self.queue.peek_time();
            let now = match (next_packet, timer) {
                (Some(p), Some(t)) => p.min(t),
                (Some(p), None) => p,
                (None, Some(t)) => t,
                (None, None) => break,
            };
            if now > SimTime::from_secs(900) {
                break;
            }
            if Some(now) == next_packet {
                let (_, (to_client, sf, seg)) = self.queue.pop().expect("peeked");
                if to_client {
                    self.client.on_segment(now, sf, seg);
                } else {
                    self.server.on_segment(now, sf, seg);
                }
            }
            self.client.on_deadline(now);
            self.server.on_deadline(now);
            self.transmit(now, true);
            self.transmit(now, false);
            if self.client.bytes_delivered() >= total {
                break;
            }
        }
        self.client.bytes_delivered()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn asymmetric_lossy_subflows_deliver_everything(
        total_kb in 32u64..256,
        loss0 in 0.0f64..0.12,
        loss1 in 0.0f64..0.12,
        jitter_ms in 0u64..25,
        seed in 0u64..u64::MAX,
    ) {
        let total = total_kb << 10;
        let mut rig = Rig::new(seed, loss0, loss1, jitter_ms);
        let delivered = rig.run(total);
        prop_assert_eq!(delivered, total);
    }
}

#[test]
fn one_dead_subflow_from_the_start() {
    // Subflow 1 loses everything: the connection must still complete over
    // subflow 0 (subflow 1 never even finishes its handshake).
    let mut rig = Rig::new(3, 0.01, 1.0, 5);
    assert_eq!(rig.run(128 << 10), 128 << 10);
}

#[test]
fn heavily_asymmetric_loss() {
    let mut rig = Rig::new(5, 0.002, 0.35, 10);
    assert_eq!(rig.run(256 << 10), 256 << 10);
}

#[test]
fn backup_subflow_with_loss() {
    let mut rig = Rig::new(9, 0.05, 0.05, 10);
    rig.client.subflow_mut(SubflowId(1)).backup = true;
    rig.server.subflow_mut(SubflowId(1)).backup = true;
    let total = 64 << 10;
    assert_eq!(rig.run(total), total);
    // Backup never carried data (subflow 0 stayed alive throughout).
    assert_eq!(rig.client.delivered_by_iface(IfaceKind::CellularLte), 0);
}
