//! A free-listed slab for in-flight [`Segment`]s.
//!
//! Simulation hosts keep one segment per queued hop event. Carrying the
//! ~100-byte [`Segment`] by value through every queue operation means the
//! event payload dominates the memcpy cost of the hot loop; parking the
//! segment here and carrying a 4-byte [`SegRef`] instead keeps queue
//! payloads word-sized and recycles segment storage without touching the
//! allocator in steady state.
//!
//! The slab doubles as a leak oracle: it counts every allocation, free and
//! double-free, so a host that drops a hop event without reclaiming its
//! segment (or reclaims one twice) is caught structurally at end of run —
//! `live() == 0` and `double_frees == 0` — rather than showing up as slow
//! memory growth. The invariant checker consumes [`SegSlabStats`] for
//! exactly that check.

use crate::segment::Segment;
use serde::Serialize;

/// Handle to a segment parked in a [`SegmentSlab`].
///
/// Plain index, deliberately `Copy`: the owning host moves it through its
/// event queue and reclaims it exactly once with [`SegmentSlab::take`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SegRef(u32);

/// Allocation counters of a [`SegmentSlab`], exported for leak oracles.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize)]
pub struct SegSlabStats {
    /// Segments parked over the slab's lifetime.
    pub allocated: u64,
    /// Segments reclaimed over the slab's lifetime.
    pub freed: u64,
    /// Segments currently parked (`allocated - freed`).
    pub live: u64,
    /// Reclaims of a slot that was already empty — always a host bug.
    pub double_frees: u64,
    /// Distinct slots ever backed (the high-water mark of `live`).
    pub capacity: usize,
}

/// Free-listed segment storage with recycle counters. See the module docs.
#[derive(Debug, Default)]
pub struct SegmentSlab {
    slots: Vec<Option<Segment>>,
    free: Vec<u32>,
    allocated: u64,
    freed: u64,
    double_frees: u64,
}

impl SegmentSlab {
    /// An empty slab.
    pub fn new() -> SegmentSlab {
        SegmentSlab::default()
    }

    /// Park a segment, recycling a freed slot when one is available.
    pub fn insert(&mut self, seg: Segment) -> SegRef {
        self.allocated += 1;
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(seg);
                SegRef(i)
            }
            None => {
                debug_assert!(self.slots.len() < u32::MAX as usize, "segment slab full");
                self.slots.push(Some(seg));
                SegRef((self.slots.len() - 1) as u32)
            }
        }
    }

    /// Reclaim a parked segment, returning its slot to the free list.
    ///
    /// Taking a slot that is already empty returns `None` and bumps the
    /// `double_frees` counter instead of panicking, so the invariant
    /// battery can report the bug with the run's context attached.
    pub fn take(&mut self, r: SegRef) -> Option<Segment> {
        match self.slots.get_mut(r.0 as usize).and_then(Option::take) {
            Some(seg) => {
                self.freed += 1;
                self.free.push(r.0);
                Some(seg)
            }
            None => {
                self.double_frees += 1;
                None
            }
        }
    }

    /// Segments currently parked.
    pub fn live(&self) -> u64 {
        self.allocated - self.freed
    }

    /// Lifetime counters for the leak oracle.
    pub fn stats(&self) -> SegSlabStats {
        SegSlabStats {
            allocated: self.allocated,
            freed: self.freed,
            live: self.live(),
            double_frees: self.double_frees,
            capacity: self.slots.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emptcp_sim::SimTime;

    fn seg(payload: u32) -> Segment {
        let mut s = Segment::empty(SimTime::ZERO);
        s.payload = payload;
        s
    }

    #[test]
    fn round_trips_segments() {
        let mut slab = SegmentSlab::new();
        let a = slab.insert(seg(1));
        let b = slab.insert(seg(2));
        assert_eq!(slab.take(b).unwrap().payload, 2);
        assert_eq!(slab.take(a).unwrap().payload, 1);
        assert_eq!(slab.live(), 0);
    }

    #[test]
    fn recycles_slots_without_growing() {
        let mut slab = SegmentSlab::new();
        for i in 0..1000 {
            let r = slab.insert(seg(i));
            assert!(slab.take(r).is_some());
        }
        let st = slab.stats();
        assert_eq!(st.allocated, 1000);
        assert_eq!(st.freed, 1000);
        assert_eq!(st.live, 0);
        assert_eq!(st.double_frees, 0);
        assert_eq!(st.capacity, 1, "free slots must be recycled, not leaked");
    }

    #[test]
    fn double_free_is_counted_not_fatal() {
        let mut slab = SegmentSlab::new();
        let r = slab.insert(seg(7));
        assert!(slab.take(r).is_some());
        assert!(slab.take(r).is_none());
        assert_eq!(slab.stats().double_frees, 1);
        assert_eq!(slab.stats().freed, 1);
    }

    #[test]
    fn leak_shows_in_live_count() {
        let mut slab = SegmentSlab::new();
        let _held = slab.insert(seg(9));
        let r = slab.insert(seg(10));
        slab.take(r);
        let st = slab.stats();
        assert_eq!(st.live, 1);
        assert_eq!(st.allocated, 2);
    }
}
