#![warn(missing_docs)]
//! Packet-level single-path TCP for the eMPTCP reproduction.
//!
//! This models the sender/receiver machinery the paper's kernel patch lives
//! in: Reno congestion control with slow start, congestion avoidance, fast
//! retransmit and RTO (Jacobson/Karn, RFC 6298), delayed ACKs, receive-side
//! reassembly, and — because eMPTCP specifically disables it for resumed
//! subflows (§3.6) — RFC 2861 congestion-window validation after idle.
//!
//! The endpoint is a poll-style state machine in the smoltcp idiom: events
//! go in ([`TcpEndpoint::on_segment`], [`TcpEndpoint::on_deadline`]),
//! emissions come out ([`TcpEndpoint::poll_transmit`]), and the host owns
//! all timers via [`TcpEndpoint::next_deadline`]. Payload *contents* are
//! never materialized — only byte counts and sequence ranges — which is
//! what lets the experiment harness push hundreds of megabytes per run.
//!
//! MPTCP (in `emptcp-mptcp`) layers data-sequence mappings on top of the
//! per-subflow segments defined in [`segment`].

pub mod cc;
pub mod endpoint;
pub mod rtt;
pub mod segment;
pub mod slab;

pub use cc::{CcAlgorithm, CongestionCtrl};
pub use endpoint::{DeliveredRange, TcpConfig, TcpEndpoint, TcpState};
pub use rtt::RttEstimator;
pub use segment::{Dss, SegFlags, Segment};
pub use slab::{SegRef, SegSlabStats, SegmentSlab};
