//! TCP segments as they cross the simulated network.
//!
//! Payload contents are never carried — only the sequence range — so a
//! segment is a small value type. Wire size (for link serialization and
//! energy-relevant airtime) is computed from the payload length plus
//! realistic header overhead, including the MPTCP option space that data
//! segments carrying a DSS mapping pay for.

use emptcp_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Standard MSS for 1500-byte MTU paths with MPTCP options present.
pub const DEFAULT_MSS: u32 = 1428;

/// Ethernet + IPv4 + TCP header bytes (no options).
pub const BASE_HEADER_BYTES: u64 = 14 + 20 + 20;
/// Timestamp option (RFC 7323), padded.
pub const TS_OPTION_BYTES: u64 = 12;
/// DSS option bytes when a data-sequence mapping is attached.
pub const DSS_OPTION_BYTES: u64 = 20;
/// MP_PRIO option bytes.
pub const MP_PRIO_OPTION_BYTES: u64 = 4;
/// Per-SACK-block option bytes (RFC 2018: 8 per block + 2 header).
pub const SACK_BLOCK_BYTES: u64 = 8;
/// Maximum SACK blocks carried (3, leaving room for the other options).
pub const MAX_SACK_BLOCKS: usize = 3;

/// TCP flags relevant to the model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct SegFlags {
    /// SYN: consumes one sequence number.
    pub syn: bool,
    /// ACK: `ack` field is valid.
    pub ack: bool,
    /// FIN: consumes one sequence number.
    pub fin: bool,
}

/// MPTCP data-sequence-signal option: maps this segment's subflow payload
/// onto the connection-level byte stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Dss {
    /// Connection-level ("data") sequence of the first payload byte.
    pub data_seq: u64,
    /// Length of the mapping (equals the segment payload here).
    pub len: u32,
    /// Cumulative connection-level acknowledgment.
    pub data_ack: u64,
}

/// One TCP segment.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Segment {
    /// Subflow-level sequence number of the first payload byte (or of the
    /// SYN/FIN if flagged).
    pub seq: u64,
    /// Payload bytes (0 for pure ACKs and SYNs).
    pub payload: u32,
    /// Cumulative subflow-level acknowledgment (valid when `flags.ack`).
    pub ack: u64,
    /// Flags.
    pub flags: SegFlags,
    /// Receive window advertised by the sender of this segment (bytes).
    pub rwnd: u64,
    /// Sender timestamp (RFC 7323 TSval).
    pub ts_val: SimTime,
    /// Echoed peer timestamp (TSecr), used for RTT sampling.
    pub ts_ecr: Option<SimTime>,
    /// MPTCP data-sequence mapping, when carrying connection data.
    pub dss: Option<Dss>,
    /// MPTCP MP_PRIO option: `Some(backup)` requests the peer treat the
    /// subflow this segment rides on as backup (`true`) or normal (`false`).
    pub mp_prio: Option<bool>,
    /// SACK blocks (RFC 2018): received `[start, end)` ranges beyond the
    /// cumulative ack, lowest-first.
    pub sack: [Option<(u64, u64)>; MAX_SACK_BLOCKS],
    /// True if this is a retransmission (diagnostics; Karn's rule is
    /// enforced via timestamps).
    pub retransmit: bool,
}

impl Segment {
    /// A quiet template; builders fill in the rest.
    pub fn empty(now: SimTime) -> Self {
        Segment {
            seq: 0,
            payload: 0,
            ack: 0,
            flags: SegFlags::default(),
            rwnd: 0,
            ts_val: now,
            ts_ecr: None,
            dss: None,
            mp_prio: None,
            sack: [None; MAX_SACK_BLOCKS],
            retransmit: false,
        }
    }

    /// Bytes this segment occupies on the wire.
    pub fn wire_bytes(&self) -> u64 {
        let mut n = BASE_HEADER_BYTES + TS_OPTION_BYTES + self.payload as u64;
        if self.dss.is_some() {
            n += DSS_OPTION_BYTES;
        }
        if self.mp_prio.is_some() {
            n += MP_PRIO_OPTION_BYTES;
        }
        let sack_blocks = self.sack.iter().flatten().count() as u64;
        if sack_blocks > 0 {
            n += 2 + sack_blocks * SACK_BLOCK_BYTES;
        }
        n
    }

    /// Sequence space consumed: payload plus SYN/FIN.
    pub fn seq_space(&self) -> u64 {
        self.payload as u64 + self.flags.syn as u64 + self.flags.fin as u64
    }

    /// Sequence number just past this segment.
    pub fn seq_end(&self) -> u64 {
        self.seq + self.seq_space()
    }

    /// True for segments carrying no payload and no SYN/FIN (pure ACKs,
    /// window updates, MP_PRIO carriers).
    pub fn is_pure_ack(&self) -> bool {
        self.seq_space() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_accounts_options() {
        let mut seg = Segment::empty(SimTime::ZERO);
        assert_eq!(seg.wire_bytes(), 54 + 12);
        seg.payload = 1000;
        assert_eq!(seg.wire_bytes(), 54 + 12 + 1000);
        seg.dss = Some(Dss {
            data_seq: 0,
            len: 1000,
            data_ack: 0,
        });
        assert_eq!(seg.wire_bytes(), 54 + 12 + 20 + 1000);
        seg.mp_prio = Some(true);
        assert_eq!(seg.wire_bytes(), 54 + 12 + 20 + 4 + 1000);
        seg.sack = [Some((1, 2)), Some((3, 4)), None];
        assert_eq!(seg.wire_bytes(), 54 + 12 + 20 + 4 + 1000 + 2 + 16);
    }

    #[test]
    fn seq_space_counts_flags() {
        let mut seg = Segment::empty(SimTime::ZERO);
        assert_eq!(seg.seq_space(), 0);
        assert!(seg.is_pure_ack());
        seg.flags.syn = true;
        assert_eq!(seg.seq_space(), 1);
        seg.flags.syn = false;
        seg.flags.fin = true;
        seg.payload = 10;
        seg.seq = 100;
        assert_eq!(seg.seq_space(), 11);
        assert_eq!(seg.seq_end(), 111);
        assert!(!seg.is_pure_ack());
    }

    #[test]
    fn mss_fits_mtu() {
        // MSS + headers + TS + DSS must fit a 1500-byte IP MTU + ethernet.
        assert!(DEFAULT_MSS as u64 + 20 + 20 + TS_OPTION_BYTES + DSS_OPTION_BYTES <= 1500);
    }
}
